"""Regenerate Figure 5: HFPU throughput improvement over the 128-core
unshared baseline (both phases, full design/area/sharing grid)."""

from repro.experiments import figure5


def test_figure5_hfpu_performance(benchmark, emit, workloads,
                                  tuned_precisions):
    result = benchmark.pedantic(
        figure5.compute_figure5, kwargs={"workloads": workloads},
        iterations=1, rounds=1,
    )
    text = "\n\n".join([
        figure5.render(result, "lcp"),
        figure5.render(result, "narrow"),
        figure5.render_per_scenario(result, "lcp"),
        figure5.paper_summary(result),
    ])
    emit("figure5_hfpu_performance", text)

    # The per-scenario spread behind the averages: scenarios tuned below
    # six LCP bits are exactly where Lookup pulls ahead of ReducedTriv.
    breakdown = result.by_scenario["lcp"]
    low_bit = [s for s, phases in tuned_precisions.items()
               if phases["lcp"] <= 5]
    for scenario in low_bit:
        assert breakdown[(1.5, "lookup_triv", 4)][scenario] > \
            breakdown[(1.5, "reduced_triv", 4)][scenario]

    for phase in ("lcp", "narrow"):
        grid = result.improvement[phase]
        # Baseline point is exactly zero.
        assert grid[(1.5, "conjoin", 1)] == 0.0

        # L1 design ordering at fixed sharing: conjoin <= conv <=
        # reduced (paper Figure 5, both phases).  Lookup tracks reduced
        # closely: slightly below when the LUT is unused (its table area
        # costs cores — the paper notes exactly this for narrow-phase),
        # above when scenarios run below six mantissa bits.
        for area in (1.5, 1.0, 0.75, 0.375):
            for n in (2, 4, 8):
                conjoin = grid[(area, "conjoin", n)]
                conv = grid[(area, "conv_triv", n)]
                reduced = grid[(area, "reduced_triv", n)]
                lookup = grid[(area, "lookup_triv", n)]
                assert conjoin <= conv + 0.02
                assert conv <= reduced + 0.02
                assert lookup >= reduced - 0.10

        # Plain conjoined sharing degrades at high degrees for the small
        # FPU (paper: negative bars at 0.375 mm^2, 4/8-way).
        assert grid[(0.375, "conjoin", 8)] < 0.0

        # Larger FPUs benefit more from the HFPU (headline trend).
        hfpu4 = [grid[(a, "lookup_triv", 4)]
                 for a in (1.5, 1.0, 0.75, 0.375)]
        assert hfpu4[0] > hfpu4[-1]
        # The paper's chosen configuration clearly beats the baseline.
        assert min(hfpu4) > 0.0
