"""Regenerate Table 3: factors increasing trivialization (directed
two-body tests)."""

from repro.experiments import table3


def test_table3_factors(benchmark, emit):
    results = benchmark.pedantic(table3.compute_table3, iterations=1,
                                 rounds=1)
    emit("table3_factors", table3.render(results))

    assert len(results) == len(table3.FACTORS)
    for r in results:
        assert 0.0 <= r.with_factor_pct <= 100.0
        assert 0.0 <= r.without_factor_pct <= 100.0

    # The paper's claim is directional: these factors *increase*
    # trivialization.  Require a clear majority of the directed tests to
    # agree (the mass/size pairs are weak effects), and the three
    # strongest factors to agree decisively.
    agreeing = sum(r.delta >= 0 for r in results)
    assert agreeing >= 4
    strong = {r.factor: r.delta for r in results}
    assert strong["Zero velocities before collision"] > 5.0
    assert strong["Use of ground and gravity"] > 20.0
    assert strong["Higher amount of articulation"] > 5.0
