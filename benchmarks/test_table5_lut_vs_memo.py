"""Regenerate Table 5: lookup vs memoization table (constants + the
functional validation of the 2K-entry LUT)."""

from repro.experiments import table5


def test_table5_lookup_vs_memoization(benchmark, emit):
    result = benchmark.pedantic(table5.compute_table5, iterations=1,
                                rounds=1)
    emit("table5_lut_vs_memo", table5.render(result))

    # Structural constants are the paper's own numbers.
    assert result.lookup_latency_ns == 0.40
    assert result.memo_latency_ns == 0.88
    assert result.lookup_energy_nj == 0.03
    assert result.memo_energy_nj == 0.73
    assert result.area_reduction > 0.75  # paper: 77%

    # Functional claim: at <6 bits the LUT satisfies every add/mul.
    # Multiplies are bit-exact; adds lose at most ~1 reduced ulp to the
    # 5-bit shifted-operand window.
    assert result.mul_exact_fraction == 1.0
    assert result.add_exact_fraction > 0.6
    assert result.add_max_ulp <= 1.5
