"""Regenerate Figure 8: sensitivity of HFPU4 throughput to 1-4 cycles of
added FPU sharing latency, relative to HFPU2 at 0 cycles."""

from repro.experiments import figure8


def test_figure8_latency_sensitivity(benchmark, emit, workloads):
    result = benchmark.pedantic(
        figure8.compute_figure8, kwargs={"workloads": workloads},
        iterations=1, rounds=1,
    )
    text = "\n\n".join([
        figure8.render(result, "lcp"),
        figure8.render(result, "narrow"),
    ])
    emit("figure8_latency", text)

    for phase in ("lcp", "narrow"):
        grid = result.improvement[phase]
        # Added latency monotonically erodes the HFPU4 advantage.
        for area in (1.5, 1.0, 0.75, 0.375):
            series = [grid[(area, lat)] for lat in (1, 2, 3, 4)]
            assert series == sorted(series, reverse=True), (phase, area)

    # LCP (31% FP) is more latency-sensitive than narrow-phase (13% FP):
    # the paper's Figure 8 comparison.  Measure the drop from 1 to 4
    # cycles on the largest FPU.
    lcp_drop = (result.improvement["lcp"][(1.5, 1)]
                - result.improvement["lcp"][(1.5, 4)])
    narrow_drop = (result.improvement["narrow"][(1.5, 1)]
                   - result.improvement["narrow"][(1.5, 4)])
    assert lcp_drop > narrow_drop
