"""Phase-level scalability bench (ParallAX work-queue model)."""

from conftest import SCALE

from repro.experiments import scalability


def test_phase_scalability(benchmark, emit):
    rows = benchmark.pedantic(
        scalability.compute_scalability, kwargs={"scale": SCALE},
        iterations=1, rounds=1)
    emit("scalability_phases", scalability.render(rows))

    for row in rows:
        lcp = [row.speedup["lcp"][n] for n in (8, 32, 128)]
        narrow = [row.speedup["narrow"][n] for n in (8, 32, 128)]
        # More cores never slow a phase down.
        assert lcp == sorted(lcp)
        assert narrow == sorted(narrow)
        # Parallelism is bounded by the item counts.
        assert max(lcp) <= 4 * max(row.islands, 1) + 1e-9
        assert max(narrow) <= max(row.pairs, 1) + 1e-9

    # The aggregate pattern the paper leans on: the pair-rich phase keeps
    # scaling further than island-bound LCP on most scenarios.
    wins = sum(row.speedup["narrow"][128] >= row.speedup["lcp"][128]
               for row in rows)
    assert wins >= len(rows) // 2
