"""Ablation benches for the paper's fixed design choices (DESIGN.md):
jamming guard bits, lookup-table width, controller threshold."""

import numpy as np

from repro.experiments import ablation


def test_jamming_guard_bits(benchmark, emit):
    results = benchmark.pedantic(ablation.guard_bits_ablation,
                                 iterations=1, rounds=1)
    emit("ablation_guard_bits", ablation.render_guard_bits(results))

    by_guards = {r.guard_bits: r for r in results}
    # 0 guards == truncation: clearly negative bias.
    assert by_guards[0].mean_signed_error < -1e-4
    # The paper's 3 guards cut |bias| severalfold (≈8x measured here).
    assert abs(by_guards[3].mean_signed_error) < \
        abs(by_guards[0].mean_signed_error) / 5
    # Diminishing returns: 4 or 6 guards change little vs 3.
    assert abs(by_guards[6].mean_signed_error
               - by_guards[3].mean_signed_error) < \
        abs(by_guards[0].mean_signed_error) / 2
    # Bias shrinks monotonically (in magnitude) up to 3 guards.
    magnitudes = [abs(by_guards[g].mean_signed_error) for g in (0, 1, 2, 3)]
    assert magnitudes == sorted(magnitudes, reverse=True)


def test_lookup_table_width(benchmark, emit):
    results = benchmark.pedantic(ablation.lookup_width_ablation,
                                 iterations=1, rounds=1)
    emit("ablation_lookup_width", ablation.render_lookup_width(results))

    by_width = {r.operand_bits: r for r in results}
    # The paper's 2K x 1B configuration.
    assert by_width[5].entries == 2048
    assert by_width[5].size_bytes == 2048
    # Capacity grows 4x per extra operand bit.
    assert by_width[6].entries == 4 * by_width[5].entries
    # Every width is exact for multiplies over its own operand space.
    for r in results:
        assert r.mul_exact_fraction == 1.0
        assert r.add_max_ulp <= 2.0
    # Area scales with capacity: width 7 is already 1.28 mm^2 — bigger
    # than the 0.75 mm^2 FPU it would displace, the reason the paper
    # stops at 5.
    assert by_width[7].area_mm2 > 1.0
    assert by_width[5].area_mm2 < 0.1


def test_controller_threshold(benchmark, emit):
    results = benchmark.pedantic(ablation.threshold_ablation,
                                 iterations=1, rounds=1)
    emit("ablation_threshold", ablation.render_threshold(results))

    # Stricter thresholds can only produce more violations and can only
    # hold precision higher.
    ordered = sorted(results, key=lambda r: r.threshold)
    violations = [r.violations for r in ordered]
    assert violations == sorted(violations, reverse=True)
    precisions = [r.mean_lcp_precision for r in ordered]
    assert all(p2 <= p1 + 0.5 for p1, p2 in zip(precisions,
                                                precisions[1:]))
    # Register floor and full precision bound everything.
    for r in results:
        assert 8.0 <= r.mean_lcp_precision <= 23.0


def test_arbitration_policy(benchmark, emit, workloads):
    results = benchmark.pedantic(
        ablation.arbitration_ablation, kwargs={"workloads": workloads},
        iterations=1, rounds=1)
    emit("ablation_arbitration", ablation.render_arbitration(results))

    # The demand policy never loses, and its advantage over the paper's
    # static slots grows with the sharing degree (wasted slots multiply).
    for r in results:
        assert r.demand_ipc >= r.static_ipc * 0.995
    for design in ("conjoin", "lookup_triv"):
        gains = [r.demand_gain for r in results
                 if r.design_name == design]
        assert gains[-1] > gains[0]  # 8-way gap > 2-way gap
    # Trivialization shrinks the policy gap: fewer ops contend at all.
    conjoin8 = next(r for r in results
                    if r.design_name == "conjoin" and r.cores_per_fpu == 8)
    lookup8 = next(r for r in results
                   if r.design_name == "lookup_triv"
                   and r.cores_per_fpu == 8)
    assert lookup8.demand_gain < conjoin8.demand_gain


def test_solver_scheme(benchmark, emit):
    results = benchmark.pedantic(ablation.solver_scheme_ablation,
                                 iterations=1, rounds=1)
    emit("ablation_solver_scheme", ablation.render_solver_scheme(results))

    for r in results:
        # Both schemes land in the same believability band: the Jacobi
        # substitution does not distort Table 1 by more than a few bits.
        assert abs(r.jacobi_min_bits - r.gauss_seidel_min_bits) <= 4
        # Gauss-Seidel converges tighter per iteration.
        assert r.gauss_seidel_penetration <= r.jacobi_penetration + 0.01


def test_warm_start_locality(benchmark, emit):
    results = benchmark.pedantic(ablation.warm_start_ablation,
                                 iterations=1, rounds=1)
    emit("ablation_warm_start", ablation.render_warm_start(results))

    off = next(r for r in results if not r.warm_start)
    on = next(r for r in results if r.warm_start)
    # Warm starting extends value locality across steps: more add-stream
    # reuse and at least as much local (trivial-or-memo) coverage.
    assert on.add_memo_hitrate > off.add_memo_hitrate
    assert on.local_coverage("add") > off.local_coverage("add")
    assert on.local_coverage("mul") >= off.local_coverage("mul") - 0.01
