"""Regenerate Figure 7: mini-FPU designs (private / 2-shared / 4-shared)
vs the Lookup + Reduced Trivialization L1."""

from repro.experiments import figure7


def test_figure7_minifpu(benchmark, emit, workloads):
    result = benchmark.pedantic(
        figure7.compute_figure7, kwargs={"workloads": workloads},
        iterations=1, rounds=1,
    )
    text = "\n\n".join([
        figure7.render(result, "lcp"),
        figure7.render(result, "narrow"),
    ])
    emit("figure7_minifpu", text)

    for phase in ("lcp", "narrow"):
        grid = result.improvement[phase]

        # Exploration constraint: the L2 FPU is shared by at least as
        # many cores as the mini-FPU.
        assert (1.5, "mini_fpu_4", 1) not in grid
        assert (1.5, "mini_fpu_2", 1) not in grid
        assert (1.5, "mini_fpu_4", 4) in grid

        # Paper: the private mini-FPU "simply cannot pack as many cores
        # ... resulting in a lower overall throughput" than Lookup for
        # the larger FPU designs.
        assert grid[(1.5, "lookup_triv", 4)] > grid[(1.5, "mini_fpu_1", 4)]

        # "The mini-FPU designs only become more attractive for the most
        # aggressive FPU design (0.375 mm^2)": the gap to Lookup narrows
        # as the FPU shrinks, because the mini's area overhead scales
        # with FPU size while its IPC advantage does not.
        gap_large = (grid[(1.5, "mini_fpu_1", 8)]
                     - grid[(1.5, "lookup_triv", 8)])
        gap_small = (grid[(0.375, "mini_fpu_1", 8)]
                     - grid[(0.375, "lookup_triv", 8)])
        assert gap_small > gap_large
