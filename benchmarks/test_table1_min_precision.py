"""Regenerate Table 1: minimum mantissa bits for believable results.

This is the heaviest benchmark: per scenario, per phase and per rounding
mode it binary-searches the believable precision against a full-precision
reference, then re-searches narrow-phase with LCP pinned (the combined
column).  All simulation runs persist in the experiment cache, so repeat
invocations are fast.
"""

from conftest import SCALE, STEPS

from repro.experiments import table1


def test_table1_minimum_precision(benchmark, emit):
    result = benchmark.pedantic(
        table1.compute_table1,
        kwargs={"steps": STEPS, "scale": SCALE},
        iterations=1, rounds=1,
    )
    emit("table1_min_precision", table1.render(result))

    for scenario, phases in result.independent.items():
        for phase in ("lcp", "narrow"):
            bits = phases[phase]
            assert all(1 <= b <= 23 for b in bits.values()), (scenario,
                                                              phase)
            # Shape check vs the paper: round-to-nearest never needs more
            # bits than truncation's requirement plus slack (truncation's
            # biased error inflates the requirement).
            assert bits["rn"] <= bits["trunc"] + 2, (scenario, phase)
        assert 1 <= result.narrow_combined[scenario] <= 23

    # At least half the scenarios tolerate <= 12 LCP bits under jamming —
    # the headline observation enabling the whole paper.
    jam_bits = [phases["lcp"]["jam"]
                for phases in result.independent.values()]
    assert sum(b <= 12 for b in jam_bits) >= len(jam_bits) // 2
