"""Regenerate Figure 6: (a) total cores in the baseline die area, and
(b) % of FP operations trivialized plus FP energy reduction."""

from repro.experiments import figure6


def test_figure6a_core_counts(benchmark, emit):
    counts = benchmark.pedantic(figure6.compute_core_counts, iterations=1,
                                rounds=1)
    emit("figure6a_core_counts", figure6.render_cores(counts))

    # The unshared baseline is 128 cores at every FPU size.
    for area in (1.5, 1.0, 0.75, 0.375):
        assert counts[(area, "conjoin", 1)] == 128

    # Sharing monotonically packs more cores.
    for area in (1.5, 1.0, 0.75, 0.375):
        series = [counts[(area, "conjoin", n)] for n in (1, 2, 4, 8)]
        assert series == sorted(series)

    # Paper Figure 6a peaks near 200 cores for the 1.5 mm^2 FPU, 8-way.
    assert 168 <= counts[(1.5, "conjoin", 8)] <= 200

    # The mini-FPU always packs fewer cores than the lookup design, and
    # sharing the mini recovers part of the gap.
    for area in (1.5, 0.375):
        assert counts[(area, "mini_fpu_1", 4)] < \
            counts[(area, "lookup_triv", 4)]
        assert counts[(area, "mini_fpu_4", 4)] > \
            counts[(area, "mini_fpu_1", 4)]


def test_figure6b_trivialization_and_energy(benchmark, emit, workloads):
    result = benchmark.pedantic(
        figure6.compute_energy, kwargs={"workloads": workloads},
        iterations=1, rounds=1,
    )
    emit("figure6b_energy", figure6.render_energy(result))

    for phase in ("lcp", "narrow"):
        triv = result.trivialized[phase]
        energy = result.energy_reduction[phase]
        # C <= R <= L for both metrics (paper Figure 6b bar ordering).
        assert triv["conv_triv"] <= triv["reduced_triv"] + 0.02
        assert triv["reduced_triv"] <= triv["lookup_triv"] + 0.02
        assert energy["conv_triv"] <= energy["reduced_triv"] + 0.02
        assert energy["reduced_triv"] <= energy["lookup_triv"] + 0.02
        # All fractions sane.
        for value in list(triv.values()) + list(energy.values()):
            assert 0.0 <= value <= 1.0

    # Paper: the L design trivializes ~53% of LCP FP ops and cuts LCP FP
    # energy by ~50%; require the same order of magnitude.
    assert result.trivialized["lcp"]["lookup_triv"] > 0.30
    assert result.energy_reduction["lcp"]["lookup_triv"] > 0.25
