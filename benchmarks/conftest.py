"""Shared configuration for the table/figure reproduction benchmarks.

Environment knobs:

``REPRO_QUICK=1``
    Shrink scenarios and simulation windows so the whole suite runs in a
    few minutes (results are noisier but shape-preserving).
``REPRO_CACHE_DIR``
    Where instrumented-run artifacts persist (default ``.repro_cache``).

Each benchmark writes its rendered table to ``results/<name>.txt`` in
addition to printing it, so the regenerated paper tables survive pytest's
output capture.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import common, table1

QUICK = os.environ.get("REPRO_QUICK", "") == "1"
STEPS = 45 if QUICK else None  # None -> the paper's 90 (30 frames)
SCALE = 0.5 if QUICK else 1.0

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_report_header(config):
    mode = "QUICK" if QUICK else "full"
    return (f"repro benchmarks: {mode} mode "
            f"(steps={STEPS or 90}, scale={SCALE}); "
            f"tables land in {RESULTS_DIR}")


@pytest.fixture(scope="session")
def emit():
    """Writer for rendered experiment tables."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def tuned_precisions():
    """Per-scenario precision registers.

    Prefers measured Table 1 results (the table1 benchmark, or the cache
    it leaves behind); falls back to the committed presets so the other
    benchmarks never trigger the multi-minute search themselves.
    """
    try:
        result = _cached_table1()
    except FileNotFoundError:
        return table1.tuned_precisions()
    return table1.tuned_precisions(result)


def _cached_table1():
    from repro.experiments.runcache import cache_dir
    steps = STEPS or 90
    path = cache_dir() / f"table1_s{steps}_x{SCALE}.json"
    if not path.exists():
        raise FileNotFoundError(path)
    return table1.compute_table1(steps=steps, scale=SCALE)


@pytest.fixture(scope="session")
def workloads(tuned_precisions):
    """Per-scenario, per-phase workload characterizations (cached runs)."""
    return common.all_workloads(tuned_map=tuned_precisions, steps=STEPS,
                                scale=SCALE)
