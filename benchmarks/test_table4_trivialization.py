"""Regenerate Table 4: % FP adds/muls trivialized or memoized (LCP),
full (23-bit, conventional conditions) vs reduced precision (all
conditions)."""

import numpy as np
from conftest import SCALE, STEPS

from repro.experiments import table4


def test_table4_trivialization_and_memoization(benchmark, emit,
                                               tuned_precisions):
    rows = benchmark.pedantic(
        table4.compute_table4,
        kwargs={"tuned_map": tuned_precisions, "steps": STEPS,
                "scale": SCALE},
        iterations=1, rounds=1,
    )
    emit("table4_trivialization", table4.render(rows))

    add_gain = []
    mul_gain = []
    for scenario, row in rows.items():
        for value in (row.trivial_add_full, row.trivial_mul_full,
                      row.trivial_add_reduced, row.trivial_mul_reduced,
                      row.memo_add_reduced, row.memo_mul_reduced):
            assert 0.0 <= value <= 100.0, scenario
        add_gain.append(row.trivial_add_reduced - row.trivial_add_full)
        mul_gain.append(row.trivial_mul_reduced - row.trivial_mul_full)

    # Paper: "Precision reduction and the new conditions increase the
    # effectiveness of trivialization ... an additional 15% and 13% of
    # total FP adds and FP multiplies" on average.  Require clear
    # average gains in the same direction.
    assert float(np.mean(add_gain)) > 2.0
    assert float(np.mean(mul_gain)) > -1.0  # mul gains can be smaller

    # Memoization hit rates are modest at full precision (the paper sees
    # ~0% for adds on ODE; our cloth/joint relaxation has somewhat more
    # repetition, but rates stay far below the reduced-precision regime).
    memo_add_full = [row.memo_add_full for row in rows.values()]
    assert float(np.mean(memo_add_full)) < 25.0

    # Scenarios tuned below 6 LCP bits collapse the multiply operand
    # space, the effect that motivates the lookup table (paper: e.g.
    # Continuous 1% -> 38%).  Our engine trivializes a larger share
    # up-front, so the collapse shows in the memo *hit rate* over the
    # surviving non-trivial stream.
    low_bits = [name for name, phases in tuned_precisions.items()
                if phases["lcp"] <= 5 and name in rows]
    for name in low_bits:
        assert rows[name].memo_mul_hitrate_reduced > \
            rows[name].memo_mul_hitrate_full
