"""Regenerate Table 8: evaluated designs — per-core area overhead and
average per-core IPC at 4 cores per L2 FPU."""

from repro.experiments import table8


def test_table8_designs(benchmark, emit, workloads):
    rows = benchmark.pedantic(
        table8.compute_table8, kwargs={"workloads": workloads},
        iterations=1, rounds=1,
    )
    emit("table8_designs", table8.render(rows))

    by_name = {row.design: row for row in rows}

    # Paper shape: IPC rises monotonically Conjoin -> ConvTriv ->
    # ReducedTriv -> LookupTriv -> mini-FPU, for both phases.
    order = ["conjoin", "conv_triv", "reduced_triv", "lookup_triv",
             "mini_fpu_1"]
    lcp = [by_name[name].lcp_ipc for name in order]
    narrow = [by_name[name].narrow_ipc for name in order]
    assert lcp == sorted(lcp)
    assert all(n2 >= n1 - 0.005
               for n1, n2 in zip(narrow, narrow[1:]))

    # LCP (31% FP) is hurt more by sharing than narrow-phase (13% FP).
    assert by_name["conjoin"].lcp_ipc < by_name["conjoin"].narrow_ipc

    # IPCs live in a plausible band for 1-wide in-order cores.
    for row in rows:
        assert 0.15 < row.lcp_ipc < 1.0
        assert 0.15 < row.narrow_ipc < 1.0
