"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` uses the legacy editable path via
this file when PEP 660 wheel building is unavailable offline.  The
console script is duplicated here because the legacy path does not read
``[project.scripts]`` from pyproject.toml.
"""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro = repro.__main__:console"],
    },
)
