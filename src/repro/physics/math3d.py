"""Vector/quaternion math routed through an :class:`~repro.fp.FPContext`.

Every elementary add/sub/mul executed here is performed at the precision of
the context's *current phase*, so the same code path serves full-precision
reference runs and reduced-precision experiments.  Shapes follow numpy
broadcasting with the geometric axis last: ``(..., 3)`` vectors and
``(..., 4)`` quaternions (w, x, y, z).
"""

from __future__ import annotations

import numpy as np

from ..fp.context import FPContext

__all__ = [
    "dot",
    "cross",
    "scale",
    "norm",
    "normalize",
    "matvec",
    "quat_mul",
    "quat_rotate_matrix",
    "quat_normalize",
    "quat_integrate",
    "quat_to_matrix_f64",
    "skew_apply",
]


def dot(ctx: FPContext, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Inner product over the last axis, one add at a time."""
    prod = ctx.mul(a, b)
    acc = prod[..., 0]
    for k in range(1, prod.shape[-1]):
        acc = ctx.add(acc, prod[..., k])
    return acc


def cross(ctx: FPContext, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product of ``(..., 3)`` vectors."""
    ax, ay, az = a[..., 0], a[..., 1], a[..., 2]
    bx, by, bz = b[..., 0], b[..., 1], b[..., 2]
    cx = ctx.sub(ctx.mul(ay, bz), ctx.mul(az, by))
    cy = ctx.sub(ctx.mul(az, bx), ctx.mul(ax, bz))
    cz = ctx.sub(ctx.mul(ax, by), ctx.mul(ay, bx))
    return np.stack([cx, cy, cz], axis=-1)


def scale(ctx: FPContext, v: np.ndarray, s) -> np.ndarray:
    """Multiply vectors by (broadcast) scalars."""
    s = np.asarray(s, dtype=np.float32)
    if s.ndim == v.ndim - 1:
        s = s[..., None]
    return ctx.mul(v, s)


def norm(ctx: FPContext, v: np.ndarray) -> np.ndarray:
    """Euclidean norm over the last axis (sqrt at full precision)."""
    return ctx.sqrt(dot(ctx, v, v))


def normalize(ctx: FPContext, v: np.ndarray, eps: float = 1e-12):
    """Return ``(unit vector, length)``; zero vectors stay zero."""
    length = norm(ctx, v)
    safe = np.where(length > eps, length, np.float32(1.0))
    return ctx.div(v, safe[..., None]), length


def matvec(ctx: FPContext, m: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Apply ``(..., 3, 3)`` matrices to ``(..., 3)`` vectors."""
    cols = []
    for i in range(3):
        cols.append(dot(ctx, m[..., i, :], v))
    return np.stack(cols, axis=-1)


def skew_apply(ctx: FPContext, w: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``w x r`` — angular velocity applied to a lever arm."""
    return cross(ctx, w, r)


def quat_mul(ctx: FPContext, q: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Hamilton product of ``(..., 4)`` quaternions (w, x, y, z)."""
    qw, qx, qy, qz = (q[..., k] for k in range(4))
    pw, px, py, pz = (p[..., k] for k in range(4))

    def _sum4(t0, t1, t2, t3):
        return ctx.add(ctx.add(t0, t1), ctx.add(t2, t3))

    w = _sum4(ctx.mul(qw, pw), ctx.mul(-qx, px), ctx.mul(-qy, py),
              ctx.mul(-qz, pz))
    x = _sum4(ctx.mul(qw, px), ctx.mul(qx, pw), ctx.mul(qy, pz),
              ctx.mul(-qz, py))
    y = _sum4(ctx.mul(qw, py), ctx.mul(-qx, pz), ctx.mul(qy, pw),
              ctx.mul(qz, px))
    z = _sum4(ctx.mul(qw, pz), ctx.mul(qx, py), ctx.mul(-qy, px),
              ctx.mul(qz, pw))
    return np.stack([w, x, y, z], axis=-1)


def quat_normalize(ctx: FPContext, q: np.ndarray) -> np.ndarray:
    """Renormalize quaternions; degenerate ones reset to identity."""
    length = ctx.sqrt(dot(ctx, q, q))
    bad = length < 1e-12
    safe = np.where(bad, np.float32(1.0), length)
    out = ctx.div(q, safe[..., None])
    if np.any(bad):
        out = out.copy()
        out[bad] = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)
    return out


def quat_rotate_matrix(ctx: FPContext, q: np.ndarray) -> np.ndarray:
    """Rotation matrices ``(..., 3, 3)`` of unit quaternions."""
    w, x, y, z = (q[..., k] for k in range(4))
    two = np.float32(2.0)
    one = np.float32(1.0)

    xx = ctx.mul(x, x)
    yy = ctx.mul(y, y)
    zz = ctx.mul(z, z)
    xy = ctx.mul(x, y)
    xz = ctx.mul(x, z)
    yz = ctx.mul(y, z)
    wx = ctx.mul(w, x)
    wy = ctx.mul(w, y)
    wz = ctx.mul(w, z)

    def _entry(d1, d2):  # 1 - 2*(d1 + d2)
        return ctx.sub(one, ctx.mul(two, ctx.add(d1, d2)))

    def _pair(p1, p2, sign):  # 2*(p1 +/- p2)
        inner = ctx.add(p1, p2) if sign > 0 else ctx.sub(p1, p2)
        return ctx.mul(two, inner)

    m00 = _entry(yy, zz)
    m11 = _entry(xx, zz)
    m22 = _entry(xx, yy)
    m01 = _pair(xy, wz, -1)
    m02 = _pair(xz, wy, +1)
    m10 = _pair(xy, wz, +1)
    m12 = _pair(yz, wx, -1)
    m20 = _pair(xz, wy, -1)
    m21 = _pair(yz, wx, +1)

    rows = np.stack(
        [
            np.stack([m00, m01, m02], axis=-1),
            np.stack([m10, m11, m12], axis=-1),
            np.stack([m20, m21, m22], axis=-1),
        ],
        axis=-2,
    )
    return rows


def quat_to_matrix_f64(quats: np.ndarray) -> np.ndarray:
    """``(..., 4)`` wxyz quaternions → ``(..., 3, 3)`` float64 matrices.

    Plain float64 outside the context: this is setup-time geometry
    (joint anchor resolution), not simulated-hardware math.  The
    expressions match the old per-component scalar unpacking operation
    for operation, so batching a whole quaternion array through it
    yields the exact bits the scalar loop produced.
    """
    q = np.asarray(quats, dtype=np.float64)
    w, x, y, z = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    out = np.empty(q.shape[:-1] + (3, 3), dtype=np.float64)
    out[..., 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    out[..., 0, 1] = 2.0 * (x * y - w * z)
    out[..., 0, 2] = 2.0 * (x * z + w * y)
    out[..., 1, 0] = 2.0 * (x * y + w * z)
    out[..., 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    out[..., 1, 2] = 2.0 * (y * z - w * x)
    out[..., 2, 0] = 2.0 * (x * z - w * y)
    out[..., 2, 1] = 2.0 * (y * z + w * x)
    out[..., 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return out


def quat_integrate(
    ctx: FPContext, q: np.ndarray, omega: np.ndarray, dt: float
) -> np.ndarray:
    """Advance unit quaternions by angular velocity ``omega`` over ``dt``.

    Uses the first-order update ``q' = normalize(q + dt/2 * (0, w) * q)``,
    the same scheme ODE's explicit integrator applies.
    """
    zeros = np.zeros_like(omega[..., 0])
    omega_q = np.stack([zeros, omega[..., 0], omega[..., 1], omega[..., 2]],
                       axis=-1)
    dq = quat_mul(ctx, omega_q, q)
    half_dt = np.float32(0.5 * dt)
    stepped = ctx.add(q, ctx.mul(dq, half_dt))
    return quat_normalize(ctx, stepped)
