"""Broad-phase collision culling.

The first collision-detection step: prune geom pairs whose world AABBs
cannot overlap.  PhysicsBench-scale scenes are small, so an O(n^2)
vectorized overlap test is both simple and fast; the expensive, massively
parallel work the paper studies happens in the *narrow* phase that runs on
the surviving pairs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .shapes import GeomStore

__all__ = ["candidate_pairs"]


def candidate_pairs(
    geoms: GeomStore, aabbs: np.ndarray
) -> List[Tuple[int, int]]:
    """Return geom index pairs whose AABBs overlap and that can collide.

    Pairs are filtered so that (a) a geom never collides with itself,
    (b) two geoms on the same body never collide, and (c) two static
    geoms (planes, or geoms on the world body) never collide.
    """
    n = len(geoms)
    if n < 2:
        return []
    lo = aabbs[:, 0, :]
    hi = aabbs[:, 1, :]
    # overlap[i, j] = AABBs of i and j intersect on every axis
    overlap = np.all(
        (lo[:, None, :] <= hi[None, :, :])
        & (lo[None, :, :] <= hi[:, None, :]),
        axis=2,
    )
    # Pair eligibility (same-body / both-static exclusions) is a pure
    # function of geom membership, cached on the store instead of being
    # rebuilt from per-geom Python attribute access every step.
    candidate = overlap & geoms.pair_eligibility()
    ii, jj = np.nonzero(np.triu(candidate, k=1))
    return list(zip(ii.tolist(), jj.tolist()))
