"""Mixed LCP constraint solver (the paper's "LCP" phase).

Contacts and joints are assembled into constraint rows and relaxed
iteratively, ODE-quickstep style: 20 iterations by default, velocity-level
with Baumgarte position stabilization.  We use projected *Jacobi with mass
splitting* instead of strict Gauss-Seidel so the whole row set updates as
vector operations through the :class:`~repro.fp.FPContext` — every
elementary add/sub/mul of the solve runs at the tuned ``lcp`` precision
(see DESIGN.md for why this substitution preserves the paper-relevant
behaviour: it is the same loosely-coupled relaxation structure).

Row convention: each row ``r`` couples bodies ``ia[r]``/``ib[r]`` with
Jacobian blocks (Jla, Jaa, Jlb, Jab) such that the constraint-space
velocity is ``J v = Jla.va + Jaa.wa + Jlb.vb + Jab.wb``; impulses apply as
``dv = invmass * J_lin * dlambda``, ``dw = I_world^-1 (J_ang * dlambda)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..fp.context import FPContext
from . import math3d
from .body import BodyStore
from .joints import JointStore
from .narrowphase import ContactSet

__all__ = ["ConstraintRows", "SolverParams", "ContactCache",
           "build_rows", "solve", "solve_rows", "solver_residual",
           "apply_warm_start_impulses"]

_BIG = np.float32(3.0e38)


@dataclass
class SolverParams:
    """Tunables of the relaxation (ODE-like defaults)."""

    iterations: int = 20
    #: Baumgarte factor (fraction of position error corrected per step)
    beta: float = 0.2
    #: penetration allowed before the bias kicks in
    slop: float = 0.005
    #: cap on bias velocity to avoid energy explosions
    max_bias_velocity: float = 4.0
    #: constraint force mixing (diagonal regularization)
    cfm: float = 1.0e-5
    #: relative normal speed below which restitution is ignored
    restitution_threshold: float = 0.25
    #: "jacobi" (mass-split, fully vectorized — the default) or
    #: "gauss_seidel" (ODE-quickstep-style sequential relaxation,
    #: realised as conflict-free colored batches)
    scheme: str = "jacobi"
    #: carry contact impulses across steps (persistent contacts); speeds
    #: convergence of resting stacks and strengthens cross-step value
    #: locality
    warm_start: bool = False
    #: fraction of the cached impulse applied on re-match
    warm_start_factor: float = 0.85


@dataclass
class ConstraintRows:
    """Struct-of-arrays for all rows of one step."""

    ia: np.ndarray
    ib: np.ndarray
    jla: np.ndarray
    jaa: np.ndarray
    jlb: np.ndarray
    jab: np.ndarray
    rhs: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    mu: np.ndarray
    normal_index: np.ndarray
    inv_d: np.ndarray = field(default=None)
    lam: np.ndarray = field(default=None)
    #: stacked Jacobian blocks (R, 12): [Jla | Jaa | Jlb | Jab]
    jacobian: np.ndarray = field(default=None, repr=False)
    #: M^-1 J^T blocks (R, 12), true (unsplit) masses
    inv_mass_jt: np.ndarray = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.rhs)

    @property
    def contact_normal_rows(self) -> np.ndarray:
        """Mask of unilateral (contact normal) rows."""
        return (self.lo == 0) & (self.normal_index < 0)


def _orthonormal_tangents(normals: np.ndarray):
    """Two unit tangents per normal (plain numpy; frame choice only).

    Degenerate normals (zero or non-finite, possible transiently at very
    low precisions) yield zero tangents: their friction rows apply no
    impulse instead of poisoning the solve with NaNs.
    """
    n = np.nan_to_num(normals.astype(np.float64))
    helper = np.where(
        (np.abs(n[:, 0]) < 0.9)[:, None],
        np.array([1.0, 0.0, 0.0])[None, :],
        np.array([0.0, 1.0, 0.0])[None, :],
    )
    t1 = np.cross(n, helper)
    lengths = np.linalg.norm(t1, axis=1, keepdims=True)
    t1 /= np.maximum(lengths, 1e-12)
    t1[lengths[:, 0] < 1e-9] = 0.0
    t2 = np.cross(n, t1)
    return t1.astype(np.float32), t2.astype(np.float32)


def build_rows(
    ctx: FPContext,
    bodies: BodyStore,
    contacts: ContactSet,
    joints: Optional[JointStore],
    dt: float,
    params: SolverParams,
) -> ConstraintRows:
    """Assemble contact (normal + 2 friction) and joint rows."""
    blocks = []

    if len(contacts):
        blocks.append(_contact_rows(ctx, bodies, contacts, dt, params))
    if joints is not None and len(joints):
        blocks.append(_joint_rows(ctx, bodies, joints, dt, params))
    if not blocks:
        empty3 = np.empty((0, 3), dtype=np.float32)
        empty = np.empty(0, dtype=np.float32)
        rows = ConstraintRows(
            ia=np.empty(0, dtype=np.int32), ib=np.empty(0, dtype=np.int32),
            jla=empty3, jaa=empty3, jlb=empty3, jab=empty3,
            rhs=empty, lo=empty, hi=empty, mu=empty,
            normal_index=np.empty(0, dtype=np.int32),
        )
        rows.inv_d = empty
        rows.lam = empty
        return rows

    offset = 0
    merged = {}
    for name in ("ia", "ib", "jla", "jaa", "jlb", "jab", "rhs", "lo",
                 "hi", "mu"):
        merged[name] = np.concatenate([blk[name] for blk in blocks])
    adjusted = []
    for blk in blocks:
        ni = blk["normal_index"].copy()
        ni[ni >= 0] += offset
        adjusted.append(ni)
        offset += len(blk["rhs"])
    merged["normal_index"] = np.concatenate(adjusted)

    rows = ConstraintRows(**merged)
    _finalize(ctx, bodies, rows, params)
    return rows


def _contact_rows(ctx, bodies, contacts, dt, params):
    """Normal + two friction rows per contact point."""
    m = len(contacts)
    pos = bodies.view("pos")
    linvel = bodies.view("linvel")
    angvel = bodies.view("angvel")

    ia, ib = contacts.body_a, contacts.body_b
    n = contacts.normal
    ra = ctx.sub(contacts.pos, pos[ia])
    rb = ctx.sub(contacts.pos, pos[ib])

    t1, t2 = _orthonormal_tangents(n)

    # Negations are sign-bit flips (MIPS neg.s), not FPU multiplies, so
    # they intentionally bypass the context.
    jla_n, jaa_n = -n, -math3d.cross(ctx, ra, n)
    jlb_n, jab_n = n, math3d.cross(ctx, rb, n)

    # Pre-solve relative normal velocity for restitution.
    rel_n = (
        math3d.dot(ctx, jla_n, linvel[ia])
        + math3d.dot(ctx, jaa_n, angvel[ia])
        + math3d.dot(ctx, jlb_n, linvel[ib])
        + math3d.dot(ctx, jab_n, angvel[ib])
    ).astype(np.float32)

    bias = params.beta / dt * np.maximum(contacts.depth - params.slop, 0.0)
    bias = np.minimum(bias, params.max_bias_velocity)
    bounce = contacts.restitution * np.maximum(
        -rel_n - params.restitution_threshold, 0.0
    )
    rhs_n = (-np.maximum(bias, bounce)).astype(np.float32)

    def _friction_block(t):
        return (-t, -math3d.cross(ctx, ra, t), t, math3d.cross(ctx, rb, t))

    jla_1, jaa_1, jlb_1, jab_1 = _friction_block(t1)
    jla_2, jaa_2, jlb_2, jab_2 = _friction_block(t2)

    zeros = np.zeros(m, dtype=np.float32)
    normal_idx = np.arange(m, dtype=np.int32)
    return {
        "ia": np.concatenate([ia, ia, ia]).astype(np.int32),
        "ib": np.concatenate([ib, ib, ib]).astype(np.int32),
        "jla": np.concatenate([jla_n, jla_1, jla_2]),
        "jaa": np.concatenate([jaa_n, jaa_1, jaa_2]),
        "jlb": np.concatenate([jlb_n, jlb_1, jlb_2]),
        "jab": np.concatenate([jab_n, jab_1, jab_2]),
        "rhs": np.concatenate([rhs_n, zeros, zeros]),
        "lo": np.concatenate([zeros, zeros, zeros]),  # friction lo set live
        "hi": np.concatenate([np.full(m, _BIG, np.float32), zeros, zeros]),
        "mu": np.concatenate([zeros, contacts.friction, contacts.friction]),
        "normal_index": np.concatenate(
            [np.full(m, -1, np.int32), normal_idx, normal_idx]
        ),
    }


def _joint_rows(ctx, bodies, joints, dt, params):
    """Three equality rows per ball joint; five per hinge."""
    if ctx.census or ctx.injector is not None:
        return _joint_rows_ref(ctx, bodies, joints, dt, params)
    return _joint_rows_fast(ctx, bodies, joints, dt, params)


def _joint_rows_fast(ctx, bodies, joints, dt, params):
    """All joints as one stacked pass (census-free path).

    Emits bit-for-bit the rows :func:`_joint_rows_ref` builds, in the
    same order — ball point rows first, then per hinge three point rows
    followed by two axis rows.  Anchor geometry runs through the same
    elementwise context ops, just batched over the joint axis; only the
    hinge axis-misalignment rhs keeps a scalar loop, because the legacy
    value is a float64 BLAS dot whose bits a float32 array pass would
    not reproduce.
    """
    pos = bodies.view("pos")
    rot = bodies.view("rot")
    world_index = bodies.world_index
    pk = joints.packed()

    n_ball = len(pk["ball_a"])
    n_hinge = len(pk["hinge_a"])
    ja = np.concatenate([pk["ball_a"], pk["hinge_a"]])
    jb = np.concatenate([pk["ball_b"], pk["hinge_b"]])
    ja = np.where(ja < 0, world_index, ja)
    jb = np.where(jb < 0, world_index, jb)
    la = np.concatenate([pk["ball_local_a"], pk["hinge_local_a"]])
    lb = np.concatenate([pk["ball_local_b"], pk["hinge_local_b"]])

    ra = math3d.matvec(ctx, rot[ja], la)
    rb = math3d.matvec(ctx, rot[jb], lb)
    wa = ctx.add(pos[ja], ra)
    wb = ctx.add(pos[jb], rb)
    error = ctx.sub(wb, wa)  # (J, 3), want -> 0

    eye = np.eye(3, dtype=np.float32)
    scale = np.float32(params.beta / dt)
    # Point-row Jacobian blocks per joint and axis, (J, 3, 3): plain
    # numpy, like the scalar builder's np.cross against basis vectors.
    jaa_pt = -np.cross(ra[:, None, :], eye[None, :, :]).astype(np.float32)
    jab_pt = np.cross(rb[:, None, :], eye[None, :, :]).astype(np.float32)
    rhs_pt = (scale * error).astype(np.float32)

    ia_ball = np.repeat(ja[:n_ball], 3)
    ib_ball = np.repeat(jb[:n_ball], 3)
    jla_ball = np.tile(-eye, (n_ball, 1))
    jaa_ball = jaa_pt[:n_ball].reshape(-1, 3)
    jlb_ball = np.tile(eye, (n_ball, 1))
    jab_ball = jab_pt[:n_ball].reshape(-1, 3)
    rhs_ball = rhs_pt[:n_ball].reshape(-1)

    if n_hinge:
        ha, hb = ja[n_ball:], jb[n_ball:]
        world_a = math3d.matvec(ctx, rot[ha], pk["hinge_axis_a"])
        world_b = math3d.matvec(ctx, rot[hb], pk["hinge_axis_b"])
        # Two directions perpendicular to each hinge axis of body A.
        p, q = _orthonormal_tangents(world_a)
        misalign = np.cross(world_a, world_b).astype(np.float32)
        rhs_p = np.empty(n_hinge, dtype=np.float32)
        rhs_q = np.empty(n_hinge, dtype=np.float32)
        for k in range(n_hinge):
            rhs_p[k] = scale * float(misalign[k] @ p[k])
            rhs_q[k] = scale * float(misalign[k] @ q[k])

        h_jla = np.zeros((n_hinge, 5, 3), dtype=np.float32)
        h_jla[:, :3, :] = -eye[None]
        h_jaa = np.zeros((n_hinge, 5, 3), dtype=np.float32)
        h_jaa[:, :3, :] = jaa_pt[n_ball:]
        h_jaa[:, 3, :] = -p
        h_jaa[:, 4, :] = -q
        h_jlb = np.zeros((n_hinge, 5, 3), dtype=np.float32)
        h_jlb[:, :3, :] = eye[None]
        h_jab = np.zeros((n_hinge, 5, 3), dtype=np.float32)
        h_jab[:, :3, :] = jab_pt[n_ball:]
        h_jab[:, 3, :] = p
        h_jab[:, 4, :] = q
        h_rhs = np.empty((n_hinge, 5), dtype=np.float32)
        h_rhs[:, :3] = rhs_pt[n_ball:]
        h_rhs[:, 3] = rhs_p
        h_rhs[:, 4] = rhs_q
        ia_h = np.repeat(ha, 5)
        ib_h = np.repeat(hb, 5)
        h_jla = h_jla.reshape(-1, 3)
        h_jaa = h_jaa.reshape(-1, 3)
        h_jlb = h_jlb.reshape(-1, 3)
        h_jab = h_jab.reshape(-1, 3)
        h_rhs = h_rhs.reshape(-1)
    else:
        empty3 = np.zeros((0, 3), dtype=np.float32)
        ia_h = ib_h = np.zeros(0, dtype=np.int64)
        h_jla = h_jaa = h_jlb = h_jab = empty3
        h_rhs = np.zeros(0, dtype=np.float32)

    count = 3 * n_ball + 5 * n_hinge
    return {
        "ia": np.concatenate([ia_ball, ia_h]).astype(np.int32),
        "ib": np.concatenate([ib_ball, ib_h]).astype(np.int32),
        "jla": np.concatenate([jla_ball, h_jla]).astype(np.float32),
        "jaa": np.concatenate([jaa_ball, h_jaa]).astype(np.float32),
        "jlb": np.concatenate([jlb_ball, h_jlb]).astype(np.float32),
        "jab": np.concatenate([jab_ball, h_jab]).astype(np.float32),
        "rhs": np.concatenate([rhs_ball, h_rhs]).astype(np.float32),
        "lo": np.full(count, -_BIG, dtype=np.float32),
        "hi": np.full(count, _BIG, dtype=np.float32),
        "mu": np.zeros(count, dtype=np.float32),
        "normal_index": np.full(count, -1, dtype=np.int32),
    }


def _joint_rows_ref(ctx, bodies, joints, dt, params):
    """Per-joint row builder (census / fault-injection path)."""
    pos = bodies.view("pos")
    rot = bodies.view("rot")
    rows = {k: [] for k in ("ia", "ib", "jla", "jaa", "jlb", "jab", "rhs")}

    world_index = bodies.world_index

    def _resolve(body):
        return world_index if body < 0 else body

    def _point_rows(body_a, body_b, local_a, local_b):
        body_a, body_b = _resolve(body_a), _resolve(body_b)
        ra = math3d.matvec(ctx, rot[body_a][None], local_a[None])[0]
        rb = math3d.matvec(ctx, rot[body_b][None], local_b[None])[0]
        wa = ctx.add(pos[body_a], ra)
        wb = ctx.add(pos[body_b], rb)
        error = ctx.sub(wb, wa)  # want -> 0
        for axis in range(3):
            e = np.zeros(3, dtype=np.float32)
            e[axis] = 1.0
            rows["ia"].append(body_a)
            rows["ib"].append(body_b)
            rows["jla"].append(-e)
            rows["jaa"].append(-np.cross(ra, e).astype(np.float32))
            rows["jlb"].append(e)
            rows["jab"].append(np.cross(rb, e).astype(np.float32))
            rows["rhs"].append(
                np.float32(params.beta / dt) * error[axis])

    def _axis_rows(body_a, body_b, axis_a, axis_b):
        body_a, body_b = _resolve(body_a), _resolve(body_b)
        world_a = math3d.matvec(ctx, rot[body_a][None], axis_a[None])[0]
        world_b = math3d.matvec(ctx, rot[body_b][None], axis_b[None])[0]
        # Two directions perpendicular to the hinge axis of body A.
        p, q = _orthonormal_tangents(world_a[None, :])
        p, q = p[0], q[0]
        misalign = np.cross(world_a, world_b).astype(np.float32)
        zero3 = np.zeros(3, dtype=np.float32)
        for direction in (p, q):
            rows["ia"].append(body_a)
            rows["ib"].append(body_b)
            rows["jla"].append(zero3)
            rows["jaa"].append(-direction)
            rows["jlb"].append(zero3)
            rows["jab"].append(direction)
            rows["rhs"].append(
                np.float32(params.beta / dt) * float(misalign @ direction))

    for joint in joints.ball_joints:
        _point_rows(joint.body_a, joint.body_b, joint.local_a, joint.local_b)
    for joint in joints.hinge_joints:
        _point_rows(joint.body_a, joint.body_b, joint.local_a, joint.local_b)
        _axis_rows(joint.body_a, joint.body_b, joint.axis_a, joint.axis_b)

    count = len(rows["rhs"])
    return {
        "ia": np.array(rows["ia"], dtype=np.int32),
        "ib": np.array(rows["ib"], dtype=np.int32),
        "jla": np.stack(rows["jla"]).astype(np.float32),
        "jaa": np.stack(rows["jaa"]).astype(np.float32),
        "jlb": np.stack(rows["jlb"]).astype(np.float32),
        "jab": np.stack(rows["jab"]).astype(np.float32),
        "rhs": np.array(rows["rhs"], dtype=np.float32),
        "lo": np.full(count, -_BIG, dtype=np.float32),
        "hi": np.full(count, _BIG, dtype=np.float32),
        "mu": np.zeros(count, dtype=np.float32),
        "normal_index": np.full(count, -1, dtype=np.int32),
    }


def _tree_sum(ctx, arr: np.ndarray) -> np.ndarray:
    """Sum an (R, W) array over axis 1 with reduced pairwise adds."""
    while arr.shape[1] > 1:
        width = arr.shape[1]
        half = width // 2
        summed = ctx.add(arr[:, :half], arr[:, half: 2 * half])
        if width % 2:
            summed = np.concatenate([summed, arr[:, -1:]], axis=1)
        arr = summed
    return arr[:, 0]


def _finalize(ctx, bodies, rows: ConstraintRows, params) -> None:
    """Stack Jacobians, compute M^-1 J^T and the mass-split diagonal."""
    invmass = bodies.view("invmass")
    inv_inertia = bodies.view("inv_inertia_world")
    n_slots = bodies.world_index + 1

    rows.jacobian = np.concatenate(
        [rows.jla, rows.jaa, rows.jlb, rows.jab], axis=1
    ).astype(np.float32)

    im_a = invmass[rows.ia].astype(np.float32)
    im_b = invmass[rows.ib].astype(np.float32)
    lin_a = math3d.scale(ctx, rows.jla, im_a)
    ang_a = math3d.matvec(ctx, inv_inertia[rows.ia], rows.jaa)
    lin_b = math3d.scale(ctx, rows.jlb, im_b)
    ang_b = math3d.matvec(ctx, inv_inertia[rows.ib], rows.jab)
    rows.inv_mass_jt = np.concatenate(
        [lin_a, ang_a, lin_b, ang_b], axis=1
    ).astype(np.float32)

    # Constraint degree per body: Jacobi mass splitting scales the
    # effective-mass diagonal up so simultaneous row updates contract.
    # Gauss-Seidel updates rows sequentially and needs no splitting.
    if params.scheme == "gauss_seidel":
        degree = np.ones(n_slots, dtype=np.float32)
    else:
        degree = np.zeros(n_slots, dtype=np.float32)
        np.add.at(degree, rows.ia, 1.0)
        np.add.at(degree, rows.ib, 1.0)
        degree = np.maximum(degree, 1.0)

    d_a = _tree_sum(ctx, ctx.mul(rows.jacobian[:, :6],
                                 rows.inv_mass_jt[:, :6]))
    d_b = _tree_sum(ctx, ctx.mul(rows.jacobian[:, 6:],
                                 rows.inv_mass_jt[:, 6:]))
    d = ctx.add(ctx.mul(d_a, degree[rows.ia]), ctx.mul(d_b, degree[rows.ib]))
    d = ctx.add(d, np.float32(params.cfm))
    rows.inv_d = ctx.div(np.float32(1.0), d)
    rows.lam = np.zeros(len(rows), dtype=np.float32)


class _Scatter:
    """Precomputed incidence waves for vectorized impulse scatter.

    The 2R (row, side) incidences are sorted by body; wave ``k`` applies
    the k-th incidence of every body that has one.  Each wave is a single
    reduced ``ctx.add`` with no zero padding, so the trivialization census
    sees exactly the adds real hardware would execute.
    """

    def __init__(self, rows: ConstraintRows, n_slots: int) -> None:
        inc_body = np.concatenate([rows.ia, rows.ib]).astype(np.int64)
        self.order = np.argsort(inc_body, kind="stable")
        sorted_body = inc_body[self.order]
        counts = np.bincount(sorted_body, minlength=n_slots)
        starts = np.zeros(n_slots, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        self.waves = []
        max_degree = int(counts.max()) if len(counts) else 0
        for k in range(max_degree):
            body_idx = np.nonzero(counts > k)[0]
            self.waves.append((body_idx, starts[body_idx] + k))


def _color_rows(rows: ConstraintRows, world_index: int):
    """Partition rows into batches with no body shared inside a batch.

    Rows touching only the immovable world body never conflict through
    it (its velocity is pinned), so ground contacts parallelize freely.
    Within a batch the vectorized update has exact Gauss-Seidel
    semantics; batches execute sequentially in row order.
    """
    batches = []        # list of lists of row indices
    occupancy = []      # per batch: set of body ids
    for r in range(len(rows)):
        touched = {int(rows.ia[r]), int(rows.ib[r])} - {world_index}
        for color, bodies_in_batch in enumerate(occupancy):
            if not (touched & bodies_in_batch):
                batches[color].append(r)
                bodies_in_batch |= touched
                break
        else:
            batches.append([r])
            occupancy.append(set(touched))
    return [np.array(batch, dtype=np.int64) for batch in batches]


def solve(
    ctx: FPContext,
    bodies: BodyStore,
    rows: ConstraintRows,
    params: SolverParams,
) -> None:
    """Relax the mixed LCP, updating body velocities in place."""
    if len(rows) == 0:
        return
    if params.scheme == "gauss_seidel":
        _solve_gauss_seidel(ctx, bodies, rows, params)
        return
    if params.scheme != "jacobi":
        raise ValueError(f"unknown solver scheme: {params.scheme!r}")
    linvel = bodies.view("linvel")
    angvel = bodies.view("angvel")
    vel = np.concatenate([linvel, angvel], axis=1).astype(np.float32)
    pinned = np.array([bodies.world_index], dtype=np.int64)
    solve_rows(ctx, vel, rows, params, pinned)
    linvel[:] = vel[:, :3]
    angvel[:] = vel[:, 3:]


def solve_rows(
    ctx: FPContext,
    vel: np.ndarray,
    rows: ConstraintRows,
    params: SolverParams,
    pinned: np.ndarray,
) -> None:
    """Jacobi-relax ``rows`` against a ``(n_slots, 6)`` velocity array.

    ``vel`` is ``[linvel | angvel]`` per slot, updated in place;
    ``pinned`` lists slot indices held at zero velocity — one virtual
    world body per world, so a :class:`~repro.physics.batch.WorldBatch`
    can solve the concatenated rows of K stacked worlds in one call.
    """
    if len(rows) == 0 or params.iterations <= 0:
        return
    kern = ctx.fast_kernel()
    if kern is not None:
        _solve_jacobi_fast(kern, vel, rows, params, pinned)
    else:
        _solve_jacobi_ref(ctx, vel, rows, params, pinned)


def _solve_jacobi_ref(ctx, vel, rows, params, pinned):
    """Op-for-op Jacobi sweep (census / fault-injection path)."""
    n_slots = vel.shape[0]
    scatter = _Scatter(rows, n_slots)
    jac = rows.jacobian
    inv_mass_jt = rows.inv_mass_jt
    ia, ib = rows.ia, rows.ib

    friction_idx = np.nonzero(rows.normal_index >= 0)[0]
    friction_normals = rows.normal_index[friction_idx]
    mu_f = rows.mu[friction_idx]
    lo = rows.lo.copy()
    hi = rows.hi.copy()
    lam = rows.lam
    # Negation is a sign-bit flip outside the context; hoisted out of
    # the iteration loop.
    neg_inv_d = -rows.inv_d

    for _ in range(params.iterations):
        # Constraint-space velocity of every row: J . v as one big
        # elementwise multiply plus a pairwise reduction tree.
        gathered = np.concatenate([vel[ia], vel[ib]], axis=1)
        rel = _tree_sum(ctx, ctx.mul(jac, gathered))

        if len(friction_idx):
            # Coulomb box bounds follow the live normal impulses.
            bound = ctx.mul(mu_f, lam[friction_normals])
            lo[friction_idx] = -bound
            hi[friction_idx] = bound

        # lam + (rel + rhs) * -inv_d, the dlam update fused into one
        # axpy kernel on the census-free path.
        new_lam = np.clip(ctx.axpy(ctx.add(rel, rows.rhs), neg_inv_d, lam),
                          lo, hi)
        delta = ctx.sub(new_lam, lam)
        lam = new_lam

        # Per-row velocity deltas, scattered one incidence wave at a time
        # (each wave is a real, precision-reduced FP add).
        dvw = ctx.mul(inv_mass_jt, delta[:, None])
        inc = np.concatenate([dvw[:, :6], dvw[:, 6:]], axis=0)[scatter.order]
        for body_idx, inc_pos in scatter.waves:
            vel[body_idx] = ctx.add(vel[body_idx], inc[inc_pos])
        vel[pinned] = 0.0  # keep the virtual world bodies pinned

    rows.lam = lam


def _solve_jacobi_fast(kern, vel, rows, params, pinned):
    """Census-free Jacobi sweep executed in the reduced domain.

    Every solver input is pre-reduced once and only op *results* are
    rounded afterwards: rounding is idempotent in all three modes, so
    ``round(op(round(a), round(b)))`` equals the fused round-a/round-b/
    op/round-result kernel bit for bit while running ~6 ufuncs per op
    instead of ~16 (and no per-op context dispatch).  Two arrays keep a
    raw master beside the reduced shadow because their legacy values can
    leave the reduced domain: ``lam`` (``np.clip`` against unreduced
    bounds like ``_BIG``) and ``vel`` (slots no row touches keep their
    incoming raw velocities).
    """
    n_slots = vel.shape[0]
    scatter = _Scatter(rows, n_slots)
    jac = kern.enter(rows.jacobian)
    imjt = kern.enter(rows.inv_mass_jt)
    rhs = kern.enter(rows.rhs)
    # ctx.div does not round its result, so inv_d arrives raw; enter it
    # once (the operand reduction every downstream op applied to it).
    neg_inv_d = kern.enter(-rows.inv_d)
    ia, ib = rows.ia, rows.ib

    friction_idx = np.nonzero(rows.normal_index >= 0)[0]
    friction_normals = rows.normal_index[friction_idx]
    mu_f = kern.enter(rows.mu[friction_idx])
    has_friction = len(friction_idx) > 0
    lo = rows.lo.copy()
    hi = rows.hi.copy()
    lam = rows.lam            # raw master (post-clip values)
    lamr = kern.enter(lam)    # reduced shadow (what ops actually read)
    velr = kern.enter(vel)    # reduced shadow of the velocities

    r_count = len(rows)
    order = scatter.order
    gath = np.empty((r_count, 12), dtype=np.float32)
    prod = np.empty((r_count, 12), dtype=np.float32)
    t6 = np.empty((r_count, 6), dtype=np.float32)
    t3 = np.empty((r_count, 3), dtype=np.float32)
    t2 = np.empty(r_count, dtype=np.float32)
    acc = np.empty(r_count, dtype=np.float32)
    dvw = np.empty((r_count, 12), dtype=np.float32)
    inc = np.empty((2 * r_count, 6), dtype=np.float32)
    inc_sorted = np.empty_like(inc)

    for _ in range(params.iterations):
        gath[:, :6] = velr[ia]
        gath[:, 6:] = velr[ib]
        # J . v: elementwise multiply + the same pairwise reduction tree
        # _tree_sum walks for width 12 (6, 3, then cols 0+1, then +2).
        np.multiply(jac, gath, out=prod)
        kern.reduce_(prod)
        np.add(prod[:, :6], prod[:, 6:], out=t6)
        kern.reduce_(t6)
        np.add(t6[:, :3], t6[:, 3:], out=t3)
        kern.reduce_(t3)
        np.add(t3[:, 0], t3[:, 1], out=t2)
        kern.reduce_(t2)
        np.add(t2, t3[:, 2], out=acc)
        kern.reduce_(acc)

        if has_friction:
            bound = kern.binop(np.multiply, mu_f, lamr[friction_normals])
            lo[friction_idx] = -bound
            hi[friction_idx] = bound

        # lam + (rel + rhs) * -inv_d, then clip against the raw bounds.
        np.add(acc, rhs, out=acc)
        kern.reduce_(acc)
        np.multiply(acc, neg_inv_d, out=acc)
        kern.reduce_(acc)
        np.add(acc, lamr, out=acc)
        kern.reduce_(acc)
        new_lam = np.clip(acc, lo, hi)
        new_lamr = kern.enter(new_lam)
        delta = kern.binop(np.subtract, new_lamr, lamr)
        lam = new_lam
        lamr = new_lamr

        np.multiply(imjt, delta[:, None], out=dvw)
        kern.reduce_(dvw)
        inc[:r_count] = dvw[:, :6]
        inc[r_count:] = dvw[:, 6:]
        np.take(inc, order, axis=0, out=inc_sorted)
        for body_idx, inc_pos in scatter.waves:
            chunk = velr[body_idx]
            np.add(chunk, inc_sorted[inc_pos], out=chunk)
            kern.reduce_(chunk)
            velr[body_idx] = chunk
        velr[pinned] = 0.0

    rows.lam = lam
    if scatter.waves:
        touched = scatter.waves[0][0]
        vel[touched] = velr[touched]
    vel[pinned] = 0.0


def solver_residual(bodies: BodyStore, rows: ConstraintRows) -> float:
    """Post-solve constraint violation on contact normal rows (m/s).

    The worst remaining approach velocity ``max(0, -(J v + rhs))`` over
    unilateral rows — a converged solve leaves this near zero, a diverged
    or corrupted one leaves it large (or non-finite).  Computed in plain
    float64 outside the precision-reduced context: this is the phase
    guards' diagnostic, part of the monitoring software, not the
    simulated hardware.
    """
    if rows is None or len(rows) == 0:
        return 0.0
    normal = rows.contact_normal_rows
    if not normal.any():
        return 0.0
    linvel = bodies.view("linvel").astype(np.float64)
    angvel = bodies.view("angvel").astype(np.float64)
    vel = np.concatenate([linvel, angvel], axis=1)
    ia = rows.ia[normal]
    ib = rows.ib[normal]
    jac = rows.jacobian[normal].astype(np.float64)
    gathered = np.concatenate([vel[ia], vel[ib]], axis=1)
    rel = np.einsum("ij,ij->i", jac, gathered)
    deficit = -(rel + rows.rhs[normal].astype(np.float64))
    worst = float(deficit.max())
    if not np.isfinite(worst):
        return worst
    return max(0.0, worst)


def _solve_gauss_seidel(
    ctx: FPContext,
    bodies: BodyStore,
    rows: ConstraintRows,
    params: SolverParams,
) -> None:
    """Sequential (ODE-quickstep-style) relaxation via colored batches."""
    world_index = bodies.world_index
    linvel = bodies.view("linvel")
    angvel = bodies.view("angvel")
    vel = np.concatenate([linvel, angvel], axis=1).astype(np.float32)

    if params.iterations > 0 and len(rows):
        batches = _color_rows(rows, world_index)
        kern = ctx.fast_kernel()
        if kern is not None:
            _gs_sweep_fast(kern, vel, rows, params, batches, world_index)
        else:
            _gs_sweep_ref(ctx, vel, rows, params, batches, world_index)

    linvel[:] = vel[:, :3]
    angvel[:] = vel[:, 3:]


def _gs_sweep_ref(ctx, vel, rows, params, batches, world_index):
    """Op-for-op colored sweep (census / fault-injection path)."""
    jac = rows.jacobian
    inv_mass_jt = rows.inv_mass_jt
    lam = rows.lam
    lo = rows.lo.copy()
    hi = rows.hi.copy()
    neg_inv_d = -rows.inv_d

    for _ in range(params.iterations):
        for batch in batches:
            ia = rows.ia[batch]
            ib = rows.ib[batch]
            gathered = np.concatenate([vel[ia], vel[ib]], axis=1)
            rel = _tree_sum(ctx, ctx.mul(jac[batch], gathered))

            friction = rows.normal_index[batch] >= 0
            if friction.any():
                f_rows = batch[friction]
                bound = ctx.mul(rows.mu[f_rows],
                                lam[rows.normal_index[f_rows]])
                lo[f_rows] = -bound
                hi[f_rows] = bound

            new_lam = np.clip(
                ctx.axpy(ctx.add(rel, rows.rhs[batch]), neg_inv_d[batch],
                         lam[batch]),
                lo[batch], hi[batch])
            delta = ctx.sub(new_lam, lam[batch])
            lam[batch] = new_lam

            dvw = ctx.mul(inv_mass_jt[batch], delta[:, None])
            # Bodies are unique within a batch (except the pinned world
            # body), so direct indexed adds are conflict-free.
            vel[ia] = ctx.add(vel[ia], dvw[:, :6])
            vel[ib] = ctx.add(vel[ib], dvw[:, 6:])
            vel[world_index] = 0.0

    rows.lam = lam


def _gs_sweep_fast(kern, vel, rows, params, batches, world_index):
    """Census-free colored sweep in the reduced domain.

    Same raw-master/reduced-shadow structure as
    :func:`_solve_jacobi_fast`; the ``lamr`` shadow is updated batch by
    batch so later color batches read earlier batches' impulses exactly
    as the sequential relaxation does.
    """
    jac = kern.enter(rows.jacobian)
    imjt = kern.enter(rows.inv_mass_jt)
    rhs = kern.enter(rows.rhs)
    neg_inv_d = kern.enter(-rows.inv_d)
    mu = kern.enter(rows.mu)
    lam = rows.lam
    lamr = kern.enter(lam)
    lo = rows.lo.copy()
    hi = rows.hi.copy()
    velr = kern.enter(vel)

    batch_meta = []
    for batch in batches:
        friction = rows.normal_index[batch] >= 0
        f_rows = batch[friction]
        batch_meta.append((batch, rows.ia[batch], rows.ib[batch],
                           f_rows, rows.normal_index[f_rows]))

    for _ in range(params.iterations):
        for batch, ia, ib, f_rows, f_norm in batch_meta:
            gathered = np.concatenate([velr[ia], velr[ib]], axis=1)
            prod = kern.binop(np.multiply, jac[batch], gathered)
            t6 = kern.binop(np.add, prod[:, :6], prod[:, 6:])
            t3 = kern.binop(np.add, t6[:, :3], t6[:, 3:])
            t2 = kern.binop(np.add, t3[:, 0], t3[:, 1])
            rel = kern.binop(np.add, t2, t3[:, 2])

            if len(f_rows):
                bound = kern.binop(np.multiply, mu[f_rows], lamr[f_norm])
                lo[f_rows] = -bound
                hi[f_rows] = bound

            acc = kern.binop(np.add, rel, rhs[batch])
            acc = kern.binop(np.multiply, acc, neg_inv_d[batch])
            acc = kern.binop(np.add, acc, lamr[batch])
            new_lam = np.clip(acc, lo[batch], hi[batch])
            new_lamr = kern.enter(new_lam)
            delta = kern.binop(np.subtract, new_lamr, lamr[batch])
            lam[batch] = new_lam
            lamr[batch] = new_lamr

            dvw = kern.binop(np.multiply, imjt[batch], delta[:, None])
            velr[ia] = kern.binop(np.add, velr[ia], dvw[:, :6])
            velr[ib] = kern.binop(np.add, velr[ib], dvw[:, 6:])
            velr[world_index] = 0.0

    rows.lam = lam
    touched = np.unique(np.concatenate([rows.ia, rows.ib]))
    vel[touched] = velr[touched]
    vel[world_index] = 0.0


class ContactCache:
    """Persistent-contact impulse cache for warm starting.

    Contacts are matched across steps by body pair and world-space
    proximity (our narrow phase regenerates contact sets each step, so
    there are no stable feature ids to key on).  Matched contacts start
    the new solve from a fraction of last step's impulses — ODE-style
    warm starting, which both converges resting stacks faster and
    increases the cross-step value locality the paper's memoization
    leans on.
    """

    def __init__(self, match_tolerance: float = 0.08) -> None:
        self.match_tolerance = match_tolerance
        self._store = {}

    def warm_start(self, contacts: ContactSet, rows: ConstraintRows,
                   params: SolverParams) -> int:
        """Seed ``rows.lam`` from cached impulses; returns match count."""
        if not params.warm_start or not len(contacts):
            return 0
        m = len(contacts)
        matches = 0
        factor = np.float32(params.warm_start_factor)
        tol2 = self.match_tolerance ** 2
        for k in range(m):
            key = (int(contacts.body_a[k]), int(contacts.body_b[k]))
            cached = self._store.get(key)
            if not cached:
                continue
            best = None
            best_d2 = tol2
            for pos, impulses in cached:
                delta = contacts.pos[k] - pos
                d2 = float(delta @ delta)
                if d2 < best_d2:
                    best_d2 = d2
                    best = impulses
            if best is not None:
                # rows are laid out [normals | friction1 | friction2]
                rows.lam[k] = factor * best[0]
                rows.lam[m + k] = factor * best[1]
                rows.lam[2 * m + k] = factor * best[2]
                matches += 1
        return matches

    def store(self, contacts: ContactSet, rows: ConstraintRows) -> None:
        """Remember this step's converged impulses."""
        self._store.clear()
        m = len(contacts)
        for k in range(m):
            key = (int(contacts.body_a[k]), int(contacts.body_b[k]))
            self._store.setdefault(key, []).append((
                contacts.pos[k].copy(),
                (float(rows.lam[k]), float(rows.lam[m + k]),
                 float(rows.lam[2 * m + k])),
            ))


def apply_warm_start_impulses(
    ctx: FPContext,
    bodies: BodyStore,
    rows: ConstraintRows,
) -> None:
    """Apply the seeded ``rows.lam`` to body velocities before iterating.

    Warm starting only helps if the cached impulses act immediately;
    otherwise the first iterations re-derive them from scratch.
    """
    seeded = np.nonzero(rows.lam != 0)[0]
    if len(seeded) == 0:
        return
    vel = np.concatenate(
        [bodies.view("linvel"), bodies.view("angvel")], axis=1
    ).astype(np.float32)
    kern = ctx.fast_kernel()
    if kern is None:
        dvw = ctx.mul(rows.inv_mass_jt[seeded], rows.lam[seeded][:, None])
        # Sequential per-row application keeps conflicting rows correct.
        for i, r in enumerate(seeded):
            ia, ib = int(rows.ia[r]), int(rows.ib[r])
            vel[ia] = ctx.add(vel[ia], dvw[i, :6])
            vel[ib] = ctx.add(vel[ib], dvw[i, 6:])
        vel[bodies.world_index] = 0.0
    else:
        imjt = kern.enter(rows.inv_mass_jt[seeded])
        lamr = kern.enter(rows.lam[seeded][:, None])
        dvw = kern.binop(np.multiply, imjt, lamr)
        # Wave-structured scatter, bit-identical to the sequential loop:
        # incidences are interleaved (row's ia side, then its ib side) so
        # the stable sort keeps each body's adds in the exact order the
        # loop applied them; adds on different bodies are independent.
        s = len(seeded)
        inc_body = np.empty(2 * s, dtype=np.int64)
        inc_body[0::2] = rows.ia[seeded]
        inc_body[1::2] = rows.ib[seeded]
        inc = np.empty((2 * s, 6), dtype=np.float32)
        inc[0::2] = dvw[:, :6]
        inc[1::2] = dvw[:, 6:]
        order = np.argsort(inc_body, kind="stable")
        inc = np.ascontiguousarray(inc[order])
        sorted_body = inc_body[order]
        counts = np.bincount(sorted_body, minlength=vel.shape[0])
        starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        velr = kern.enter(vel)
        for k in range(int(counts.max())):
            body_idx = np.nonzero(counts > k)[0]
            chunk = velr[body_idx]
            np.add(chunk, inc[starts[body_idx] + k], out=chunk)
            kern.reduce_(chunk)
            velr[body_idx] = chunk
        touched = np.unique(inc_body)
        vel[touched] = velr[touched]
        vel[bodies.world_index] = 0.0
    bodies.view("linvel")[:] = vel[:, :3]
    bodies.view("angvel")[:] = vel[:, 3:]
