"""Mass-spring cloth (the Deformable workload's substrate).

The paper's modified ODE adds cloth simulation; here a rectangular patch
of particles is held together by structural and shear distance constraints
relaxed with the same Jacobi iteration as the rigid-body LCP — cloth rows
are just extra loosely-coupled relaxation work inside the ``lcp`` phase.
Collisions against the ground plane and against spheres are resolved by
projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..fp.context import FPContext
from . import math3d

__all__ = ["Cloth"]


class Cloth:
    """A (rows x cols) particle grid with distance constraints."""

    def __init__(
        self,
        origin,
        rows: int,
        cols: int,
        spacing: float,
        particle_mass: float = 0.05,
        pinned: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.spacing = float(spacing)
        origin = np.asarray(origin, dtype=np.float32)

        grid = np.stack(
            np.meshgrid(
                np.arange(cols, dtype=np.float32) * spacing,
                np.arange(rows, dtype=np.float32) * -spacing,
                indexing="xy",
            ),
            axis=-1,
        ).reshape(-1, 2)
        self.pos = np.zeros((rows * cols, 3), dtype=np.float32)
        self.pos[:, 0] = origin[0] + grid[:, 0]
        self.pos[:, 1] = origin[1]
        self.pos[:, 2] = origin[2] + grid[:, 1]
        self.vel = np.zeros_like(self.pos)
        self.mass = np.full(rows * cols, particle_mass, dtype=np.float32)
        self.invmass = 1.0 / self.mass
        for r, c in pinned or []:
            self.invmass[self.index(r, c)] = 0.0

        self._build_constraints()

    def index(self, row: int, col: int) -> int:
        return row * self.cols + col

    def _build_constraints(self) -> None:
        pa, pb = [], []
        for r in range(self.rows):
            for c in range(self.cols):
                i = self.index(r, c)
                if c + 1 < self.cols:  # structural horizontal
                    pa.append(i)
                    pb.append(self.index(r, c + 1))
                if r + 1 < self.rows:  # structural vertical
                    pa.append(i)
                    pb.append(self.index(r + 1, c))
                if r + 1 < self.rows and c + 1 < self.cols:  # shear
                    pa.append(i)
                    pb.append(self.index(r + 1, c + 1))
                    pa.append(self.index(r, c + 1))
                    pb.append(self.index(r + 1, c))
        self.edge_a = np.array(pa, dtype=np.int64)
        self.edge_b = np.array(pb, dtype=np.int64)
        rest = np.linalg.norm(
            self.pos[self.edge_a].astype(np.float64)
            - self.pos[self.edge_b].astype(np.float64),
            axis=1,
        )
        self.rest_length = rest.astype(np.float32)

    @property
    def particle_count(self) -> int:
        return len(self.pos)

    # ------------------------------------------------------------------
    # Simulation (called by World inside the appropriate phases)
    # ------------------------------------------------------------------
    def apply_gravity(self, ctx: FPContext, gravity, dt: float) -> None:
        dv = np.where(
            (self.invmass > 0)[:, None],
            np.asarray(gravity, dtype=np.float32)[None, :] * np.float32(dt),
            np.float32(0.0),
        )
        self.vel = ctx.add(self.vel, dv)

    def solve_constraints(self, ctx: FPContext, dt: float,
                          iterations: int, beta: float = 0.2) -> None:
        """Velocity-level Jacobi relaxation of the distance constraints."""
        if iterations <= 0:
            return
        kern = ctx.fast_kernel()
        if kern is not None:
            self._solve_constraints_fast(kern, dt, iterations, beta)
            return
        wa = self.invmass[self.edge_a]
        wb = self.invmass[self.edge_b]
        w_sum = np.maximum(wa + wb, 1e-9).astype(np.float32)
        bias_scale = np.float32(beta / dt)

        for _ in range(iterations):
            delta = ctx.sub(self.pos[self.edge_b], self.pos[self.edge_a])
            direction, length = math3d.normalize(ctx, delta)
            error = ctx.sub(length, self.rest_length)
            rel = math3d.dot(
                ctx, direction,
                ctx.sub(self.vel[self.edge_b], self.vel[self.edge_a]))
            target = ctx.add(rel, ctx.mul(bias_scale, error))
            lam = ctx.div(target, w_sum)  # impulse magnitude along edge
            impulse = math3d.scale(ctx, direction, lam)
            # Jacobi accumulate with averaging by particle degree.
            acc = np.zeros_like(self.vel)
            np.add.at(acc, self.edge_a, impulse * wa[:, None])
            np.add.at(acc, self.edge_b, -impulse * wb[:, None])
            degree = np.zeros(len(self.pos), dtype=np.float32)
            np.add.at(degree, self.edge_a, 1.0)
            np.add.at(degree, self.edge_b, 1.0)
            degree = np.maximum(degree, 1.0)
            self.vel = ctx.add(self.vel, acc / degree[:, None])

    def _solve_constraints_fast(self, kern, dt: float, iterations: int,
                                beta: float) -> None:
        """Reduced-domain relaxation (census-free path).

        Positions don't move during the velocity solve, so the edge
        geometry (direction, rest-length error, bias) — which the
        op-for-op loop recomputes to identical values every iteration —
        is hoisted out; the remaining per-iteration ops run as reduced
        whole-array passes and reproduce the legacy bits exactly.
        """
        ea, eb = self.edge_a, self.edge_b
        wa = self.invmass[ea]
        wb = self.invmass[eb]
        w_sum = np.maximum(wa + wb, 1e-9).astype(np.float32)

        pa = kern.enter(self.pos[ea])
        pb = kern.enter(self.pos[eb])
        delta = kern.binop(np.subtract, pb, pa)
        prod = kern.binop(np.multiply, delta, delta)
        d2 = kern.binop(np.add, kern.binop(np.add, prod[:, 0], prod[:, 1]),
                        prod[:, 2])
        with np.errstate(invalid="ignore"):
            length = np.sqrt(d2)
        safe = np.where(length > 1e-12, length, np.float32(1.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            direction = np.divide(delta, safe[:, None])
        dir_r = kern.enter(direction)
        error = kern.binop(np.subtract, kern.enter(length),
                           kern.enter(self.rest_length))
        biased = kern.binop(np.multiply,
                            kern.enter(np.float32(beta / dt)), error)

        degree = np.zeros(len(self.pos), dtype=np.float32)
        np.add.at(degree, ea, 1.0)
        np.add.at(degree, eb, 1.0)
        degree = np.maximum(degree, 1.0)[:, None]
        wa_col = wa[:, None]
        wb_col = wb[:, None]

        velr = kern.enter(self.vel)
        for _ in range(iterations):
            vd = kern.binop(np.subtract, velr[eb], velr[ea])
            p = kern.binop(np.multiply, dir_r, vd)
            rel = kern.binop(np.add, kern.binop(np.add, p[:, 0], p[:, 1]),
                             p[:, 2])
            target = kern.binop(np.add, rel, biased)
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = np.divide(target, w_sum)
            impulse = kern.binop(np.multiply, dir_r,
                                 kern.enter(lam)[:, None])
            acc = np.zeros_like(self.vel)
            np.add.at(acc, ea, impulse * wa_col)
            np.add.at(acc, eb, -impulse * wb_col)
            velr = kern.binop(np.add, velr, kern.enter(acc / degree))
        self.vel = velr

    def collide(self, ctx: FPContext, world) -> None:
        """Resolve particle collisions with the ground plane and spheres.

        Detection (distances, directions, depths) runs in the ``narrow``
        phase — it *is* narrow-phase collision detection — while the
        velocity/position response applies at the surrounding (``lcp``)
        phase precision, mirroring the rigid-body pipeline split.
        """
        from .shapes import ShapeType  # local import avoids a cycle

        for geom in world.geoms.geoms:
            if geom.shape is ShapeType.PLANE:
                n = geom.params.astype(np.float32)
                with ctx.in_phase("narrow"):
                    height = ctx.sub(math3d.dot(ctx, n[None, :], self.pos),
                                     np.float32(geom.offset))
                below = height < 0
                if below.any():
                    push = math3d.scale(ctx, n[None, :], -height)
                    self.pos = np.where(below[:, None],
                                        ctx.add(self.pos, push), self.pos)
                    vn = math3d.dot(ctx, n[None, :], self.vel)
                    correction = math3d.scale(ctx, n[None, :], vn)
                    stopped = ctx.sub(self.vel, correction)
                    self.vel = np.where(below[:, None] & (vn < 0)[:, None],
                                        stopped, self.vel)
            elif geom.shape is ShapeType.SPHERE:
                center = world.bodies.pos[geom.body]
                radius = np.float32(geom.params[0] * 1.02)
                with ctx.in_phase("narrow"):
                    delta = ctx.sub(self.pos, center[None, :])
                    direction, dist = math3d.normalize(ctx, delta)
                    depth = ctx.sub(radius, dist)
                inside = dist < radius
                if inside.any():
                    push = math3d.scale(ctx, direction, depth)
                    self.pos = np.where(inside[:, None],
                                        ctx.add(self.pos, push), self.pos)
                    vn = math3d.dot(ctx, direction, self.vel)
                    correction = math3d.scale(ctx, direction, vn)
                    damped = ctx.sub(self.vel, correction)
                    self.vel = np.where(inside[:, None] & (vn < 0)[:, None],
                                        damped, self.vel)

    def integrate(self, ctx: FPContext, dt: float) -> None:
        step = math3d.scale(ctx, self.vel, np.float32(dt))
        moving = (self.invmass > 0)[:, None]
        self.pos = np.where(moving, ctx.add(self.pos, step), self.pos)
