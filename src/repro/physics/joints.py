"""Articulation joints (ball-and-socket, hinge) for ragdolls and pendulums.

Joints are equality constraints solved by the same LCP relaxation as
contacts, following ODE's constraint-based approach: each joint
contributes rows with unbounded Lagrange multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .body import BodyStore

__all__ = ["WORLD", "BallJoint", "HingeJoint", "JointStore"]

#: Sentinel body index meaning "attach to the immovable world".  The
#: virtual world body's real index grows as bodies are added, so joints
#: store this stable sentinel and the solver resolves it at row build.
WORLD = -1


@dataclass
class BallJoint:
    """Pin two bodies together at a shared anchor point (3 rows)."""

    body_a: int
    body_b: int
    #: anchor in each body's local frame (computed at attach time)
    local_a: np.ndarray
    local_b: np.ndarray


@dataclass
class HingeJoint:
    """Ball joint plus a rotation axis (3 + 2 rows).

    The two extra rows keep the hinge axis of body A aligned with body B's
    by zeroing relative angular velocity along two perpendicular axes.
    """

    body_a: int
    body_b: int
    local_a: np.ndarray
    local_b: np.ndarray
    #: hinge axis in each body's local frame
    axis_a: np.ndarray
    axis_b: np.ndarray


class JointStore:
    """All joints of a world."""

    def __init__(self) -> None:
        self.ball_joints: List[BallJoint] = []
        self.hinge_joints: List[HingeJoint] = []

    def add_ball(self, bodies: BodyStore, body_a: int, body_b: int,
                 anchor_world) -> BallJoint:
        """Create a ball joint at a world-space anchor.

        ``body_b`` may be :data:`WORLD` (-1) to pin to the world.
        """
        anchor = np.asarray(anchor_world, dtype=np.float32)
        joint = BallJoint(
            body_a=body_a,
            body_b=body_b,
            local_a=self._to_local(bodies, body_a, anchor),
            local_b=self._to_local(bodies, body_b, anchor),
        )
        self.ball_joints.append(joint)
        return joint

    def add_hinge(self, bodies: BodyStore, body_a: int, body_b: int,
                  anchor_world, axis_world) -> HingeJoint:
        anchor = np.asarray(anchor_world, dtype=np.float32)
        axis = np.asarray(axis_world, dtype=np.float64)
        axis = (axis / np.linalg.norm(axis)).astype(np.float32)
        joint = HingeJoint(
            body_a=body_a,
            body_b=body_b,
            local_a=self._to_local(bodies, body_a, anchor),
            local_b=self._to_local(bodies, body_b, anchor),
            axis_a=self._to_local_dir(bodies, body_a, axis),
            axis_b=self._to_local_dir(bodies, body_b, axis),
        )
        self.hinge_joints.append(joint)
        return joint

    @staticmethod
    def _rotation_of(bodies: BodyStore, body: int) -> np.ndarray:
        """Setup-time rotation matrix straight from the quaternion."""
        w, x, y, z = (float(c) for c in bodies.quat[body])
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - w * z),
                 2 * (x * z + w * y)],
                [2 * (x * y + w * z), 1 - 2 * (x * x + z * z),
                 2 * (y * z - w * x)],
                [2 * (x * z - w * y), 2 * (y * z + w * x),
                 1 - 2 * (x * x + y * y)],
            ]
        )

    @classmethod
    def _to_local(cls, bodies: BodyStore, body: int, point: np.ndarray):
        if body == WORLD or body == bodies.world_index:
            return point.copy()
        rot = cls._rotation_of(bodies, body)
        return (rot.T @ (point - bodies.pos[body])).astype(np.float32)

    @classmethod
    def _to_local_dir(cls, bodies: BodyStore, body: int,
                      direction: np.ndarray):
        if body == WORLD or body == bodies.world_index:
            return direction.copy()
        return (cls._rotation_of(bodies, body).T @ direction).astype(
            np.float32)

    def __len__(self) -> int:
        return len(self.ball_joints) + len(self.hinge_joints)
