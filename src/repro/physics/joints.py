"""Articulation joints (ball-and-socket, hinge) for ragdolls and pendulums.

Joints are equality constraints solved by the same LCP relaxation as
contacts, following ODE's constraint-based approach: each joint
contributes rows with unbounded Lagrange multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from . import math3d
from .body import BodyStore

__all__ = ["WORLD", "BallJoint", "HingeJoint", "JointStore"]

#: Sentinel body index meaning "attach to the immovable world".  The
#: virtual world body's real index grows as bodies are added, so joints
#: store this stable sentinel and the solver resolves it at row build.
WORLD = -1


@dataclass
class BallJoint:
    """Pin two bodies together at a shared anchor point (3 rows)."""

    body_a: int
    body_b: int
    #: anchor in each body's local frame (computed at attach time)
    local_a: np.ndarray
    local_b: np.ndarray


@dataclass
class HingeJoint:
    """Ball joint plus a rotation axis (3 + 2 rows).

    The two extra rows keep the hinge axis of body A aligned with body B's
    by zeroing relative angular velocity along two perpendicular axes.
    """

    body_a: int
    body_b: int
    local_a: np.ndarray
    local_b: np.ndarray
    #: hinge axis in each body's local frame
    axis_a: np.ndarray
    axis_b: np.ndarray


class JointStore:
    """All joints of a world."""

    def __init__(self) -> None:
        self.ball_joints: List[BallJoint] = []
        self.hinge_joints: List[HingeJoint] = []
        #: SoA snapshot for the vectorized row builder, rebuilt lazily
        #: after every attach (joint sets are static once a scenario is
        #: built, so in steady state this is computed once).
        self._packed: Optional[Dict[str, np.ndarray]] = None

    def add_ball(self, bodies: BodyStore, body_a: int, body_b: int,
                 anchor_world) -> BallJoint:
        """Create a ball joint at a world-space anchor.

        ``body_b`` may be :data:`WORLD` (-1) to pin to the world.
        """
        anchor = np.asarray(anchor_world, dtype=np.float32)
        joint = BallJoint(
            body_a=body_a,
            body_b=body_b,
            local_a=self._to_local(bodies, body_a, anchor),
            local_b=self._to_local(bodies, body_b, anchor),
        )
        self.ball_joints.append(joint)
        self._packed = None
        return joint

    def add_hinge(self, bodies: BodyStore, body_a: int, body_b: int,
                  anchor_world, axis_world) -> HingeJoint:
        anchor = np.asarray(anchor_world, dtype=np.float32)
        axis = np.asarray(axis_world, dtype=np.float64)
        axis = (axis / np.linalg.norm(axis)).astype(np.float32)
        joint = HingeJoint(
            body_a=body_a,
            body_b=body_b,
            local_a=self._to_local(bodies, body_a, anchor),
            local_b=self._to_local(bodies, body_b, anchor),
            axis_a=self._to_local_dir(bodies, body_a, axis),
            axis_b=self._to_local_dir(bodies, body_b, axis),
        )
        self.hinge_joints.append(joint)
        self._packed = None
        return joint

    def packed(self) -> Dict[str, np.ndarray]:
        """Structure-of-arrays view of all joints (cached).

        Balls first, hinges second — the row order the LCP builder
        emits.  Body ids keep the raw :data:`WORLD` sentinel; the
        consumer resolves it against the live world index.
        """
        if self._packed is None:
            balls, hinges = self.ball_joints, self.hinge_joints

            def _ids(joints, attr):
                return np.array([getattr(j, attr) for j in joints],
                                dtype=np.int64)

            def _vecs(joints, attr):
                if not joints:
                    return np.zeros((0, 3), dtype=np.float32)
                return np.stack([getattr(j, attr) for j in joints]).astype(
                    np.float32)

            self._packed = {
                "ball_a": _ids(balls, "body_a"),
                "ball_b": _ids(balls, "body_b"),
                "ball_local_a": _vecs(balls, "local_a"),
                "ball_local_b": _vecs(balls, "local_b"),
                "hinge_a": _ids(hinges, "body_a"),
                "hinge_b": _ids(hinges, "body_b"),
                "hinge_local_a": _vecs(hinges, "local_a"),
                "hinge_local_b": _vecs(hinges, "local_b"),
                "hinge_axis_a": _vecs(hinges, "axis_a"),
                "hinge_axis_b": _vecs(hinges, "axis_b"),
            }
        return self._packed

    @staticmethod
    def _rotation_of(bodies: BodyStore, body: int) -> np.ndarray:
        """Setup-time rotation matrix straight from the quaternion."""
        return math3d.quat_to_matrix_f64(bodies.quat[body])

    @classmethod
    def _to_local(cls, bodies: BodyStore, body: int, point: np.ndarray):
        if body == WORLD or body == bodies.world_index:
            return point.copy()
        rot = cls._rotation_of(bodies, body)
        return (rot.T @ (point - bodies.pos[body])).astype(np.float32)

    @classmethod
    def _to_local_dir(cls, bodies: BodyStore, body: int,
                      direction: np.ndarray):
        if body == WORLD or body == bodies.world_index:
            return direction.copy()
        return (cls._rotation_of(bodies, body).T @ direction).astype(
            np.float32)

    def __len__(self) -> int:
        return len(self.ball_joints) + len(self.hinge_joints)
