"""Bounded per-step series storage for long-lived worlds.

``World.penetration_series`` and ``EnergyMonitor.records`` historically
grew one entry per step forever — harmless for the paper's few-hundred
step experiments, a slow memory leak for a session stepped for hours on
a serve shard.  :class:`BoundedSeries` keeps the most recent ``window``
entries in a deque while preserving the *logical* sequence semantics the
experiments rely on:

* ``len()`` reports the logical length (evicted + retained), so
  checkpoint captures (``penetration_len``, ``monitor_records``) are
  unchanged;
* ``series[i]`` and ``series[a:b]`` address logical positions — negative
  indices and tail slices like ``series[steps // 2:]`` behave exactly
  like a list as long as they land inside the retained window (the
  default window of 4096 comfortably covers every experiment);
* ``truncate(n)`` rewinds to the first ``n`` logical entries, the exact
  operation checkpoint restore performs (rollbacks are at most a few
  dozen steps deep, far shallower than the window);
* a running maximum over *all* appended values (including evicted ones)
  is maintained when ``track_max=True``, so
  ``believability.energy_trace`` reports the same peak penetration it
  would have read from the unbounded list.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

__all__ = ["BoundedSeries", "DEFAULT_SERIES_WINDOW"]

#: Retained entries per series.  Far above any experiment's step count
#: (Table 1/4 runs are a few hundred steps), so short runs see list
#: semantics bit-for-bit; only multi-hour serve sessions ever evict.
DEFAULT_SERIES_WINDOW = 4096


class BoundedSeries:
    """A list-like per-step series retaining only the last ``window`` items."""

    __slots__ = ("window", "track_max", "_items", "_evicted", "_max")

    def __init__(self, window: int = DEFAULT_SERIES_WINDOW,
                 track_max: bool = False) -> None:
        if window < 1:
            raise ValueError("series window must be >= 1")
        self.window = int(window)
        self.track_max = track_max
        self._items: Deque = deque()
        self._evicted = 0
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    def append(self, item) -> None:
        self._items.append(item)
        if self.track_max:
            value = float(item)
            if self._max is None or value > self._max:
                self._max = value
        if len(self._items) > self.window:
            self._items.popleft()
            self._evicted += 1

    def __len__(self) -> int:
        return self._evicted + len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator:
        """Iterate the retained window (oldest retained first)."""
        return iter(self._items)

    @property
    def evicted(self) -> int:
        """Entries dropped off the left edge of the window."""
        return self._evicted

    # ------------------------------------------------------------------
    def _normalize(self, index: int) -> int:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("series index out of range")
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            out: List = []
            for logical in range(start, stop, step):
                offset = logical - self._evicted
                if 0 <= offset < len(self._items):
                    out.append(self._items[offset])
            return out
        logical = self._normalize(int(index))
        offset = logical - self._evicted
        if offset < 0:
            raise IndexError(
                f"series[{index}] was evicted (window={self.window}, "
                f"evicted={self._evicted})")
        return self._items[offset]

    def __delitem__(self, index) -> None:
        # Only the tail-truncation pattern ``del series[n:]`` is
        # meaningful for a step series; anything else is a caller bug.
        if (not isinstance(index, slice) or index.step is not None
                or index.stop is not None):
            raise TypeError("BoundedSeries only supports `del series[n:]`")
        start = index.start if index.start is not None else 0
        if start < 0:
            start += len(self)
        self.truncate(max(0, start))

    # ------------------------------------------------------------------
    def truncate(self, length: int) -> None:
        """Rewind to the first ``length`` logical entries.

        This is checkpoint-restore's discard of post-checkpoint samples.
        Rolling back past the retained window would need history the
        buffer no longer has, so it raises rather than silently
        corrupting the series; rollback depth (a handful of journal
        intervals) is always far below the window.
        """
        if length >= len(self):
            return
        if length < self._evicted:
            raise ValueError(
                f"cannot truncate to {length}: only entries from "
                f"{self._evicted} onward are retained")
        for _ in range(len(self) - length):
            self._items.pop()
        if self.track_max:
            if self._evicted == 0:
                # Exact: recompute over the full (retained) history so a
                # rollback forgets discarded samples, matching a list.
                self._max = (max(float(v) for v in self._items)
                             if self._items else None)
            # Once entries have been evicted the prefix max is
            # unrecoverable; the running max then summarizes everything
            # the series has seen, which only long-lived serve sessions
            # (never the experiments) can observe.

    def clear(self) -> None:
        self._items.clear()
        self._evicted = 0
        self._max = None

    # ------------------------------------------------------------------
    def maximum(self, default: Optional[float] = None) -> Optional[float]:
        """Running max over every appended value (evicted ones included)."""
        if not self.track_max:
            raise TypeError("series was created with track_max=False")
        if self._max is None:
            return default
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedSeries(len={len(self)}, window={self.window}, "
                f"evicted={self._evicted})")
