"""Fleet-batched stepping: advance K worlds as stacked-array passes.

A :class:`WorldBatch` steps many independent worlds through the same
phase pipeline :meth:`World.step` runs, but executes the embarrassingly
parallel phases — derived-state refresh, gravity, the LCP relaxation and
final integration — as *single* stacked-array calls over every world at
once.  With eight small worlds, the per-step ufunc count collapses by
roughly the fleet size: one reduced-precision kernel dispatch now
touches every body in the fleet instead of one world's worth.

Bit-identity contract: a batch step leaves every member world in exactly
the state K separate ``world.step()`` calls would have produced.  That
holds because every stacked phase is elementwise over bodies/rows (a
float32 op on a longer array produces the same bits per element) and the
merged LCP solve concatenates row sets with disjoint body-slot offsets,
so each body's impulse-application order is preserved by the solver's
stable incidence sort.  The serve layer leans on this: coalescing
sessions into a fleet must not perturb a single digest.

Eligibility mirrors the reduced-domain fast paths: fleet stepping only
engages census-free, without fault injection, guards, tracers, per-step
hooks or warm starting, and all members must agree on timestep, solver
parameters and precision configuration.  Anything else raises
:class:`BatchIncompatible` — callers fall back to per-world stepping.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from . import broadphase, lcp, math3d, narrowphase
from .island import partition_islands

__all__ = ["WorldBatch", "BatchIncompatible", "fleet_ineligibility"]


class BatchIncompatible(ValueError):
    """These worlds cannot be fleet-stepped together."""


def fleet_ineligibility(world) -> Optional[str]:
    """Why this world cannot join any fleet, or ``None`` if it can."""
    if world.ctx.fast_kernel() is None:
        return "census or fault injection enabled"
    if world.guards is not None:
        return "phase guards installed"
    if world.observer is not None:
        return "tracer attached"
    if world.on_step is not None:
        return "on_step hook installed"
    if world.solver.scheme != "jacobi":
        return f"solver scheme {world.solver.scheme!r}"
    if world.solver.warm_start:
        return "warm starting enabled"
    return None


class WorldBatch:
    """K worlds advanced in lockstep with stacked-array phases."""

    def __init__(self, worlds: Sequence) -> None:
        if not worlds:
            raise BatchIncompatible("empty world list")
        for world in worlds:
            reason = fleet_ineligibility(world)
            if reason is not None:
                raise BatchIncompatible(reason)
        head = worlds[0]
        hctx = head.ctx
        for world in worlds[1:]:
            if world.dt != head.dt:
                raise BatchIncompatible("timestep mismatch")
            if world.solver != head.solver:
                raise BatchIncompatible("solver parameter mismatch")
            ctx = world.ctx
            if (ctx.phase_precision != hctx.phase_precision
                    or ctx.mode != hctx.mode
                    or ctx.jam_guard_bits != hctx.jam_guard_bits):
                raise BatchIncompatible("precision configuration mismatch")
        self.worlds: List = list(worlds)
        #: shared op semantics — every member's context is census-free
        #: with identical precision/mode, so one context serves the fleet
        self.ctx = hctx

    def __len__(self) -> int:
        return len(self.worlds)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance every member world by one timestep."""
        ctx = self.ctx
        worlds = self.worlds
        for world in worlds:
            world.bodies.ensure_world_row()
            for explosion in world.explosions:
                if explosion.trigger_step == world.step_count:
                    explosion.apply(world)

        with ctx.in_phase("integrate"):
            self._refresh_and_gravity(ctx)

        all_contacts = []
        for world in worlds:
            aabbs = world.geoms.world_aabbs(
                world.bodies.view("pos"), world.bodies.view("rot"))
            pairs = broadphase.candidate_pairs(world.geoms, aabbs)
            with ctx.in_phase("narrow"):
                contacts = narrowphase.generate_contacts(
                    ctx, world.bodies, world.geoms, pairs)
            world.last_contact_count = len(contacts)
            world.penetration_series.append(
                float(contacts.depth.max()) if len(contacts) else 0.0)
            all_contacts.append(contacts)

        for world, contacts in zip(worlds, all_contacts):
            jp = world.joints.packed()
            edges_a = np.concatenate([
                np.asarray(contacts.body_a, dtype=np.int64),
                jp["ball_a"], jp["hinge_a"],
            ])
            edges_b = np.concatenate([
                np.asarray(contacts.body_b, dtype=np.int64),
                jp["ball_b"], jp["hinge_b"],
            ])
            world.island_labels = partition_islands(
                world.bodies.count, world.bodies.dynamic_mask(),
                edges_a, edges_b)

        with ctx.in_phase("lcp"):
            rows_list = [
                lcp.build_rows(ctx, world.bodies, contacts, world.joints,
                               world.dt, world.solver)
                for world, contacts in zip(worlds, all_contacts)
            ]
            self._solve_merged(ctx, rows_list)
            for world in worlds:
                for cloth in world.cloths:
                    cloth.solve_constraints(ctx, world.dt,
                                            world.solver.iterations)
                    cloth.collide(ctx, world)

        for world, contacts in zip(worlds, all_contacts):
            world._update_sleep_state(contacts)

        with ctx.in_phase("integrate"):
            self._integrate_all(ctx)

        for world in worlds:
            world.monitor.measure(world, world.step_count)
            world.step_count += 1

    # ------------------------------------------------------------------
    def _refresh_and_gravity(self, ctx) -> None:
        """Stacked ``refresh_derived`` + gravity kick for every world."""
        live = [(w, w.bodies.count) for w in self.worlds
                if w.bodies.count > 0]
        if live:
            quats = np.concatenate([w.bodies.quat[:n] for w, n in live])
            rot = math3d.quat_rotate_matrix(ctx, quats)
            inv_ib = np.concatenate(
                [w.bodies.inv_inertia_body[:n] for w, n in live])
            scaled = ctx.mul(rot, inv_ib[:, None, :])
            out = np.empty((len(quats), 3, 3), dtype=np.float32)
            for i in range(3):
                for j in range(3):
                    out[:, i, j] = math3d.dot(ctx, scaled[:, i, :],
                                              rot[:, j, :])
            dvs = []
            for world, n in live:
                bodies = world.bodies
                active = (bodies.invmass[:n] > 0) & ~bodies.asleep[:n]
                dvs.append(np.where(
                    active[:, None],
                    np.asarray(world.gravity, dtype=np.float32)[None, :]
                    * np.float32(world.dt),
                    np.float32(0.0),
                ))
            linvel = np.concatenate(
                [w.bodies.linvel[:n] for w, n in live])
            new_linvel = ctx.add(linvel, np.concatenate(dvs))
            base = 0
            for world, n in live:
                bodies = world.bodies
                bodies.rot[:n] = rot[base:base + n]
                bodies.inv_inertia_world[:n] = out[base:base + n]
                bodies.inv_inertia_world[n] = 0.0
                bodies.linvel[:n] = new_linvel[base:base + n]
                bodies.linvel[n] = 0.0
                bodies.angvel[n] = 0.0
                bodies.invmass[n] = 0.0
                base += n

        cloths = [(w, c) for w in self.worlds for c in w.cloths]
        if cloths:
            vel = np.concatenate([c.vel for _, c in cloths])
            dvs = [
                np.where(
                    (c.invmass > 0)[:, None],
                    np.asarray(w.gravity, dtype=np.float32)[None, :]
                    * np.float32(w.dt),
                    np.float32(0.0),
                )
                for w, c in cloths
            ]
            new_vel = ctx.add(vel, np.concatenate(dvs))
            base = 0
            for _, cloth in cloths:
                count = len(cloth.vel)
                cloth.vel = new_vel[base:base + count].copy()
                base += count

    # ------------------------------------------------------------------
    def _solve_merged(self, ctx, rows_list) -> None:
        """One Jacobi relaxation over the concatenated row sets.

        Body slots of world ``k`` are offset by the total slot count of
        worlds ``0..k-1`` (each world contributes ``count + 1`` slots,
        its virtual world body included), friction rows' normal indices
        by the running row count, and every world body lands in
        ``pinned`` — so :func:`~repro.physics.lcp.solve_rows` relaxes
        the fleet exactly as K independent solves would.
        """
        active = [(world, rows)
                  for world, rows in zip(self.worlds, rows_list)
                  if len(rows) and world.solver.iterations > 0]
        if not active:
            return
        if len(active) == 1:
            world, rows = active[0]
            lcp.solve(ctx, world.bodies, rows, world.solver)
            return

        params = active[0][0].solver
        slot_base: List[int] = []
        vels = []
        base = 0
        for world, _ in active:
            slot_base.append(base)
            vels.append(np.concatenate(
                [world.bodies.view("linvel"), world.bodies.view("angvel")],
                axis=1).astype(np.float32))
            base += world.bodies.world_index + 1
        vel = np.concatenate(vels, axis=0)

        row_counts = [len(rows) for _, rows in active]
        row_base = np.concatenate(
            [[0], np.cumsum(row_counts[:-1])]).astype(np.int64)
        adjusted_ni = []
        for (_, rows), rbase in zip(active, row_base):
            ni = rows.normal_index.copy()
            ni[ni >= 0] += np.int32(rbase)
            adjusted_ni.append(ni)

        def _cat(attr):
            return np.concatenate([getattr(rows, attr)
                                   for _, rows in active])

        merged = lcp.ConstraintRows(
            ia=np.concatenate([rows.ia.astype(np.int64) + sbase
                               for (_, rows), sbase
                               in zip(active, slot_base)]),
            ib=np.concatenate([rows.ib.astype(np.int64) + sbase
                               for (_, rows), sbase
                               in zip(active, slot_base)]),
            jla=None, jaa=None, jlb=None, jab=None,
            rhs=_cat("rhs"), lo=_cat("lo"), hi=_cat("hi"), mu=_cat("mu"),
            normal_index=np.concatenate(adjusted_ni),
        )
        merged.inv_d = _cat("inv_d")
        merged.lam = _cat("lam")
        merged.jacobian = _cat("jacobian")
        merged.inv_mass_jt = _cat("inv_mass_jt")
        pinned = np.array(
            [sbase + world.bodies.world_index
             for (world, _), sbase in zip(active, slot_base)],
            dtype=np.int64)

        lcp.solve_rows(ctx, vel, merged, params, pinned)

        for (world, rows), sbase, rbase, rcount in zip(
                active, slot_base, row_base, row_counts):
            slots = world.bodies.world_index + 1
            sub = vel[sbase:sbase + slots]
            world.bodies.view("linvel")[:] = sub[:, :3]
            world.bodies.view("angvel")[:] = sub[:, 3:]
            rows.lam = merged.lam[rbase:rbase + rcount]

    # ------------------------------------------------------------------
    def _integrate_all(self, ctx) -> None:
        """Stacked semi-implicit Euler over every world's bodies."""
        live = [(w, w.bodies.count) for w in self.worlds
                if w.bodies.count > 0]
        if live:
            dt32 = np.float32(live[0][0].dt)
            pos = np.concatenate([w.bodies.pos[:n] for w, n in live])
            quat = np.concatenate([w.bodies.quat[:n] for w, n in live])
            linvel = np.concatenate(
                [w.bodies.linvel[:n] for w, n in live])
            angvel = np.concatenate(
                [w.bodies.angvel[:n] for w, n in live])
            awake = np.concatenate(
                [~w.bodies.asleep[:n] for w, n in live])

            step = math3d.scale(ctx, linvel, dt32)
            new_pos = ctx.add(pos, step)
            pos = np.where(awake[:, None], new_pos, pos)
            new_quat = math3d.quat_integrate(ctx, quat, angvel,
                                             live[0][0].dt)
            quat = np.where(awake[:, None], new_quat, quat)
            base = 0
            for world, n in live:
                world.bodies.pos[:n] = pos[base:base + n]
                world.bodies.quat[:n] = quat[base:base + n]
                base += n

        cloths = [(w, c) for w in self.worlds for c in w.cloths]
        if cloths:
            dt32 = np.float32(cloths[0][0].dt)
            vel = np.concatenate([c.vel for _, c in cloths])
            cpos = np.concatenate([c.pos for _, c in cloths])
            moving = np.concatenate(
                [(c.invmass > 0) for _, c in cloths])[:, None]
            step = math3d.scale(ctx, vel, dt32)
            cpos = np.where(moving, ctx.add(cpos, step), cpos)
            base = 0
            for _, cloth in cloths:
                count = len(cloth.pos)
                cloth.pos = cpos[base:base + count].copy()
                base += count
