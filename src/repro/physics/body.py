"""Rigid-body state storage (struct-of-arrays, float32 throughout).

Bodies live in a :class:`BodyStore` so the solver and integrator can work
on whole arrays at once.  A virtual "world" body with zero inverse mass is
kept at index ``store.world_index`` — constraints against static geometry
(the ground plane, anchors) reference it, which keeps every constraint row
two-sided and branch-free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..fp.context import FPContext
from . import math3d

__all__ = ["BodyStore"]

_IDENTITY_QUAT = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)


class BodyStore:
    """Growable struct-of-arrays container for rigid bodies."""

    def __init__(self, capacity: int = 16) -> None:
        self._n = 0
        self._alloc(capacity)

    def _alloc(self, capacity: int) -> None:
        self.pos = np.zeros((capacity, 3), dtype=np.float32)
        self.quat = np.tile(_IDENTITY_QUAT, (capacity, 1))
        self.linvel = np.zeros((capacity, 3), dtype=np.float32)
        self.angvel = np.zeros((capacity, 3), dtype=np.float32)
        self.invmass = np.zeros(capacity, dtype=np.float32)
        self.mass = np.zeros(capacity, dtype=np.float32)
        self.inv_inertia_body = np.zeros((capacity, 3), dtype=np.float32)
        self.inertia_body = np.zeros((capacity, 3), dtype=np.float32)
        self.asleep = np.zeros(capacity, dtype=bool)
        self.low_motion_steps = np.zeros(capacity, dtype=np.int32)
        # Derived per step:
        self.rot = np.tile(np.eye(3, dtype=np.float32), (capacity, 1, 1))
        self.inv_inertia_world = np.zeros((capacity, 3, 3), dtype=np.float32)

    def _grow(self) -> None:
        old_n = self._n
        arrays = [
            "pos", "quat", "linvel", "angvel", "invmass", "mass",
            "inv_inertia_body", "inertia_body", "asleep",
            "low_motion_steps", "rot", "inv_inertia_world",
        ]
        snapshot = {name: getattr(self, name)[:old_n].copy()
                    for name in arrays}
        self._alloc(max(2 * old_n, 16))
        for name, data in snapshot.items():
            getattr(self, name)[:old_n] = data

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_body(
        self,
        pos,
        mass: float,
        inertia_diag,
        quat=None,
        linvel=None,
        angvel=None,
    ) -> int:
        """Append a dynamic body; ``mass <= 0`` creates a static body."""
        if self._n >= len(self.invmass):
            self._grow()
        i = self._n
        self._n += 1
        self.pos[i] = np.asarray(pos, dtype=np.float32)
        self.quat[i] = (
            _IDENTITY_QUAT if quat is None else np.asarray(quat, np.float32)
        )
        self.linvel[i] = 0.0 if linvel is None else np.asarray(
            linvel, np.float32)
        self.angvel[i] = 0.0 if angvel is None else np.asarray(
            angvel, np.float32)
        inertia = np.asarray(inertia_diag, dtype=np.float32)
        if mass > 0:
            self.mass[i] = mass
            self.invmass[i] = 1.0 / mass
            self.inertia_body[i] = inertia
            with np.errstate(divide="ignore"):
                self.inv_inertia_body[i] = np.where(
                    inertia > 0, 1.0 / inertia, 0.0
                )
        else:
            self.mass[i] = 0.0
            self.invmass[i] = 0.0
            self.inertia_body[i] = 0.0
            self.inv_inertia_body[i] = 0.0
        return i

    # ------------------------------------------------------------------
    # Views (the live prefix plus the virtual world body)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of real bodies (the virtual world body is extra)."""
        return self._n

    @property
    def world_index(self) -> int:
        """Index of the virtual, immovable world body."""
        return self._n

    def view(self, name: str) -> np.ndarray:
        """Live slice of a state array including the world body row.

        The world row is always zero velocity / zero inverse mass, so
        gathers with ``world_index`` are safe.
        """
        return getattr(self, name)[: self._n + 1]

    def dynamic_mask(self) -> np.ndarray:
        return self.invmass[: self._n] > 0

    # ------------------------------------------------------------------
    # Per-step derived state
    # ------------------------------------------------------------------
    def refresh_derived(self, ctx: FPContext) -> None:
        """Recompute rotation matrices and world inverse inertia tensors."""
        self.ensure_world_row()
        n = self._n
        if n == 0:
            return
        rot = math3d.quat_rotate_matrix(ctx, self.quat[:n])
        self.rot[:n] = rot
        # I_w^-1 = R diag(I_b^-1) R^T, computed as (R * invI) @ R^T.
        scaled = ctx.mul(rot, self.inv_inertia_body[:n, None, :])
        out = np.empty((n, 3, 3), dtype=np.float32)
        for i in range(3):
            for j in range(3):
                out[:, i, j] = math3d.dot(ctx, scaled[:, i, :], rot[:, j, :])
        self.inv_inertia_world[:n] = out
        self.inv_inertia_world[n] = 0.0
        # Keep the world-body row inert.
        self.linvel[n] = 0.0
        self.angvel[n] = 0.0
        self.invmass[n] = 0.0

    def ensure_world_row(self) -> None:
        """Guarantee capacity for the virtual world body row."""
        if self._n >= len(self.invmass):
            self._grow()
