"""Narrow-phase collision detection (contact generation).

This is the second collision-detection step the paper singles out: for
each candidate geom pair from the broad phase, determine the actual
contact points.  Every FP add/sub/mul here executes through the world's
:class:`~repro.fp.FPContext` in the ``narrow`` phase, so the whole contact
pipeline experiences the tuned precision — exactly the paper's setup for
Table 1's Narrow-phase column.

Supported pairs: sphere-sphere, sphere-plane, box-plane, sphere-box,
box-box (separating-axis test with reference-face clipping, the same
approach ODE's dBoxBox uses), and capsules against planes, spheres,
boxes and other capsules (segment closest-point tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..fp.context import FPContext
from . import math3d
from .body import BodyStore
from .shapes import Geom, GeomStore, ShapeType

__all__ = ["ContactSet", "generate_contacts"]

_MAX_CONTACTS_PER_PAIR = 4


@dataclass
class ContactSet:
    """Flat arrays of contact points feeding the LCP phase."""

    body_a: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    body_b: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32))
    pos: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3), dtype=np.float32))
    #: unit normal pointing from body_a towards body_b
    normal: np.ndarray = field(
        default_factory=lambda: np.empty((0, 3), dtype=np.float32))
    depth: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float32))
    friction: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float32))
    restitution: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float32))

    def __len__(self) -> int:
        return len(self.depth)


class _ContactAccumulator:
    """Collects per-pair contacts, then freezes them into a ContactSet."""

    def __init__(self) -> None:
        self._body_a: List[int] = []
        self._body_b: List[int] = []
        self._pos: List[np.ndarray] = []
        self._normal: List[np.ndarray] = []
        self._depth: List[float] = []
        self._friction: List[float] = []
        self._restitution: List[float] = []

    def emit(self, body_a, body_b, pos, normal, depth, geom_a: Geom,
             geom_b: Geom) -> None:
        # Guard against degenerate geometry at very low precisions: a
        # contact with a non-finite or near-zero normal is dropped.
        normal = np.asarray(normal, dtype=np.float32)
        if not np.isfinite(normal).all() or not np.isfinite(depth):
            return
        if float(normal @ normal) < 0.25:
            return
        self._body_a.append(int(body_a))
        self._body_b.append(int(body_b))
        self._pos.append(np.asarray(pos, dtype=np.float32))
        self._normal.append(np.asarray(normal, dtype=np.float32))
        self._depth.append(float(depth))
        self._friction.append(
            float(np.sqrt(geom_a.friction * geom_b.friction)))
        self._restitution.append(
            max(geom_a.restitution, geom_b.restitution))

    def emit_many(self, body_a, body_b, pos, normal, depth, geom_a,
                  geom_b) -> None:
        for k in range(len(depth)):
            self.emit(body_a, body_b, pos[k], normal[k] if normal.ndim > 1
                      else normal, depth[k], geom_a, geom_b)

    def freeze(self) -> ContactSet:
        if not self._depth:
            return ContactSet()
        return ContactSet(
            body_a=np.array(self._body_a, dtype=np.int32),
            body_b=np.array(self._body_b, dtype=np.int32),
            pos=np.stack(self._pos).astype(np.float32),
            normal=np.stack(self._normal).astype(np.float32),
            depth=np.array(self._depth, dtype=np.float32),
            friction=np.array(self._friction, dtype=np.float32),
            restitution=np.array(self._restitution, dtype=np.float32),
        )


def generate_contacts(
    ctx: FPContext,
    bodies: BodyStore,
    geoms: GeomStore,
    pairs: Sequence[Tuple[int, int]],
) -> ContactSet:
    """Run narrow-phase collision over the candidate ``pairs``."""
    acc = _ContactAccumulator()
    world = bodies.world_index
    pos = bodies.view("pos")
    rot = bodies.view("rot")

    # Bucket pairs by type so the common cases run vectorized.
    buckets: dict = {}
    for i, j in pairs:
        ga, gb = geoms[i], geoms[j]
        key = tuple(sorted((ga.shape.value, gb.shape.value)))
        if ga.shape.value > gb.shape.value:
            i, j = j, i  # canonical order: box < capsule < plane < sphere
        buckets.setdefault(key, []).append((i, j))

    for key, bucket in buckets.items():
        if key == ("sphere", "sphere"):
            _sphere_sphere(ctx, acc, geoms, bucket, pos)
        elif key == ("plane", "sphere"):
            _sphere_plane(ctx, acc, geoms, bucket, pos, world)
        elif key == ("box", "plane"):
            _box_plane(ctx, acc, geoms, bucket, pos, rot, world)
        elif key == ("box", "sphere"):
            for i, j in bucket:
                _sphere_box(ctx, acc, geoms[j], geoms[i], pos, rot)
        elif key == ("box", "box"):
            if ctx.census or ctx.injector is not None:
                for i, j in bucket:
                    _box_box(ctx, acc, geoms[i], geoms[j], pos, rot)
            else:
                _box_box_bucket(ctx, acc, geoms, bucket, pos, rot)
        elif key == ("capsule", "plane"):
            for i, j in bucket:
                _capsule_plane(ctx, acc, geoms[i], geoms[j], pos, rot,
                               world)
        elif key == ("capsule", "sphere"):
            for i, j in bucket:
                _capsule_sphere(ctx, acc, geoms[i], geoms[j], pos, rot)
        elif key == ("capsule", "capsule"):
            for i, j in bucket:
                _capsule_capsule(ctx, acc, geoms[i], geoms[j], pos, rot)
        elif key == ("box", "capsule"):
            for i, j in bucket:
                _capsule_box(ctx, acc, geoms[j], geoms[i], pos, rot)
    return acc.freeze()


# ----------------------------------------------------------------------
# Sphere / sphere
# ----------------------------------------------------------------------
def _sphere_sphere(ctx, acc, geoms, bucket, pos) -> None:
    ia = np.array([geoms[i].body for i, _ in bucket])
    ib = np.array([geoms[j].body for _, j in bucket])
    ra = np.array([geoms[i].params[0] for i, _ in bucket], dtype=np.float32)
    rb = np.array([geoms[j].params[0] for _, j in bucket], dtype=np.float32)
    ca, cb = pos[ia], pos[ib]
    delta = ctx.sub(cb, ca)
    unit, dist = math3d.normalize(ctx, delta)
    depth = ctx.sub(ctx.add(ra, rb), dist)
    hit = (depth > 0) & (dist > 1e-9)
    if not hit.any():
        return
    # Contact sits on the midpoint of the overlap band.
    half = np.float32(0.5)
    offset = ctx.sub(ra, ctx.mul(half, depth))
    point = ctx.add(ca, math3d.scale(ctx, unit, offset))
    for k in np.nonzero(hit)[0]:
        i, j = bucket[k]
        acc.emit(ia[k], ib[k], point[k], unit[k], depth[k],
                 geoms[i], geoms[j])


# ----------------------------------------------------------------------
# Sphere / plane
# ----------------------------------------------------------------------
def _sphere_plane(ctx, acc, geoms, bucket, pos, world) -> None:
    # canonical order gives (plane, sphere)
    ib = np.array([geoms[j].body for _, j in bucket])
    radius = np.array([geoms[j].params[0] for _, j in bucket],
                      dtype=np.float32)
    normals = np.stack([geoms[i].params for i, _ in bucket]).astype(
        np.float32)
    offsets = np.array([geoms[i].offset for i, _ in bucket],
                       dtype=np.float32)
    centers = pos[ib]
    height = ctx.sub(math3d.dot(ctx, normals, centers), offsets)
    depth = ctx.sub(radius, height)
    hit = depth > 0
    if not hit.any():
        return
    point = ctx.sub(centers, math3d.scale(ctx, normals, height))
    for k in np.nonzero(hit)[0]:
        i, j = bucket[k]
        # Normal must point from the plane (body_a = world) to the sphere.
        acc.emit(world, ib[k], point[k], normals[k], depth[k],
                 geoms[i], geoms[j])


# ----------------------------------------------------------------------
# Box / plane
# ----------------------------------------------------------------------
_CORNER_SIGNS = np.array(
    [[sx, sy, sz] for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)],
    dtype=np.float32,
)


def _box_corners(ctx, geom, pos, rot) -> np.ndarray:
    """World positions of the 8 box corners, through the context."""
    local = ctx.mul(_CORNER_SIGNS, geom.params[None, :])  # (8, 3)
    rotated = math3d.matvec(ctx, rot[geom.body][None, :, :], local)
    return ctx.add(pos[geom.body][None, :], rotated)


def _box_plane(ctx, acc, geoms, bucket, pos, rot, world) -> None:
    if ctx.census or ctx.injector is not None:
        for i, j in bucket:  # canonical order gives (box, plane)
            box, plane = geoms[i], geoms[j]
            corners = _box_corners(ctx, box, pos, rot)
            n = plane.params.astype(np.float32)
            height = ctx.sub(math3d.dot(ctx, n[None, :], corners),
                             np.float32(plane.offset))
            depth = -height
            hit = depth > 0
            if not hit.any():
                continue
            order = np.argsort(-depth)
            picked = [k for k in order if hit[k]][:_MAX_CONTACTS_PER_PAIR]
            for k in picked:
                acc.emit(world, box.body, corners[k], n, depth[k], plane,
                         box)
        return

    # Census-free: all boxes' corners and heights in one stacked pass
    # (identical elementwise ops, so identical contact bits).
    body = np.array([geoms[i].body for i, _ in bucket], dtype=np.int64)
    half = np.stack([geoms[i].params for i, _ in bucket]).astype(np.float32)
    normals = np.stack([geoms[j].params for _, j in bucket]).astype(
        np.float32)
    offsets = np.array([geoms[j].offset for _, j in bucket],
                       dtype=np.float32)
    local = ctx.mul(_CORNER_SIGNS[None, :, :], half[:, None, :])  # (P,8,3)
    rotated = math3d.matvec(ctx, rot[body][:, None, :, :], local)
    corners = ctx.add(pos[body][:, None, :], rotated)
    height = ctx.sub(math3d.dot(ctx, normals[:, None, :], corners),
                     offsets[:, None])
    depth = -height
    hit = depth > 0
    for p in np.nonzero(hit.any(axis=1))[0]:
        i, j = bucket[p]
        order = np.argsort(-depth[p])
        picked = [k for k in order if hit[p, k]][:_MAX_CONTACTS_PER_PAIR]
        for k in picked:
            acc.emit(world, body[p], corners[p, k], normals[p],
                     depth[p, k], geoms[j], geoms[i])


# ----------------------------------------------------------------------
# Sphere / box
# ----------------------------------------------------------------------
def _sphere_box(ctx, acc, sphere: Geom, box: Geom, pos, rot) -> None:
    radius = float(sphere.params[0])
    center = pos[sphere.body]
    box_pos = pos[box.body]
    box_rot = rot[box.body]
    rel = ctx.sub(center, box_pos)
    # Into the box frame: local = R^T rel  (columns of R are box axes).
    local = math3d.matvec(ctx, box_rot.T[None, :, :], rel[None, :])[0]
    half = box.params
    clamped = np.clip(local, -half, half)
    inside = np.all(np.abs(local) < half)
    if inside:
        # Push out along the axis of least penetration.
        margin = ctx.sub(half, np.abs(local))
        axis = int(np.argmin(margin))
        local_n = np.zeros(3, dtype=np.float32)
        local_n[axis] = np.sign(local[axis]) or 1.0
        depth = float(margin[axis]) + radius
        surface_local = clamped.copy()
        surface_local[axis] = local_n[axis] * half[axis]
        world_n = math3d.matvec(ctx, box_rot[None, :, :],
                                local_n[None, :])[0]
        point = ctx.add(box_pos,
                        math3d.matvec(ctx, box_rot[None, :, :],
                                      surface_local[None, :])[0])
        acc.emit(box.body, sphere.body, point, world_n, depth, box, sphere)
        return
    delta = ctx.sub(local, clamped)
    dist = float(math3d.norm(ctx, delta[None, :])[0])
    depth = radius - dist
    if depth <= 0 or dist < 1e-9:
        return
    local_n = ctx.div(delta, np.float32(dist))
    world_n = math3d.matvec(ctx, box_rot[None, :, :], local_n[None, :])[0]
    point = ctx.add(box_pos, math3d.matvec(ctx, box_rot[None, :, :],
                                           clamped[None, :])[0])
    acc.emit(box.body, sphere.body, point, world_n, depth, box, sphere)


# ----------------------------------------------------------------------
# Box / box — separating axis test + reference face clipping
# ----------------------------------------------------------------------
def _box_box(ctx, acc, box_a: Geom, box_b: Geom, pos, rot) -> None:
    pa, pb = pos[box_a.body], pos[box_b.body]
    ra, rb = rot[box_a.body], rot[box_b.body]
    ha = np.asarray(box_a.params, dtype=np.float32)
    hb = np.asarray(box_b.params, dtype=np.float32)
    delta = ctx.sub(pb, pa)

    # Candidate axes: the 6 face normals plus up to 9 edge cross products,
    # all tested in one batched pass.
    face_axes = np.concatenate([ra.T, rb.T], axis=0).astype(np.float32)
    crosses = math3d.cross(ctx, np.repeat(ra.T, 3, axis=0),
                           np.tile(rb.T, (3, 1)))
    lengths = np.linalg.norm(crosses.astype(np.float64), axis=1)
    good = lengths > 1e-6
    edge_axes = (crosses[good] / lengths[good][:, None]).astype(np.float32)
    axes = np.concatenate([face_axes, edge_axes], axis=0)

    # Projected extents of each box onto every axis at once.
    on_a = np.abs(math3d.dot(ctx, axes[:, None, :], ra.T[None, :, :]))
    on_b = np.abs(math3d.dot(ctx, axes[:, None, :], rb.T[None, :, :]))
    proj_a = math3d.dot(ctx, on_a, ha[None, :])
    proj_b = math3d.dot(ctx, on_b, hb[None, :])
    separation = math3d.dot(ctx, axes, delta[None, :])
    overlap = ctx.sub(ctx.add(proj_a, proj_b), np.abs(separation))
    if np.any(overlap <= 0):
        return  # separating axis found

    # Prefer a face axis unless an edge axis is clearly (>5%) shallower,
    # the usual SAT fudge for contact stability.
    best_face = int(np.argmin(overlap[:6]))
    best_index = best_face
    if len(overlap) > 6:
        best_edge = 6 + int(np.argmin(overlap[6:]))
        if overlap[best_edge] < 0.95 * overlap[best_face]:
            best_index = best_edge
    best_depth = float(overlap[best_index])
    best_axis = axes[best_index]
    if separation[best_index] < 0:
        best_axis = -best_axis
    normal = best_axis  # points from A towards B

    if best_index >= 6:
        _box_box_edge_contact(ctx, acc, box_a, box_b, pos, rot, normal,
                              best_depth)
        return

    # Face contact: the box owning the reference face.
    if best_index < 3:
        ref_geom, inc_geom = box_a, box_b
        ref_normal = normal
        flip = False
    else:
        ref_geom, inc_geom = box_b, box_a
        ref_normal = -normal
        flip = True
    points, depths = _clip_incident_face(ctx, ref_geom, inc_geom, pos, rot,
                                         ref_normal)
    if not points:
        return
    order = np.argsort(-np.asarray(depths))[:_MAX_CONTACTS_PER_PAIR]
    for k in order:
        acc.emit(box_a.body, box_b.body, points[k], normal, depths[k],
                 box_a, box_b)


def _box_box_bucket(ctx, acc, geoms, bucket, pos, rot) -> None:
    """All box-box pairs of a step in one batched SAT pass.

    The 15 candidate axes (6 faces + 9 edge crosses) of every pair are
    tested together; degenerate edge crosses keep their lane (masked out
    of the decisions) so the stacked arrays stay rectangular.  Each lane
    runs the exact elementwise ops the per-pair path ran, so surviving
    pairs see identical axes/overlaps; face clipping and edge contacts
    then run per surviving pair as before (census-free only — the
    per-pair path remains for census and fault-injection runs).
    """
    n_pairs = len(bucket)
    body_a = np.array([geoms[i].body for i, _ in bucket], dtype=np.int64)
    body_b = np.array([geoms[j].body for _, j in bucket], dtype=np.int64)
    ha = np.stack([geoms[i].params for i, _ in bucket]).astype(np.float32)
    hb = np.stack([geoms[j].params for _, j in bucket]).astype(np.float32)
    pa, pb = pos[body_a], pos[body_b]
    ra, rb = rot[body_a], rot[body_b]
    ra_t = np.ascontiguousarray(ra.transpose(0, 2, 1))
    rb_t = np.ascontiguousarray(rb.transpose(0, 2, 1))

    delta = ctx.sub(pb, pa)  # (P, 3)
    crosses = math3d.cross(ctx, np.repeat(ra_t, 3, axis=1),
                           np.tile(rb_t, (1, 3, 1)))  # (P, 9, 3)
    lengths = np.linalg.norm(crosses.astype(np.float64), axis=2)
    good = lengths > 1e-6
    safe = np.where(good, lengths, 1.0)
    # float64 divide then downcast, matching the per-pair normalization.
    edge_axes = (crosses.astype(np.float64) / safe[:, :, None]).astype(
        np.float32)
    axes = np.concatenate([ra_t, rb_t, edge_axes], axis=1)  # (P, 15, 3)

    on_a = np.abs(math3d.dot(ctx, axes[:, :, None, :], ra_t[:, None, :, :]))
    on_b = np.abs(math3d.dot(ctx, axes[:, :, None, :], rb_t[:, None, :, :]))
    proj_a = math3d.dot(ctx, on_a, ha[:, None, :])
    proj_b = math3d.dot(ctx, on_b, hb[:, None, :])
    separation = math3d.dot(ctx, axes, delta[:, None, :])
    overlap = ctx.sub(ctx.add(proj_a, proj_b), np.abs(separation))

    valid = np.concatenate(
        [np.ones((n_pairs, 6), dtype=bool), good], axis=1)
    masked = np.where(valid, overlap.astype(np.float64), np.inf)
    separated = np.any(np.where(valid, overlap <= 0, False), axis=1)
    best_face = np.argmin(masked[:, :6], axis=1)
    has_edge = good.any(axis=1)
    best_edge = 6 + np.argmin(masked[:, 6:], axis=1)

    for k in range(n_pairs):
        if separated[k]:
            continue
        i, j = bucket[k]
        box_a, box_b = geoms[i], geoms[j]
        best_index = int(best_face[k])
        if has_edge[k]:
            be = int(best_edge[k])
            if overlap[k, be] < 0.95 * overlap[k, best_index]:
                best_index = be
        best_depth = float(overlap[k, best_index])
        best_axis = axes[k, best_index]
        if separation[k, best_index] < 0:
            best_axis = -best_axis
        normal = best_axis  # points from A towards B

        if best_index >= 6:
            _box_box_edge_contact(ctx, acc, box_a, box_b, pos, rot,
                                  normal, best_depth)
            continue
        if best_index < 3:
            ref_geom, inc_geom = box_a, box_b
            ref_normal = normal
        else:
            ref_geom, inc_geom = box_b, box_a
            ref_normal = -normal
        points, depths = _clip_incident_face(ctx, ref_geom, inc_geom,
                                             pos, rot, ref_normal)
        if not points:
            continue
        order = np.argsort(-np.asarray(depths))[:_MAX_CONTACTS_PER_PAIR]
        for m in order:
            acc.emit(box_a.body, box_b.body, points[m], normal,
                     depths[m], box_a, box_b)


def _face_basis(rot: np.ndarray, half, normal: np.ndarray):
    """Pick the box face most aligned with ``normal``.

    Returns (face axis index, sign, tangent axis indices).
    """
    alignment = rot.T @ normal
    axis = int(np.argmax(np.abs(alignment)))
    sign = 1.0 if alignment[axis] >= 0 else -1.0
    tangents = [k for k in range(3) if k != axis]
    return axis, sign, tangents


def _clip_incident_face(ctx, ref_geom, inc_geom, pos, rot, ref_normal):
    """Clip the incident face of ``inc_geom`` against ``ref_geom``'s face.

    ``ref_normal`` points out of the reference box towards the incident
    box.  Returns world-space contact points on the incident face that lie
    below the reference face, with their penetration depths.
    """
    ref_rot, ref_pos = rot[ref_geom.body], pos[ref_geom.body]
    inc_rot, inc_pos = rot[inc_geom.body], pos[inc_geom.body]
    ref_half, inc_half = ref_geom.params, inc_geom.params

    ref_axis, ref_sign, ref_tangents = _face_basis(ref_rot, ref_half,
                                                   np.asarray(ref_normal))
    inc_axis, inc_sign, inc_tangents = _face_basis(inc_rot, inc_half,
                                                   -np.asarray(ref_normal))

    # Incident face polygon (4 corners, world space) through the context.
    t0, t1 = inc_tangents
    corners_local = []
    for s0, s1 in ((-1, -1), (1, -1), (1, 1), (-1, 1)):
        corner = np.zeros(3, dtype=np.float32)
        corner[inc_axis] = inc_sign * inc_half[inc_axis]
        corner[t0] = s0 * inc_half[t0]
        corner[t1] = s1 * inc_half[t1]
        corners_local.append(corner)
    corners_local = np.stack(corners_local)
    polygon = ctx.add(inc_pos[None, :],
                      math3d.matvec(ctx, inc_rot[None, :, :], corners_local))
    polygon = [polygon[k] for k in range(4)]

    # Clip against the four side planes of the reference face.
    for tangent in ref_tangents:
        axis_dir = ref_rot[:, tangent].astype(np.float32)
        extent = float(ref_half[tangent])
        for plane_sign in (1.0, -1.0):
            plane_n = (plane_sign * axis_dir).astype(np.float32)
            plane_d = float(
                plane_sign * float(np.dot(ref_pos, axis_dir)) + extent)
            polygon = _clip_polygon(ctx, polygon, plane_n, plane_d)
            if not polygon:
                return [], []

    # Keep points below the reference face plane.
    face_n = (ref_sign * ref_rot[:, ref_axis]).astype(np.float32)
    face_d = float(np.dot(ref_pos, face_n)) + float(ref_half[ref_axis])
    stacked = np.stack(polygon).astype(np.float32)
    dist = math3d.dot(ctx, face_n[None, :], stacked) - np.float32(face_d)
    points, depths = [], []
    for k in range(len(polygon)):
        if dist[k] < 0:
            points.append(stacked[k])
            depths.append(-float(dist[k]))
    return points, depths


def _clip_polygon(ctx, polygon, plane_n, plane_d):
    """Sutherland–Hodgman clip: keep the half-space n . x <= d."""
    if not polygon:
        return []
    output = []
    count = len(polygon)
    stacked = np.stack(polygon).astype(np.float32)
    dists = (
        math3d.dot(ctx, plane_n[None, :], stacked) - np.float32(plane_d)
    ).tolist()
    for k in range(count):
        current, nxt = polygon[k], polygon[(k + 1) % count]
        d0, d1 = dists[k], dists[(k + 1) % count]
        if d0 <= 0:
            output.append(current)
        if (d0 <= 0) != (d1 <= 0) and abs(d0 - d1) > 1e-12:
            t = np.float32(d0 / (d0 - d1))
            edge = ctx.sub(nxt, current)
            output.append(ctx.add(current, ctx.mul(edge, t)))
    return output


def _box_box_edge_contact(ctx, acc, box_a, box_b, pos, rot, normal, depth):
    """Edge-edge contact: support points along +/- normal on each box."""
    pa, pb = pos[box_a.body], pos[box_b.body]
    ra, rb = rot[box_a.body], rot[box_b.body]

    def _support(rotm, half, direction):
        signs = np.sign(rotm.T @ direction)
        signs[signs == 0] = 1.0
        local = (signs * np.asarray(half)).astype(np.float32)
        return math3d.matvec(ctx, rotm[None, :, :], local[None, :])[0]

    support_a = ctx.add(pa, _support(ra, box_a.params, np.asarray(normal)))
    support_b = ctx.add(pb, _support(rb, box_b.params, -np.asarray(normal)))
    midpoint = ctx.mul(ctx.add(support_a, support_b), np.float32(0.5))
    acc.emit(box_a.body, box_b.body, midpoint, normal, depth, box_a, box_b)


# ----------------------------------------------------------------------
# Capsules — a segment with a radius; every test reduces to spheres at
# the closest point(s) on the segment
# ----------------------------------------------------------------------
def _capsule_segment(geom: Geom, pos, rot):
    """World endpoints of a capsule's inner segment (local y axis)."""
    center = pos[geom.body].astype(np.float64)
    axis = rot[geom.body][:, 1].astype(np.float64)
    half = float(geom.params[1])
    return center - axis * half, center + axis * half


def _closest_on_segment(p0, p1, point):
    """Closest point to ``point`` on segment p0-p1 (float64 geometry)."""
    d = p1 - p0
    denom = float(d @ d)
    if denom < 1e-12:
        return p0.copy()
    t = float((point - p0) @ d) / denom
    return p0 + d * min(max(t, 0.0), 1.0)


def _closest_between_segments(p0, p1, q0, q1):
    """Closest points between two segments (Ericson's algorithm)."""
    d1 = p1 - p0
    d2 = q1 - q0
    r = p0 - q0
    a = float(d1 @ d1)
    e = float(d2 @ d2)
    f = float(d2 @ r)
    if a < 1e-12 and e < 1e-12:
        return p0.copy(), q0.copy()
    if a < 1e-12:
        t = min(max(f / e, 0.0), 1.0)
        return p0.copy(), q0 + d2 * t
    c = float(d1 @ r)
    if e < 1e-12:
        s = min(max(-c / a, 0.0), 1.0)
        return p0 + d1 * s, q0.copy()
    b = float(d1 @ d2)
    denom = a * e - b * b
    s = min(max((b * f - c * e) / denom, 0.0), 1.0) if denom > 1e-12 \
        else 0.0
    t = (b * s + f) / e
    if t < 0.0:
        t = 0.0
        s = min(max(-c / a, 0.0), 1.0)
    elif t > 1.0:
        t = 1.0
        s = min(max((b - c) / a, 0.0), 1.0)
    return p0 + d1 * s, q0 + d2 * t


def _emit_sphere_pair(ctx, acc, body_a, body_b, center_a, radius_a,
                      center_b, radius_b, geom_a, geom_b):
    """Contact between two virtual spheres (shared capsule epilogue)."""
    ca = np.asarray(center_a, dtype=np.float32)
    cb = np.asarray(center_b, dtype=np.float32)
    delta = ctx.sub(cb[None, :], ca[None, :])
    unit, dist = math3d.normalize(ctx, delta)
    depth = float(radius_a + radius_b - dist[0])
    if depth <= 0 or dist[0] < 1e-9:
        return
    offset = np.float32(radius_a - 0.5 * depth)
    point = ctx.add(ca[None, :], math3d.scale(ctx, unit, offset))
    acc.emit(body_a, body_b, point[0], unit[0], depth, geom_a, geom_b)


def _capsule_plane(ctx, acc, capsule: Geom, plane: Geom, pos, rot,
                   world) -> None:
    radius = float(capsule.params[0])
    n = plane.params.astype(np.float32)
    p0, p1 = _capsule_segment(capsule, pos, rot)
    for endpoint in (p0, p1):
        e = endpoint.astype(np.float32)
        height = float(
            math3d.dot(ctx, n[None, :], e[None, :])[0]) - plane.offset
        depth = radius - height
        if depth > 0:
            foot = ctx.sub(e[None, :],
                           math3d.scale(ctx, n[None, :],
                                        np.float32(height)))
            acc.emit(world, capsule.body, foot[0], n, depth, plane,
                     capsule)


def _capsule_sphere(ctx, acc, capsule: Geom, sphere: Geom, pos,
                    rot) -> None:
    p0, p1 = _capsule_segment(capsule, pos, rot)
    center = pos[sphere.body].astype(np.float64)
    on_segment = _closest_on_segment(p0, p1, center)
    _emit_sphere_pair(ctx, acc, capsule.body, sphere.body,
                      on_segment, float(capsule.params[0]),
                      center, float(sphere.params[0]), capsule, sphere)


def _capsule_capsule(ctx, acc, cap_a: Geom, cap_b: Geom, pos,
                     rot) -> None:
    a0, a1 = _capsule_segment(cap_a, pos, rot)
    b0, b1 = _capsule_segment(cap_b, pos, rot)
    qa, qb = _closest_between_segments(a0, a1, b0, b1)
    _emit_sphere_pair(ctx, acc, cap_a.body, cap_b.body,
                      qa, float(cap_a.params[0]),
                      qb, float(cap_b.params[0]), cap_a, cap_b)


def _capsule_box(ctx, acc, capsule: Geom, box: Geom, pos, rot) -> None:
    """Capsule vs box via sampled spheres along the segment.

    Exact segment-box closest points need a case analysis we don't need
    at PhysicsBench fidelity; five samples (ends, quarters, middle)
    bound the error by an eighth of the segment length.
    """
    p0, p1 = _capsule_segment(capsule, pos, rot)
    radius = float(capsule.params[0])
    box_pos = pos[box.body]
    box_rot = rot[box.body]
    half = box.params
    best = None
    for t in (0.0, 0.25, 0.5, 0.75, 1.0):
        sample = (p0 + (p1 - p0) * t).astype(np.float32)
        rel = ctx.sub(sample, box_pos)
        local = math3d.matvec(ctx, box_rot.T[None, :, :], rel[None, :])[0]
        clamped = np.clip(local, -half, half)
        delta = ctx.sub(local, clamped)
        dist = float(math3d.norm(ctx, delta[None, :])[0])
        if dist < 1e-9:
            continue  # sample center inside the box; neighbours cover it
        depth = radius - dist
        if depth > 0 and (best is None or depth > best[0]):
            local_n = ctx.div(delta, np.float32(dist))
            world_n = math3d.matvec(ctx, box_rot[None, :, :],
                                    local_n[None, :])[0]
            point = ctx.add(box_pos,
                            math3d.matvec(ctx, box_rot[None, :, :],
                                          clamped[None, :])[0])
            best = (depth, point, world_n)
    if best is not None:
        depth, point, world_n = best
        acc.emit(box.body, capsule.body, point, world_n, depth, box,
                 capsule)
