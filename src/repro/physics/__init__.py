"""Constraint-based rigid-body physics engine (the ODE-like substrate).

Built from scratch for this reproduction: broad/narrow-phase collision
detection, island partitioning, an iteratively relaxed mixed LCP with
friction, ball/hinge joints, mass-spring cloth, explosions, and total
energy monitoring — all with every FP add/sub/mul routed through a
precision-tunable :class:`~repro.fp.FPContext`.
"""

from .batch import BatchIncompatible, WorldBatch, fleet_ineligibility
from .body import BodyStore
from .cloth import Cloth
from .energy import EnergyMonitor, EnergyRecord
from .explosion import Explosion
from .island import UnionFind, partition_islands
from .joints import BallJoint, HingeJoint, JointStore
from .lcp import ConstraintRows, SolverParams
from .narrowphase import ContactSet
from .shapes import (
    Geom,
    GeomStore,
    ShapeType,
    box_inertia,
    capsule_inertia,
    sphere_inertia,
)
from .world import DEFAULT_TIMESTEP, STEPS_PER_FRAME, SleepParams, World

__all__ = [
    "BatchIncompatible",
    "WorldBatch",
    "fleet_ineligibility",
    "BodyStore",
    "Cloth",
    "EnergyMonitor",
    "EnergyRecord",
    "Explosion",
    "UnionFind",
    "partition_islands",
    "BallJoint",
    "HingeJoint",
    "JointStore",
    "ConstraintRows",
    "SolverParams",
    "ContactSet",
    "Geom",
    "GeomStore",
    "ShapeType",
    "box_inertia",
    "capsule_inertia",
    "sphere_inertia",
    "SleepParams",
    "World",
    "DEFAULT_TIMESTEP",
    "STEPS_PER_FRAME",
]
