"""Semi-implicit Euler integration of rigid-body state.

Integration runs in the ``integrate`` phase, which the paper leaves at
full precision (only the massively parallel Narrow-phase and LCP phases
are precision-tuned), but it still flows through the context so op-mix
accounting stays complete.
"""

from __future__ import annotations

import numpy as np

from ..fp.context import FPContext
from . import math3d
from .body import BodyStore

__all__ = ["apply_gravity", "integrate"]


def apply_gravity(
    ctx: FPContext, bodies: BodyStore, gravity: np.ndarray, dt: float
) -> None:
    """Accumulate gravity into linear velocities (dynamic, awake bodies)."""
    n = bodies.count
    if n == 0:
        return
    active = (bodies.invmass[:n] > 0) & ~bodies.asleep[:n]
    dv = np.where(
        active[:, None],
        np.asarray(gravity, dtype=np.float32)[None, :] * np.float32(dt),
        np.float32(0.0),
    )
    bodies.linvel[:n] = ctx.add(bodies.linvel[:n], dv)


def integrate(ctx: FPContext, bodies: BodyStore, dt: float) -> None:
    """Advance positions and orientations by the (post-solve) velocities."""
    n = bodies.count
    if n == 0:
        return
    awake = ~bodies.asleep[:n]
    dt32 = np.float32(dt)

    step = math3d.scale(ctx, bodies.linvel[:n], dt32)
    new_pos = ctx.add(bodies.pos[:n], step)
    bodies.pos[:n] = np.where(awake[:, None], new_pos, bodies.pos[:n])

    new_quat = math3d.quat_integrate(ctx, bodies.quat[:n],
                                     bodies.angvel[:n], dt)
    bodies.quat[:n] = np.where(awake[:, None], new_quat, bodies.quat[:n])
