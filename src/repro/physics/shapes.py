"""Collision geometry attached to rigid bodies.

Three primitive shapes cover the PhysicsBench-style scenarios: spheres,
boxes (half extents) and static planes.  A :class:`GeomStore` keeps the
geoms plus cached world-space bounding boxes for the broad phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["ShapeType", "Geom", "GeomStore", "box_inertia",
           "capsule_inertia", "sphere_inertia"]


class ShapeType(enum.Enum):
    SPHERE = "sphere"
    BOX = "box"
    PLANE = "plane"
    CAPSULE = "capsule"


@dataclass
class Geom:
    """One collision shape bound to a body (or static, body = -1)."""

    shape: ShapeType
    body: int
    #: sphere: [radius, 0, 0]; box: half extents; plane: unit normal;
    #: capsule: [radius, half segment length, 0] (axis = local y).
    params: np.ndarray
    #: plane only: signed offset so that points satisfy n . x = offset.
    offset: float = 0.0
    #: Coulomb friction coefficient used when this geom is in contact.
    friction: float = 0.5
    #: restitution (bounciness) blended as the max of the two geoms.
    restitution: float = 0.1

    def __post_init__(self) -> None:
        self.params = np.asarray(self.params, dtype=np.float32)


class GeomStore:
    """All collision geometry of a world, with world AABBs."""

    def __init__(self) -> None:
        self.geoms: List[Geom] = []
        # Broad-phase pair-eligibility cache; geom membership changes
        # only through _append / remove, which invalidate it.
        self._pair_cache: Optional[np.ndarray] = None

    def add_sphere(self, body: int, radius: float, **props) -> int:
        return self._append(
            Geom(ShapeType.SPHERE, body, [radius, 0.0, 0.0], **props)
        )

    def add_box(self, body: int, half_extents, **props) -> int:
        return self._append(Geom(ShapeType.BOX, body, half_extents, **props))

    def add_capsule(self, body: int, radius: float, half_height: float,
                    **props) -> int:
        """A capsule along the body's local y axis.

        ``half_height`` is half the inner segment length (the cylinder
        part); the total capsule half-length is ``half_height + radius``.
        """
        return self._append(
            Geom(ShapeType.CAPSULE, body, [radius, half_height, 0.0],
                 **props))

    def add_plane(self, normal, offset: float, **props) -> int:
        normal = np.asarray(normal, dtype=np.float64)
        normal = normal / np.linalg.norm(normal)
        return self._append(
            Geom(ShapeType.PLANE, -1, normal, offset=offset, **props)
        )

    def _append(self, geom: Geom) -> int:
        self.geoms.append(geom)
        self._pair_cache = None
        return len(self.geoms) - 1

    def remove(self, index: int) -> Geom:
        """Remove and return the geom at ``index`` (shifts later indices)."""
        geom = self.geoms.pop(index)
        self._pair_cache = None
        return geom

    def __len__(self) -> int:
        return len(self.geoms)

    def __getitem__(self, index: int) -> Geom:
        return self.geoms[index]

    def pair_eligibility(self) -> np.ndarray:
        """Boolean [n, n] mask of geom pairs allowed to collide.

        ``mask[i, j]`` is False when i and j sit on the same body or are
        both static (planes, or geoms on the world body).  The mask only
        depends on geom membership — not on per-step state — so it is
        cached and rebuilt lazily after adds/removals, sparing the broad
        phase a per-geom Python attribute walk every step.
        """
        cache = self._pair_cache
        if cache is None or cache.shape[0] != len(self.geoms):
            body = np.array([g.body for g in self.geoms], dtype=np.int64)
            static = np.array(
                [g.body < 0 or g.shape is ShapeType.PLANE
                 for g in self.geoms], dtype=bool)
            same_body = body[:, None] == body[None, :]
            both_static = static[:, None] & static[None, :]
            cache = ~same_body & ~both_static
            self._pair_cache = cache
        return cache

    # ------------------------------------------------------------------
    # World AABBs (full-precision bookkeeping; not part of the studied
    # phases, mirrors ODE's broad-phase being outside the LCP/narrow loop)
    # ------------------------------------------------------------------
    def world_aabbs(self, pos: np.ndarray, rot: np.ndarray) -> np.ndarray:
        """Axis-aligned bounds per geom; planes get infinite extents.

        ``pos``/``rot`` are the body arrays (world body row included).
        """
        n = len(self.geoms)
        lo = np.full((n, 3), -np.inf, dtype=np.float32)
        hi = np.full((n, 3), np.inf, dtype=np.float32)
        for k, geom in enumerate(self.geoms):
            if geom.shape is ShapeType.PLANE:
                continue
            center = pos[geom.body]
            if geom.shape is ShapeType.SPHERE:
                radius = geom.params[0]
                lo[k] = center - radius
                hi[k] = center + radius
            elif geom.shape is ShapeType.CAPSULE:
                radius, half_height = geom.params[0], geom.params[1]
                axis_extent = np.abs(rot[geom.body][:, 1]) * half_height
                extent = axis_extent + radius
                lo[k] = center - extent
                hi[k] = center + extent
            else:  # box: |R| @ half_extents bounds the rotated box
                extent = np.abs(rot[geom.body]) @ geom.params
                lo[k] = center - extent
                hi[k] = center + extent
        return np.stack([lo, hi], axis=1)


def sphere_inertia(mass: float, radius: float) -> np.ndarray:
    """Diagonal inertia of a solid sphere."""
    i = 0.4 * mass * radius * radius
    return np.array([i, i, i], dtype=np.float32)


def box_inertia(mass: float, half_extents) -> np.ndarray:
    """Diagonal inertia of a solid box from half extents."""
    hx, hy, hz = (float(h) for h in half_extents)
    factor = mass / 3.0
    return np.array(
        [
            factor * (hy * hy + hz * hz),
            factor * (hx * hx + hz * hz),
            factor * (hx * hx + hy * hy),
        ],
        dtype=np.float32,
    )


def capsule_inertia(mass: float, radius: float,
                    half_height: float) -> np.ndarray:
    """Diagonal inertia of a solid capsule (axis = y).

    Mass splits between the cylinder and the two hemispherical caps by
    volume; standard solid formulas with the parallel-axis shift for the
    caps.
    """
    r, h = float(radius), 2.0 * float(half_height)
    v_cyl = np.pi * r * r * h
    v_caps = (4.0 / 3.0) * np.pi * r ** 3
    total = v_cyl + v_caps
    m_cyl = mass * v_cyl / total if total else 0.0
    m_caps = mass - m_cyl

    # Standard solid-capsule formulas (cylinder + two hemispherical end
    # caps with the parallel-axis terms folded in).
    i_axial = 0.5 * m_cyl * r * r + 0.4 * m_caps * r * r
    i_trans = (
        m_cyl * (h * h / 12.0 + r * r / 4.0)
        + m_caps * (0.4 * r * r + h * h / 4.0 + 0.375 * h * r)
    )
    return np.array([i_trans, i_axial, i_trans], dtype=np.float32)
