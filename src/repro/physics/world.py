"""The simulation world: ODE-like phase pipeline with per-phase precision.

``World.step()`` runs the paper's Figure 1 flow for one 0.01 s timestep:

1. **broad**  — AABB pair culling (serial bookkeeping, full precision);
2. **narrow** — contact generation (massively parallel, precision-tuned);
3. islands    — union-find grouping (integer work);
4. **lcp**    — constraint relaxation, 20 iterations (precision-tuned);
5. **integrate** — semi-implicit Euler + energy monitoring.

The world owns one :class:`~repro.fp.FPContext`; phases switch the
context's label so the narrow/LCP work executes at whatever mantissa
width the tuner (or an experiment) installed, while everything else stays
at full precision — exactly the paper's per-phase control-register design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..fp.context import FPContext
from . import broadphase, integrator, lcp, math3d, narrowphase
from .body import BodyStore
from .cloth import Cloth
from .energy import EnergyMonitor
from .explosion import Explosion
from .island import partition_islands
from .joints import JointStore
from .series import BoundedSeries
from .shapes import GeomStore, box_inertia, capsule_inertia, sphere_inertia

__all__ = ["World", "SleepParams"]

DEFAULT_TIMESTEP = 0.01
STEPS_PER_FRAME = 3


@dataclass
class SleepParams:
    """Object disabling (the paper's Table 4 runs use object-disabling)."""

    enabled: bool = True
    linear_threshold: float = 0.03
    angular_threshold: float = 0.05
    steps_to_sleep: int = 15


class World:
    """A complete rigid-body + cloth simulation world."""

    def __init__(
        self,
        ctx: Optional[FPContext] = None,
        gravity=(0.0, -9.8, 0.0),
        dt: float = DEFAULT_TIMESTEP,
        solver: Optional[lcp.SolverParams] = None,
        sleep: Optional[SleepParams] = None,
    ) -> None:
        self.ctx = ctx if ctx is not None else FPContext()
        self.gravity = np.asarray(gravity, dtype=np.float32)
        self.dt = float(dt)
        self.solver = solver or lcp.SolverParams()
        self.sleep = sleep or SleepParams()

        self.bodies = BodyStore()
        self.geoms = GeomStore()
        self.joints = JointStore()
        self.cloths: List[Cloth] = []
        self.explosions: List[Explosion] = []
        self.monitor = EnergyMonitor(self.gravity)
        self.contact_cache = lcp.ContactCache()

        self.step_count = 0
        self.island_labels = np.empty(0, dtype=np.int32)
        self.last_contact_count = 0
        #: per-step max contact penetration depth (believability input);
        #: windowed so long-lived serve sessions don't leak memory, with
        #: a running max preserving the believability peak statistic
        self.penetration_series = BoundedSeries(track_max=True)
        #: called after each step with (world, energy_record)
        self.on_step: Optional[Callable] = None
        #: optional :class:`~repro.robustness.PhaseGuards`; when set,
        #: invariants are checked at every phase boundary of ``step()``
        self.guards = None
        #: optional :class:`~repro.obs.Tracer`; when set, ``step()``
        #: reports per-phase wall time and a per-step telemetry record.
        #: The ``None`` default keeps the fast path untouched.
        self.observer = None
        #: post-solve contact-normal residual (only computed under guards)
        self.last_lcp_residual = 0.0
        #: bodies slept permanently by the recovery engine (rung 2)
        self.quarantined: set = set()

    # ------------------------------------------------------------------
    # Scene construction conveniences
    # ------------------------------------------------------------------
    def add_ground_plane(self, y: float = 0.0, **props) -> int:
        return self.geoms.add_plane([0.0, 1.0, 0.0], y, **props)

    def add_sphere(self, pos, radius: float, mass: float = 1.0,
                   **props) -> int:
        velocity_props = {
            k: props.pop(k) for k in ("linvel", "angvel") if k in props
        }
        body = self.bodies.add_body(
            pos, mass, sphere_inertia(max(mass, 1e-9), radius),
            **velocity_props)
        self.geoms.add_sphere(body, radius, **props)
        return body

    def add_box(self, pos, half_extents, mass: float = 1.0, quat=None,
                **props) -> int:
        velocity_props = {
            k: props.pop(k) for k in ("linvel", "angvel") if k in props
        }
        body = self.bodies.add_body(
            pos, mass, box_inertia(max(mass, 1e-9), half_extents),
            quat=quat, **velocity_props)
        self.geoms.add_box(body, half_extents, **props)
        return body

    def add_capsule(self, pos, radius: float, half_height: float,
                    mass: float = 1.0, quat=None, **props) -> int:
        velocity_props = {
            k: props.pop(k) for k in ("linvel", "angvel") if k in props
        }
        body = self.bodies.add_body(
            pos, mass, capsule_inertia(max(mass, 1e-9), radius,
                                       half_height),
            quat=quat, **velocity_props)
        self.geoms.add_capsule(body, radius, half_height, **props)
        return body

    def add_cloth(self, cloth: Cloth) -> Cloth:
        self.cloths.append(cloth)
        return cloth

    def schedule_explosion(self, explosion: Explosion) -> Explosion:
        self.explosions.append(explosion)
        return explosion

    def apply_impulse(self, body: int, impulse, point=None) -> float:
        """Inject an impulse; returns (and records) the energy added."""
        impulse = np.asarray(impulse, dtype=np.float64)
        m = float(self.bodies.mass[body])
        if m <= 0 or body in self.quarantined:
            return 0.0
        v0 = self.bodies.linvel[body].astype(np.float64)
        v1 = v0 + impulse / m
        self.bodies.linvel[body] = v1.astype(np.float32)
        if point is not None:
            r = np.asarray(point, np.float64) - self.bodies.pos[body]
            torque_impulse = np.cross(r, impulse)
            rot = self.bodies.rot[body].astype(np.float64)
            inv_i = np.where(self.bodies.inertia_body[body] > 0,
                             1.0 / self.bodies.inertia_body[body], 0.0)
            dw = rot @ (inv_i * (rot.T @ torque_impulse))
            self.bodies.angvel[body] = (
                self.bodies.angvel[body].astype(np.float64) + dw
            ).astype(np.float32)
        self.bodies.asleep[body] = False
        self.bodies.low_motion_steps[body] = 0
        injected = 0.5 * m * (float(v1 @ v1) - float(v0 @ v0))
        self.monitor.note_injection(injected)
        return injected

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the world by one ``dt`` timestep."""
        ctx = self.ctx
        obs = self.observer
        if obs is not None:
            obs.begin_step(self)
        self.bodies.ensure_world_row()

        for explosion in self.explosions:
            if explosion.trigger_step == self.step_count:
                explosion.apply(self)

        t0 = time.perf_counter() if obs is not None else 0.0
        with ctx.in_phase("integrate"):
            self.bodies.refresh_derived(ctx)
            integrator.apply_gravity(ctx, self.bodies, self.gravity, self.dt)
            for cloth in self.cloths:
                cloth.apply_gravity(ctx, self.gravity, self.dt)
        if obs is not None:
            obs.phase_done("integrate", time.perf_counter() - t0)
            t0 = time.perf_counter()

        # --- collision detection -------------------------------------
        aabbs = self.geoms.world_aabbs(
            self.bodies.view("pos"), self.bodies.view("rot"))
        pairs = broadphase.candidate_pairs(self.geoms, aabbs)
        if obs is not None:
            obs.phase_done("broad", time.perf_counter() - t0)
            t0 = time.perf_counter()

        with ctx.in_phase("narrow"):
            contacts = narrowphase.generate_contacts(
                ctx, self.bodies, self.geoms, pairs)
        if obs is not None:
            obs.phase_done("narrow", time.perf_counter() - t0)
        self.last_contact_count = len(contacts)
        self.penetration_series.append(
            float(contacts.depth.max()) if len(contacts) else 0.0)
        if self.guards is not None:
            self.guards.after_narrow(self, contacts)

        # --- islands ---------------------------------------------------
        if obs is not None:
            t0 = time.perf_counter()
        jp = self.joints.packed()
        edges_a = np.concatenate([
            np.asarray(contacts.body_a, dtype=np.int64),
            jp["ball_a"], jp["hinge_a"],
        ])
        edges_b = np.concatenate([
            np.asarray(contacts.body_b, dtype=np.int64),
            jp["ball_b"], jp["hinge_b"],
        ])
        self.island_labels = partition_islands(
            self.bodies.count, self.bodies.dynamic_mask(),
            edges_a, edges_b)
        if obs is not None:
            obs.phase_done("islands", time.perf_counter() - t0)
            t0 = time.perf_counter()

        # --- constraint solve ------------------------------------------
        with ctx.in_phase("lcp"):
            rows = lcp.build_rows(ctx, self.bodies, contacts, self.joints,
                                  self.dt, self.solver)
            if self.solver.warm_start:
                matched = self.contact_cache.warm_start(
                    contacts, rows, self.solver)
                if matched:
                    lcp.apply_warm_start_impulses(ctx, self.bodies, rows)
            lcp.solve(ctx, self.bodies, rows, self.solver)
            if self.solver.warm_start:
                self.contact_cache.store(contacts, rows)
            for cloth in self.cloths:
                cloth.solve_constraints(ctx, self.dt,
                                        self.solver.iterations)
                cloth.collide(ctx, self)
        if obs is not None:
            obs.phase_done("lcp", time.perf_counter() - t0)

        if self.guards is not None:
            self.last_lcp_residual = lcp.solver_residual(self.bodies, rows)
            self.guards.after_lcp(self, self.last_lcp_residual)

        # Sleep bookkeeping uses post-solve velocities (pre-solve ones
        # carry the just-applied gravity kick even for resting bodies).
        self._update_sleep_state(contacts)

        # --- integration ------------------------------------------------
        if obs is not None:
            t0 = time.perf_counter()
        with ctx.in_phase("integrate"):
            integrator.integrate(ctx, self.bodies, self.dt)
            for cloth in self.cloths:
                cloth.integrate(ctx, self.dt)
        if obs is not None:
            obs.phase_done("integrate", time.perf_counter() - t0)

        record = self.monitor.measure(self, self.step_count)
        if self.guards is not None:
            self.guards.after_integrate(self, record)
        self.step_count += 1
        if obs is not None:
            obs.end_step(self, record)
        if self.on_step is not None:
            self.on_step(self, record)

    def step_frame(self) -> None:
        """Advance one rendered frame (3 substeps, the paper's setting)."""
        for _ in range(STEPS_PER_FRAME):
            self.step()

    # ------------------------------------------------------------------
    def _update_sleep_state(self, contacts) -> None:
        """Object disabling: quiet bodies stop simulating until disturbed."""
        if not self.sleep.enabled:
            return
        n = self.bodies.count
        if n == 0:
            return
        lin = np.linalg.norm(self.bodies.linvel[:n], axis=1)
        ang = np.linalg.norm(self.bodies.angvel[:n], axis=1)
        quiet = (lin < self.sleep.linear_threshold) & (
            ang < self.sleep.angular_threshold)
        self.bodies.low_motion_steps[:n] = np.where(
            quiet, self.bodies.low_motion_steps[:n] + 1, 0)
        dynamic = self.bodies.invmass[:n] > 0
        going_to_sleep = dynamic & (
            self.bodies.low_motion_steps[:n] >= self.sleep.steps_to_sleep)
        if going_to_sleep.any():
            self.bodies.asleep[:n] |= going_to_sleep
            self.bodies.linvel[:n][going_to_sleep] = 0.0
            self.bodies.angvel[:n][going_to_sleep] = 0.0

        # Wake anything touched by a moving body (vectorized: the old
        # per-contact Python loop walked every contact every step).
        if len(contacts):
            moving = ~self.bodies.asleep[:n]
            fast = moving & ((lin + ang) > 0.2)
            a = np.asarray(contacts.body_a, dtype=np.int64)
            b = np.asarray(contacts.body_b, dtype=np.int64)
            in_a = a < n
            in_b = b < n
            # Clamped gather keeps out-of-range (world-body) indices safe;
            # the in_* masks discard their lanes.
            a_live = in_a & fast[np.minimum(a, n - 1)]
            b_live = in_b & fast[np.minimum(b, n - 1)]
            targets = np.concatenate([b[a_live & in_b], a[b_live & in_a]])
            if len(targets):
                targets = np.unique(targets)
                if self.quarantined:
                    keep = ~np.isin(targets,
                                    np.fromiter(self.quarantined, np.int64))
                    targets = targets[keep]
                self.bodies.asleep[targets] = False
                self.bodies.low_motion_steps[targets] = 0

    def _wake(self, body: int) -> None:
        if body in self.quarantined:
            return  # quarantined bodies stay dormant until released
        if self.bodies.asleep[body]:
            self.bodies.asleep[body] = False
        self.bodies.low_motion_steps[body] = 0

    # ------------------------------------------------------------------
    # Quarantine (graceful degradation, driven by the recovery engine)
    # ------------------------------------------------------------------
    def quarantine_bodies(self, indices) -> List[int]:
        """Permanently sleep bodies; they ignore wakes and impulses."""
        members = []
        for body in indices:
            body = int(body)
            if not 0 <= body < self.bodies.count:
                continue
            self.quarantined.add(body)
            self.bodies.asleep[body] = True
            self.bodies.linvel[body] = 0.0
            self.bodies.angvel[body] = 0.0
            self.bodies.low_motion_steps[body] = 0
            members.append(body)
        return members

    def quarantine_islands(self, islands) -> List[int]:
        """Quarantine every body of the given island labels."""
        wanted = set(int(i) for i in islands)
        labels = self.island_labels
        members = [
            body for body in range(min(len(labels), self.bodies.count))
            if int(labels[body]) in wanted
        ]
        return self.quarantine_bodies(members)

    def release_quarantine(self, indices=None) -> None:
        """Lift quarantine (all bodies, or the given ones) and wake them."""
        targets = (list(self.quarantined) if indices is None
                   else [int(i) for i in indices])
        for body in targets:
            self.quarantined.discard(body)
            self._wake(body)

    # ------------------------------------------------------------------
    @property
    def island_count(self) -> int:
        labels = self.island_labels
        return int(labels.max()) + 1 if len(labels) and labels.max() >= 0 \
            else 0
