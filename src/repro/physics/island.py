"""Island partitioning (groups of interconnected objects).

"Rigid body simulation involves the solving of forces within each group of
interconnected objects (island). ... Each island is independent" — the LCP
phase's parallelism granularity.  A union-find over the contact/joint
graph labels each dynamic body with its island; static geometry does not
merge islands (everything resting on the ground would otherwise be one
island).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["UnionFind", "partition_islands", "island_members",
           "islands_of"]


class UnionFind:
    """Classic disjoint-set with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def partition_islands(
    n_bodies: int,
    dynamic: np.ndarray,
    edges,
    edges_b: np.ndarray = None,
) -> np.ndarray:
    """Label each body with an island id; static bodies get -1.

    Edges come from contacts and joints, either as two flat index arrays
    (``edges`` = body_a side, ``edges_b`` = body_b side — the SoA form
    the engine hot path feeds straight from the contact set) or, for
    backward compatibility, as an iterable of ``(body_a, body_b)`` pairs
    with ``edges_b`` omitted.  Indices outside ``[0, n_bodies)`` (the
    virtual world body) are ignored, as are edges touching non-dynamic
    bodies — a shared static support does not couple two piles.

    The prefilter and duplicate elimination are vectorized; island
    labels depend only on the connectivity partition, so deduplicating
    and reordering edges cannot change the result.
    """
    if edges_b is None:
        pair_list = list(edges)
        if pair_list:
            arr = np.asarray(pair_list, dtype=np.int64).reshape(-1, 2)
            edges_a, edges_b = arr[:, 0], arr[:, 1]
        else:
            edges_a = edges_b = np.empty(0, dtype=np.int64)
    else:
        edges_a = np.asarray(edges, dtype=np.int64)
        edges_b = np.asarray(edges_b, dtype=np.int64)

    dmask = np.asarray(dynamic, dtype=bool)
    in_range = ((edges_a >= 0) & (edges_a < n_bodies)
                & (edges_b >= 0) & (edges_b < n_bodies))
    edges_a, edges_b = edges_a[in_range], edges_b[in_range]
    live = dmask[edges_a] & dmask[edges_b]
    edges_a, edges_b = edges_a[live], edges_b[live]
    if len(edges_a):
        pairs = np.unique(np.stack([edges_a, edges_b], axis=1), axis=0)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)

    uf = UnionFind(n_bodies)
    for a, b in pairs:
        uf.union(int(a), int(b))
    labels = np.full(n_bodies, -1, dtype=np.int32)
    remap: Dict[int, int] = {}
    for body in range(n_bodies):
        if not dmask[body]:
            continue
        root = uf.find(body)
        labels[body] = remap.setdefault(root, len(remap))
    return labels


def island_members(labels: np.ndarray, island: int) -> np.ndarray:
    """Body indices belonging to one island label."""
    return np.nonzero(labels == island)[0]


def islands_of(labels: np.ndarray,
               bodies: Iterable[int]) -> Sequence[int]:
    """Sorted distinct island labels of ``bodies`` (static ones skipped).

    The recovery engine uses this to attribute a set of offending bodies
    (from guard violations) to the simulation islands it should
    quarantine.
    """
    found = set()
    for body in bodies:
        body = int(body)
        if 0 <= body < len(labels) and labels[body] >= 0:
            found.add(int(labels[body]))
    return sorted(found)
