"""Island partitioning (groups of interconnected objects).

"Rigid body simulation involves the solving of forces within each group of
interconnected objects (island). ... Each island is independent" — the LCP
phase's parallelism granularity.  A union-find over the contact/joint
graph labels each dynamic body with its island; static geometry does not
merge islands (everything resting on the ground would otherwise be one
island).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["UnionFind", "partition_islands", "island_members",
           "islands_of"]


class UnionFind:
    """Classic disjoint-set with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def partition_islands(
    n_bodies: int,
    dynamic: np.ndarray,
    edges: Iterable[Tuple[int, int]],
) -> np.ndarray:
    """Label each body with an island id; static bodies get -1.

    ``edges`` are (body_a, body_b) pairs from contacts and joints; indices
    outside ``[0, n_bodies)`` (the virtual world body) are ignored, as are
    edges touching non-dynamic bodies — a shared static support does not
    couple two piles.
    """
    uf = UnionFind(n_bodies)
    for a, b in edges:
        if 0 <= a < n_bodies and 0 <= b < n_bodies:
            if dynamic[a] and dynamic[b]:
                uf.union(a, b)
    labels = np.full(n_bodies, -1, dtype=np.int32)
    remap: Dict[int, int] = {}
    for body in range(n_bodies):
        if not dynamic[body]:
            continue
        root = uf.find(body)
        labels[body] = remap.setdefault(root, len(remap))
    return labels


def island_members(labels: np.ndarray, island: int) -> np.ndarray:
    """Body indices belonging to one island label."""
    return np.nonzero(labels == island)[0]


def islands_of(labels: np.ndarray,
               bodies: Iterable[int]) -> Sequence[int]:
    """Sorted distinct island labels of ``bodies`` (static ones skipped).

    The recovery engine uses this to attribute a set of offending bodies
    (from guard violations) to the simulation islands it should
    quarantine.
    """
    found = set()
    for body in bodies:
        body = int(body)
        if 0 <= body < len(labels) and labels[body] >= 0:
            found.add(int(labels[body]))
    return sorted(found)
