"""Explosion support: scheduled radial impulse injection.

The paper's modified ODE "supports more complex physical functions,
including ... explosions".  An explosion applies radially decaying
impulses to every dynamic body inside its radius; the kinetic energy it
adds is reported to the energy monitor as an *external injection*, so the
believability criterion does not mistake the blast for numerical
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Explosion"]


@dataclass
class Explosion:
    """A scheduled radial blast."""

    center: np.ndarray
    #: impulse magnitude applied to a body at the center (Ns)
    impulse: float
    radius: float
    trigger_step: int

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float32)

    def apply(self, world) -> float:
        """Apply the blast to every body in range; returns injected energy."""
        bodies = world.bodies
        n = bodies.count
        if n == 0:
            return 0.0
        injected = 0.0
        offsets = bodies.pos[:n].astype(np.float64) - self.center
        dists = np.linalg.norm(offsets, axis=1)
        for i in range(n):
            if bodies.invmass[i] <= 0 or dists[i] >= self.radius:
                continue
            dist = max(dists[i], 1e-6)
            direction = offsets[i] / dist
            falloff = 1.0 - dist / self.radius
            impulse_vec = direction * (self.impulse * falloff)
            injected += world.apply_impulse(i, impulse_vec)
        return injected
