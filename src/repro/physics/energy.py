"""Total-energy monitoring (the paper's believability signal).

"By using the law of energy conservation, the application can compute the
energy difference between successive simulation steps to determine whether
the simulation is diverging towards instability. ... this energy
conservation takes into account externally injected energy by the player
or the game scenario." (Section 4.1)

The monitor mirrors the paper's software instrumentation: it is appended
to the end of the simulation loop after integration, computes one energy
value per object (and per particle), and tracks external injections so
that the *adjusted* per-step difference reflects only numerically created
or destroyed energy plus physical dissipation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .series import BoundedSeries

__all__ = ["EnergyMonitor", "EnergyRecord"]

#: Instruction cost the paper reports for the monitoring code.
INSTRUCTIONS_PER_OBJECT = 67
INSTRUCTIONS_PER_PARTICLE = 27


@dataclass
class EnergyRecord:
    """One post-step energy sample."""

    step: int
    kinetic: float
    potential: float
    injected_total: float

    @property
    def total(self) -> float:
        return self.kinetic + self.potential

    @property
    def conserved(self) -> float:
        """Total energy minus everything injected so far."""
        return self.total - self.injected_total


class EnergyMonitor:
    """Accumulates per-step total energy of a world.

    Energy sums run in float64 numpy — the paper's monitoring code is
    plain application software outside the precision-reduced phases, and
    its overhead is performance-insensitive (<0.3 % of instructions).
    """

    def __init__(self, gravity, reference_height: float = 0.0) -> None:
        self.gravity = np.asarray(gravity, dtype=np.float64)
        self.reference_height = reference_height
        # Windowed: a record per step would leak on long-lived serve
        # sessions; every consumer reads the tail or the retained window.
        self.records = BoundedSeries()
        self._injected_total = 0.0

    # ------------------------------------------------------------------
    def note_injection(self, energy: float) -> None:
        """Record externally injected energy (explosions, player input)."""
        self._injected_total += float(energy)

    @property
    def injected_total(self) -> float:
        return self._injected_total

    # ------------------------------------------------------------------
    def measure(self, world, step: int) -> EnergyRecord:
        """Sample the world's energy after integration of ``step``."""
        kinetic = 0.0
        potential = 0.0
        g_norm = float(np.linalg.norm(self.gravity))
        if g_norm > 0:
            up = -self.gravity / g_norm
        else:
            up = np.zeros(3)

        bodies = world.bodies
        n = bodies.count
        if n:
            mass = bodies.mass[:n].astype(np.float64)
            linvel = bodies.linvel[:n].astype(np.float64)
            angvel = bodies.angvel[:n].astype(np.float64)
            inertia = bodies.inertia_body[:n].astype(np.float64)
            rot = bodies.rot[:n].astype(np.float64)
            dynamic = bodies.invmass[:n] > 0

            lin_ke = 0.5 * mass * np.einsum("ij,ij->i", linvel, linvel)
            # w^T I_world w with I_world = R diag(I) R^T
            w_body = np.einsum("ijk,ij->ik", rot, angvel)  # R^T w
            ang_ke = 0.5 * np.einsum("ij,ij,ij->i", w_body, inertia, w_body)
            heights = bodies.pos[:n].astype(np.float64) @ up
            pe = mass * g_norm * (heights - self.reference_height)
            kinetic += float(np.sum((lin_ke + ang_ke)[dynamic]))
            potential += float(np.sum(pe[dynamic]))

        for cloth in getattr(world, "cloths", []):
            pmass = cloth.mass.astype(np.float64)
            vel = cloth.vel.astype(np.float64)
            moving = cloth.invmass > 0
            ke = 0.5 * pmass * np.einsum("ij,ij->i", vel, vel)
            heights = cloth.pos.astype(np.float64) @ up
            pe = pmass * g_norm * (heights - self.reference_height)
            kinetic += float(np.sum(ke[moving]))
            potential += float(np.sum(pe[moving]))

        record = EnergyRecord(
            step=step,
            kinetic=kinetic,
            potential=potential,
            injected_total=self._injected_total,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def totals(self) -> np.ndarray:
        """Per-step total energy trajectory."""
        return np.array([r.total for r in self.records])

    def conserved_series(self) -> np.ndarray:
        """Per-step energy net of external injection."""
        return np.array([r.conserved for r in self.records])

    def step_difference(self) -> Optional[float]:
        """Latest per-step *conserved* energy change (None before step 2).

        Positive values mean the simulation gained energy it was not
        given — the divergence signature the dynamic controller watches.
        """
        if len(self.records) < 2:
            return None
        return self.records[-1].conserved - self.records[-2].conserved

    def relative_step_difference(self) -> Optional[float]:
        """Latest |conserved delta| / scale, the controller's trigger."""
        diff = self.step_difference()
        if diff is None:
            return None
        scale = max(abs(self.records[-2].conserved), 1.0)
        return abs(diff) / scale

    def instruction_overhead(self, n_objects: int, n_particles: int) -> int:
        """Paper-reported instrumentation cost in dynamic instructions."""
        return (INSTRUCTIONS_PER_OBJECT * n_objects
                + INSTRUCTIONS_PER_PARTICLE * n_particles)
