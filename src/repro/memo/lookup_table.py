"""The 2K-entry arithmetic lookup table (paper Section 4.3.4, Table 5).

When the tuned precision drops below six mantissa bits, a preloaded
2048-entry x 1-byte table computes FP add and multiply mantissas outright,
replacing the memoization tables: the operand value space is so small that
the table covers *all* combinations ("100% of operations sent to the
look-up table will be satisfied").

Index layout (11 bits): ``[op:1][operand A mantissa:5][operand B field:5]``

* **Multiply** — both reduced mantissas index directly; the entry holds the
  normalized product mantissa plus a carry (exponent increment) bit.
* **Add** — the smaller operand is first shifted right by the exponent
  difference with a small 5-bit shifter, which makes its implicit leading
  one visible; the 5-bit window below the larger operand's binary point
  forms the second index field.  Entries again hold mantissa + carry bit
  (the paper's "additional bit ... to indicate the need to increment the
  exponent"; entries are 8 bits, so there is room).
* **Equal exponents** — detected by a zero exponent difference; the
  smaller operand's raw mantissa indexes the table and external logic adds
  the now-unrepresented leading one back ("handle the most significant bit
  after the leading one"), guaranteeing the carry.
* **Effective subtraction** (opposite signs) needs no table at all at
  these widths: a narrow integer subtract plus leading-zero normalization
  reproduces the mantissa, so the L1 unit computes it directly.  (The
  paper does not spell this case out; see DESIGN.md.)

The table is populated once at "boot" for a given target precision and
rounding mode and is never written afterwards — hence single rd/wr port
and the Table 5 area/energy advantage over memoization.

``operand_bits`` generalizes the design beyond the paper's 5-bit fields
(the paper leaves exploring the table further to future work): a table
with ``w``-bit operands has ``2^(1 + 2w)`` entries and covers tuned
precisions below ``w + 1``.
"""

from __future__ import annotations

import numpy as np

from ..fp.bits import (
    EXPONENT_BIAS,
    MANTISSA_BITS,
    biased_exponent,
    bits_to_float,
    compose,
    float_to_bits,
    mantissa_field,
    sign_of,
)
from ..fp.rounding import RoundingMode, reduce_bits

__all__ = ["LookupTable", "LOOKUP_PRECISION_LIMIT", "DEFAULT_OPERAND_BITS"]

#: Paper configuration: 5-bit operand fields.
DEFAULT_OPERAND_BITS = 5
#: The paper's lookup table applies when precision is below this width.
LOOKUP_PRECISION_LIMIT = DEFAULT_OPERAND_BITS + 1


class LookupTable:
    """Boot-time populated add/mul mantissa table.

    Parameters
    ----------
    precision:
        Target mantissa width the entries are rounded to (must be at most
        ``operand_bits``; the full operand width is used even for lower
        tuned precisions "for a more accurate result").
    mode:
        Rounding mode applied when populating entries.
    operand_bits:
        Width of each operand index field (paper: 5).  Values up to 7
        keep entries within one byte (carry bit + mantissa).
    """

    ENTRY_BYTES = 1

    def __init__(
        self,
        precision: int = DEFAULT_OPERAND_BITS,
        mode: RoundingMode = RoundingMode.JAMMING,
        operand_bits: int = DEFAULT_OPERAND_BITS,
    ) -> None:
        if not 1 <= operand_bits <= 7:
            raise ValueError("operand_bits must be in [1, 7] to keep "
                             "1-byte entries")
        if not 0 <= precision <= operand_bits:
            raise ValueError(
                f"lookup table covers precision <= {operand_bits},"
                f" got {precision}"
            )
        self.precision = precision
        self.mode = mode
        self.operand_bits = operand_bits
        self._field_mask = (1 << operand_bits) - 1
        self._top_shift = MANTISSA_BITS - operand_bits
        self._denominator = float(1 << operand_bits)
        self.entries = 1 << (1 + 2 * operand_bits)
        self.table = np.zeros(self.entries, dtype=np.uint8)
        self._populate()

    @property
    def size_bytes(self) -> int:
        return self.entries * self.ENTRY_BYTES

    # ------------------------------------------------------------------
    # Population (boot time)
    # ------------------------------------------------------------------
    def _encode(self, value: float) -> int:
        """Pack a normalized magnitude in [1, 4) into carry|mantissa."""
        carry = 1 if value >= 2.0 else 0
        frac = value / 2.0 if carry else value
        bits = float_to_bits(frac)
        mant = mantissa_field(bits) >> self._top_shift
        return (carry << self.operand_bits) | mant

    def _rounded(self, value: float) -> float:
        return bits_to_float(
            reduce_bits(float_to_bits(value), self.precision, self.mode)
        )

    def _index(self, op_bit: int, a_field: int, b_field: int) -> int:
        return ((op_bit << (2 * self.operand_bits))
                | (a_field << self.operand_bits)
                | (b_field & self._field_mask))

    def _populate(self) -> None:
        width = 1 << self.operand_bits
        denom = self._denominator
        for a_field in range(width):
            ma = 1.0 + a_field / denom
            for b_field in range(width):
                # Add half: A carries its implicit one, B is the already
                # shifted window below the binary point.
                total = self._rounded(ma + b_field / denom)
                self.table[self._index(0, a_field, b_field)] = \
                    self._encode(total)
                # Mul half: both operands carry implicit ones.
                product = self._rounded(ma * (1.0 + b_field / denom))
                self.table[self._index(1, a_field, b_field)] = \
                    self._encode(product)

    # ------------------------------------------------------------------
    # Entry decode
    # ------------------------------------------------------------------
    def _entry_value(self, op_bit: int, a_field: int, b_field: int) -> \
            float:
        entry = int(self.table[self._index(op_bit, a_field, b_field)])
        carry = (entry >> self.operand_bits) & 1
        mant = entry & self._field_mask
        return (1.0 + mant / self._denominator) * (2.0 if carry else 1.0)

    # ------------------------------------------------------------------
    # Functional paths (used for validation and the L1 FPU model)
    # ------------------------------------------------------------------
    def covers(self, op: str, precision: int) -> bool:
        """Whether the unit satisfies ``op`` at the tuned ``precision``."""
        return op in ("add", "sub", "mul") and (
            precision <= self.operand_bits
        )

    def compute_mul(self, a: float, b: float) -> float:
        """Multiply two reduced float32 values via the table."""
        abits, bbits = float_to_bits(a), float_to_bits(b)
        sign = sign_of(abits) ^ sign_of(bbits)
        if (abits & 0x7FFFFFFF) == 0 or (bbits & 0x7FFFFFFF) == 0:
            return -0.0 if sign else 0.0
        a_field = mantissa_field(abits) >> self._top_shift
        b_field = mantissa_field(bbits) >> self._top_shift
        value = self._entry_value(1, a_field, b_field)
        exponent = (
            biased_exponent(abits) + biased_exponent(bbits) - EXPONENT_BIAS
        )
        return self._reconstruct(sign, exponent, value)

    def compute_add(self, a: float, b: float) -> float:
        """Add two reduced float32 values via the table (any signs)."""
        abits, bbits = float_to_bits(a), float_to_bits(b)
        if (abits & 0x7FFFFFFF) == 0:
            return b
        if (bbits & 0x7FFFFFFF) == 0:
            return a
        # Order so |a| >= |b| (compare exponent then mantissa).
        if (abits & 0x7FFFFFFF) < (bbits & 0x7FFFFFFF):
            abits, bbits = bbits, abits
        diff = biased_exponent(abits) - biased_exponent(bbits)
        a_field = mantissa_field(abits) >> self._top_shift
        b_field = mantissa_field(bbits) >> self._top_shift
        sign = sign_of(abits)
        effective_sub = sign_of(abits) != sign_of(bbits)
        implicit_one = 1 << self.operand_bits

        if effective_sub:
            # Narrow integer subtract; no table access needed.
            sig_a = implicit_one | a_field
            sig_b = (implicit_one | b_field) >> diff
            delta = sig_a - sig_b
            if delta == 0:
                return 0.0
            value = delta / self._denominator
        elif diff == 0:
            # Equal-exponent corner case: index with the raw mantissa and
            # re-add the leading one externally.
            value = self._entry_value(0, a_field, b_field) + 1.0
        else:
            shifted = (implicit_one | b_field) >> diff
            value = self._entry_value(0, a_field, shifted)
        exponent = biased_exponent(abits)
        return self._reconstruct(sign, exponent, value)

    @staticmethod
    def _reconstruct(sign: int, exponent: int, value: float) -> float:
        """Normalize ``value`` x 2^(exponent-bias) into a float32."""
        while value >= 2.0:
            value /= 2.0
            exponent += 1
        while 0.0 < value < 1.0:
            value *= 2.0
            exponent -= 1
        if exponent >= 0xFF:
            magnitude = float("inf")
        elif exponent <= 0:
            magnitude = 0.0  # flush to zero at these tiny widths
        else:
            mant = mantissa_field(float_to_bits(value))
            return bits_to_float(compose(sign, exponent, mant))
        return -magnitude if sign else magnitude
