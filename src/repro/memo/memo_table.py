"""Memoization tables for FP value reuse (paper Section 4.3.3, Table 4).

The paper simulates two 256-entry, 16-way set-associative memoization
tables — one for FP add(/sub) and one for FP multiply — indexed by an XOR
of the most significant mantissa bits of the two (already precision
reduced) operands.  A hit means the cached result is reused instead of
occupying the FPU; results are numerically identical, so the tables here
track *timing/energy-relevant* hit statistics only.

Trivializable operations are filtered before reaching these tables (the
caller enforces this: :class:`~repro.fp.context.FPContext` only streams
non-trivial operands).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["MemoTable", "MemoBank"]

_MANTISSA_MSB_SHIFT = 19  # top 4 of the 23 mantissa bits


@dataclass
class _TableStats:
    lookups: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoTable:
    """One set-associative memoization table with LRU replacement.

    Parameters mirror the paper's configuration: 256 entries, 16-way
    (16 sets), set index = XOR of the 4 most-significant mantissa bits of
    each operand.
    """

    def __init__(self, entries: int = 256, ways: int = 16) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = _TableStats()

    def _set_index(self, abits: int, bbits: int) -> int:
        msb_a = (abits >> _MANTISSA_MSB_SHIFT) & 0xF
        msb_b = (bbits >> _MANTISSA_MSB_SHIFT) & 0xF
        return (msb_a ^ msb_b) % self.num_sets

    def lookup(self, abits: int, bbits: int) -> bool:
        """Probe with one reduced operand pair; insert on miss.

        Returns True on a hit.
        """
        self.stats.lookups += 1
        key = (int(abits) << 32) | int(bbits)
        ways = self._sets[self._set_index(abits, bbits)]
        if key in ways:
            ways.move_to_end(key)
            self.stats.hits += 1
            return True
        ways[key] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def probe_batch(self, abits: np.ndarray, bbits: np.ndarray) -> int:
        """Probe a sequence of operand pairs in order; returns hit count.

        The hot path precomputes keys and set indices vectorized, then
        walks the (inherently sequential) LRU state in Python.
        """
        keys = (abits.astype(np.uint64) << np.uint64(32)) | bbits.astype(
            np.uint64
        )
        idx = (
            ((abits >> np.uint32(_MANTISSA_MSB_SHIFT)) & np.uint32(0xF))
            ^ ((bbits >> np.uint32(_MANTISSA_MSB_SHIFT)) & np.uint32(0xF))
        ) % np.uint32(self.num_sets)
        hits = 0
        sets = self._sets
        ways_limit = self.ways
        for key, set_i in zip(keys.tolist(), idx.tolist()):
            ways = sets[set_i]
            if key in ways:
                ways.move_to_end(key)
                hits += 1
            else:
                ways[key] = True
                if len(ways) > ways_limit:
                    ways.popitem(last=False)
        self.stats.lookups += len(keys)
        self.stats.hits += hits
        return hits

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.stats = _TableStats()


class MemoBank:
    """Per-op-type memoization tables (add/sub share one, mul has one)."""

    def __init__(self, entries: int = 256, ways: int = 16) -> None:
        self.tables: Dict[str, MemoTable] = {
            "add": MemoTable(entries, ways),
            "mul": MemoTable(entries, ways),
        }

    @staticmethod
    def _table_name(op: str) -> str:
        return "add" if op in ("add", "sub") else "mul"

    def probe(self, op: str, abits: np.ndarray, bbits: np.ndarray) -> int:
        """Stream non-trivial operand pairs of ``op``; returns hit count."""
        return self.tables[self._table_name(op)].probe_batch(abits, bbits)

    def hit_rate(self, op: str) -> float:
        return self.tables[self._table_name(op)].stats.hit_rate

    def reset(self) -> None:
        for table in self.tables.values():
            table.reset()
