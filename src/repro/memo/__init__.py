"""Value-reuse substrates: memoization tables and the arithmetic LUT."""

from .lookup_table import (
    DEFAULT_OPERAND_BITS,
    LOOKUP_PRECISION_LIMIT,
    LookupTable,
)
from .memo_table import MemoBank, MemoTable

__all__ = [
    "LookupTable",
    "LOOKUP_PRECISION_LIMIT",
    "DEFAULT_OPERAND_BITS",
    "MemoBank",
    "MemoTable",
]
