"""Believability evaluation and minimum-precision search (Table 1).

Follows the methodology of Yeh et al. [34] ("Fool Me Twice"): the
difference in total simulation energy is a reliable predictor of
believability, so a reduced-precision run is *believable* when its energy
trajectory tracks the full-precision reference within a tolerance (the
paper adopts 10 %) and never blows up.

External injections (explosions, scripted impulses) are subtracted before
comparison — "this energy conservation takes into account externally
injected energy by the player or the game scenario."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from ..fp.context import FPContext
from ..fp.rounding import FULL_PRECISION, RoundingMode
from ..perf.sweep import SweepJob, SweepOutcome, SweepRunner
from ..workloads import build, default_steps

__all__ = [
    "BelievabilityCriteria",
    "EnergyTrace",
    "PrecisionQuery",
    "energy_trace",
    "is_believable",
    "deviation",
    "minimum_precision",
]


@dataclass(frozen=True)
class BelievabilityCriteria:
    """Thresholds deciding whether a run is perceptually believable.

    Energy is the primary signal (Yeh et al. [34] found it a reliable
    predictor); the same study examined gap/penetration errors, so runs
    with grossly deeper interpenetration than the reference are also
    rejected — contact failure is visually obvious even when energy
    stays bounded.
    """

    #: maximum tolerated relative energy deviation (the paper's 10 %)
    energy_tolerance: float = 0.10
    #: test penetration may exceed reference by at most this factor...
    penetration_factor: float = 3.0
    #: ...with this much absolute slack (metres) always granted
    penetration_slack: float = 0.05
    #: any body speed beyond this is a blow-up regardless of energy
    max_speed: float = 500.0


@dataclass
class EnergyTrace:
    """Per-step conserved-energy series plus blow-up flags from one run."""

    conserved: np.ndarray
    blew_up: bool
    #: worst contact penetration depth seen over the run
    max_penetration: float = 0.0

    @property
    def steps(self) -> int:
        return len(self.conserved)


def energy_trace(
    scenario: str,
    phase_precision: Optional[Mapping[str, int]] = None,
    mode: Union[str, RoundingMode] = RoundingMode.JAMMING,
    steps: Optional[int] = None,
    scale: float = 1.0,
    criteria: Optional[BelievabilityCriteria] = None,
    solver=None,
    seed: Optional[int] = None,
) -> EnergyTrace:
    """Simulate ``scenario`` and return its conserved-energy trajectory.

    Uses the census-free context (the paper's pure Table 1 error model:
    round operands, execute, round result — no architectural bypasses).
    ``seed`` threads through scenario construction (``None`` keeps the
    historical default layout).
    """
    criteria = criteria or BelievabilityCriteria()
    steps = default_steps() if steps is None else steps
    ctx = FPContext(phase_precision, mode=mode, census=False)
    world = build(scenario, ctx=ctx, scale=scale, solver=solver, seed=seed)

    blew_up = False
    for _ in range(steps):
        world.step()
        n = world.bodies.count
        state = world.bodies.pos[:n]
        speed = world.bodies.linvel[:n]
        if not np.isfinite(state).all() or not np.isfinite(speed).all():
            blew_up = True
            break
        if n and float(np.abs(speed).max()) > criteria.max_speed:
            blew_up = True
            break

    conserved = world.monitor.conserved_series()
    if not np.isfinite(conserved).all():
        blew_up = True
    # Running max: exact even if the windowed series has evicted early
    # samples (it never does at experiment step counts).
    penetration = world.penetration_series.maximum(default=0.0)
    return EnergyTrace(conserved=conserved, blew_up=blew_up,
                       max_penetration=penetration)


def deviation(reference: EnergyTrace, test: EnergyTrace) -> float:
    """Maximum relative deviation of the test energy from the reference.

    Normalized by the reference trajectory's *dynamic range* (with a
    small floor): total energy carries an arbitrary potential-energy
    offset from the height datum, so normalizing by its absolute
    magnitude would let low-amplitude scenarios (a pendulum barely
    exchanging a few joules) absorb errors larger than all the motion in
    the scene.  The dynamic range is the energy actually in play.
    """
    if test.blew_up:
        return float("inf")
    n = min(reference.steps, test.steps)
    if n == 0 or test.steps < reference.steps:
        return float("inf")
    ref = reference.conserved[:n]
    tst = test.conserved[:n]
    scale = max(
        float(np.ptp(ref)),
        0.02 * float(np.abs(ref).max()),
        1.0,
    )
    return float(np.abs(tst - ref).max()) / scale


def is_believable(
    reference: EnergyTrace,
    test: EnergyTrace,
    criteria: Optional[BelievabilityCriteria] = None,
) -> bool:
    """Whether ``test`` stays within the believability envelope."""
    criteria = criteria or BelievabilityCriteria()
    if deviation(reference, test) > criteria.energy_tolerance:
        return False
    allowed = (criteria.penetration_factor * reference.max_penetration
               + criteria.penetration_slack)
    return test.max_penetration <= allowed


@dataclass(frozen=True)
class PrecisionQuery:
    """One minimum-precision search, as a surrogate model sees it.

    :func:`minimum_precision` builds this from its own arguments and
    hands it to ``surrogate.predict_query``; anything answering with an
    integer mantissa width (a trained
    :class:`~repro.tuning.surrogate.SurrogateModel`, a lookup table, a
    test stub) can warm-start the search.
    """

    scenario: str
    phases: Tuple[str, ...]
    mode: str
    steps: int
    scale: float
    seed: Optional[int]
    #: sorted ``fixed_precision`` items (the combined-tuning pins)
    fixed: Tuple[Tuple[str, int], ...] = ()
    lowest: int = 1


# Reference (full-precision) traces are expensive; cache per config.
# The criteria belong in the key: ``max_speed`` changes blow-up
# detection *inside* energy_trace, so two criteria can classify the
# same configuration's reference run differently.
_REFERENCE_CACHE: Dict[Tuple, EnergyTrace] = {}


def _reference(scenario: str, steps: int, scale: float,
               criteria: BelievabilityCriteria, solver=None,
               seed: Optional[int] = None) -> EnergyTrace:
    scheme = getattr(solver, "scheme", None)
    key = (scenario, steps, scale, scheme, seed, criteria)
    trace = _REFERENCE_CACHE.get(key)
    if trace is None:
        trace = energy_trace(scenario, None, RoundingMode.JAMMING, steps,
                             scale, criteria, solver=solver, seed=seed)
        _REFERENCE_CACHE[key] = trace
    return trace


def _trace_worker(scenario, precision, mode, steps, scale, criteria,
                  solver, seed) -> SweepOutcome:
    """Module-level sweep job: one believability probe's energy trace."""
    trace = energy_trace(scenario, precision, mode, steps, scale,
                         criteria, solver=solver, seed=seed)
    return SweepOutcome(trace, ops=trace.steps)


def _speculative_candidates(lo: int, hi: int, depth: int):
    """Midpoints of the next ``depth`` levels of the binary-search tree.

    Evaluating them together lets a parallel search take ``depth``
    serial-search decisions per round while probing exactly the widths
    the serial search could visit — so the answer is identical even if
    the believability predicate is not perfectly monotone.
    """
    intervals = [(lo, hi)]
    candidates = []
    for _ in range(depth):
        nxt = []
        for left, right in intervals:
            if right - left <= 1:
                continue
            mid = (left + right) // 2
            candidates.append(mid)
            nxt.append((left, mid))
            nxt.append((mid, right))
        intervals = nxt
    return candidates


#: Half-width of the warm-start verification bracket around a
#: surrogate prediction: the search first checks ``[pred-2, pred+2]``.
WARM_BRACKET = 2


def minimum_precision(
    scenario: str,
    phases: Iterable[str] = ("lcp",),
    mode: Union[str, RoundingMode] = RoundingMode.JAMMING,
    steps: Optional[int] = None,
    scale: float = 1.0,
    criteria: Optional[BelievabilityCriteria] = None,
    fixed_precision: Optional[Mapping[str, int]] = None,
    lowest: int = 1,
    solver=None,
    seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
    surrogate=None,
    stats: Optional[Dict] = None,
) -> int:
    """Minimum mantissa bits for believable results (one Table 1 cell).

    Binary-searches the precision applied to ``phases`` (all set to the
    same width, matching the paper's per-phase exploration); other phases
    may be pinned via ``fixed_precision`` for the combined-tuning
    (parenthesised) Table 1 numbers.  Returns ``FULL_PRECISION`` when even
    23 - 1 bits break believability.

    With a multi-worker ``runner`` the search speculatively probes
    several candidate widths concurrently (the next levels of the
    binary-search tree), returning precisions identical to the serial
    path.

    ``surrogate`` (anything with ``predict_query(PrecisionQuery) -> int``,
    typically a trained :class:`~repro.tuning.surrogate.SurrogateModel`)
    warm-starts the search: the prediction's ``±WARM_BRACKET``
    neighbourhood is verified first, and the bisection runs inside it
    only when the bracket provably contains the believability flip (low
    edge unbelievable, high edge believable).  A wrong prediction falls
    back to the full ``[lowest, FULL_PRECISION]`` bracket, reusing every
    probe already evaluated — the believability of a width is
    deterministic, so the returned bits are identical to the cold
    search either way.

    ``stats``, when given a dict, is filled with ``bits`` (the result),
    ``probes`` (distinct candidate widths simulated), ``warm``
    (``None`` / ``"hit"`` / ``"fallback"``), and ``predicted``.
    """
    criteria = criteria or BelievabilityCriteria()
    steps = default_steps() if steps is None else steps
    mode = RoundingMode.parse(mode)
    phases = tuple(phases)
    reference = _reference(scenario, steps, scale, criteria, solver, seed)

    known: Dict[int, bool] = {}

    def _precision_map(bits: int) -> Dict[str, int]:
        precision = dict(fixed_precision or {})
        for phase in phases:
            precision[phase] = bits
        return precision

    def evaluate(batch) -> None:
        batch = sorted(set(int(b) for b in batch) - set(known))
        if not batch:
            return
        jobs = [SweepJob(
            key=(scenario, phases, mode.value, bits),
            fn=_trace_worker,
            args=(scenario, _precision_map(bits), mode, steps, scale,
                  criteria, solver, seed)) for bits in batch]
        if runner is not None and len(jobs) > 1:
            traces = [r.value for r in runner.run(jobs)]
        else:
            traces = [job.fn(*job.args).value for job in jobs]
        for bits, trace in zip(batch, traces):
            known[bits] = is_believable(reference, trace, criteria)

    workers = runner.resolved_workers() if runner is not None else 1
    depth = 1
    while (1 << (depth + 1)) - 1 <= workers:
        depth += 1

    predicted = None
    warm = None

    def _done(bits: int) -> int:
        if stats is not None:
            stats.update(bits=bits, probes=len(known), warm=warm,
                         predicted=predicted)
        return bits

    lo, hi = lowest, FULL_PRECISION  # hi is always believable (identity)

    if surrogate is not None:
        query = PrecisionQuery(
            scenario=scenario, phases=phases, mode=mode.value,
            steps=steps, scale=scale, seed=seed,
            fixed=tuple(sorted((fixed_precision or {}).items())),
            lowest=lowest)
        predicted = min(max(int(surrogate.predict_query(query)), lowest),
                        FULL_PRECISION)
        blo = max(lowest, predicted - WARM_BRACKET)
        bhi = min(FULL_PRECISION, predicted + WARM_BRACKET)
        evaluate([blo])
        if known[blo]:
            if blo == lowest:
                # Same single probe (and answer) the cold search makes.
                warm = "hit"
                return _done(lowest)
            # The minimum lies below the predicted bracket.
            warm = "fallback"
        else:
            # The cold search never probes FULL_PRECISION (identity run
            # is believable by construction); mirror that here.
            believable_hi = (bhi >= FULL_PRECISION)
            if not believable_hi:
                evaluate([bhi])
                believable_hi = known[bhi]
            if believable_hi:
                # Bracket contains the flip: bisect inside it.
                warm = "hit"
                lo, hi = blo, bhi
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    evaluate([mid])
                    if known[mid]:
                        hi = mid
                    else:
                        lo = mid
                return _done(hi)
            # The minimum lies above the predicted bracket.
            warm = "fallback"
        lo, hi = lowest, FULL_PRECISION

    evaluate([lo] + (_speculative_candidates(lo, hi, depth)
                     if workers > 1 else []))
    if known[lo]:
        return _done(lo)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid not in known:
            evaluate(_speculative_candidates(lo, hi, depth)
                     if workers > 1 else [mid])
        if known[mid]:
            hi = mid
        else:
            lo = mid
    return _done(hi)
