"""Dynamic precision adaptation (paper Section 4.2).

Hardware/software co-design, modelled end to end:

* At development time the programmer profiles the application and stores
  the minimum believable precision per phase in a *control register*
  (:attr:`PrecisionController.register`).
* At run time the application monitors its own simulation quality via the
  per-step energy difference.  On a violation of the threshold (10 %),
  the significand precision throttles **up to full** to prevent blow-up;
  once the simulation stabilizes, precision is reduced by one bit per
  simulation step until it reaches the register minimum.
* Fail-safe: if the simulation blows up without warning, the previous
  step is re-executed at full precision ("functional correctness is
  maintained by re-executing the previous simulation step at full
  precision").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..fp.context import FPContext
from ..fp.rounding import FULL_PRECISION
from ..robustness.checkpoint import capture_world, restore_world

__all__ = ["PrecisionController", "ControlledSimulation"]


@dataclass
class _StepLog:
    step: int
    precisions: Dict[str, int]
    violation: bool
    reexecuted: bool


class PrecisionController:
    """Adapts per-phase FP precision from the energy-difference signal."""

    def __init__(
        self,
        ctx: FPContext,
        register: Mapping[str, int],
        threshold: float = 0.10,
        blowup_threshold: float = 1.0,
        surrogate=None,
    ) -> None:
        """
        Parameters
        ----------
        ctx:
            The context whose phase precisions this controller drives.
        register:
            The control register: minimum mantissa bits per phase, chosen
            by static profiling (e.g. Table 1 values).
        threshold:
            Relative per-step energy difference that triggers throttling
            to full precision (the paper uses 10 %).
        blowup_threshold:
            Relative difference treated as an outright blow-up, invoking
            the re-execution fail-safe.
        surrogate:
            Optional feed-forward predictions: a mapping
            ``{phase: bits}`` (e.g. from
            :meth:`~repro.tuning.surrogate.SurrogateModel.feed_forward_register`)
            or a callable ``phase -> bits``.  Predicted precisions are
            set *ahead* of any energy signal and become the stable-path
            decay target, hard-clamped to never go below the register
            floor; the violation throttle and the re-execution fail-safe
            stay in place as the safety net.
        """
        self.ctx = ctx
        self.register = dict(register)
        self.threshold = threshold
        self.blowup_threshold = blowup_threshold
        self.surrogate = surrogate
        self.targets = self._feed_forward_targets()
        self.history: List[_StepLog] = []
        self.violations = 0
        self.reexecutions = 0
        #: optional :class:`~repro.obs.Tracer`; every :meth:`observe`
        #: call streams the throttle/decay/hold/recover action it took.
        self.observer = None
        # Start at the steady-state setting: the register minimum, or
        # the (floor-clamped) surrogate prediction when one is supplied.
        for phase, bits in self.targets.items():
            ctx.set_precision(phase, bits)

    def _feed_forward_targets(self) -> Dict[str, int]:
        """Per-phase decay targets, never below the register floor."""
        targets: Dict[str, int] = {}
        for phase, minimum in self.register.items():
            bits = minimum
            if self.surrogate is not None:
                if isinstance(self.surrogate, Mapping):
                    predicted = self.surrogate.get(phase)
                else:
                    predicted = self.surrogate(phase)
                if predicted is not None:
                    # Hard clamp: a misprediction may cost energy
                    # violations (the guard catches those) but must
                    # never push a phase below its profiled floor.
                    bits = max(minimum,
                               min(int(predicted), FULL_PRECISION))
            targets[phase] = bits
        return targets

    # ------------------------------------------------------------------
    def observe(self, relative_difference: Optional[float],
                step: int, reexecuted: bool = False) -> None:
        """Feed one post-step energy observation and retune precision.

        ``None`` means "no signal yet" (the monitor needs two samples
        before a delta exists) and is treated as stable: precision keeps
        decaying toward the register floor rather than throttling.
        """
        violation = (
            relative_difference is not None
            and relative_difference > self.threshold
        )
        action = "hold"
        if violation:
            self.violations += 1
            action = "throttle"
            for phase in self.register:
                self.ctx.set_precision(phase, FULL_PRECISION)
        else:
            # Stable: step precision back down, one bit per step,
            # toward the (surrogate-aware) target.
            for phase, minimum in self.register.items():
                current = self.ctx.precision_for(phase)
                target = self.targets.get(phase, minimum)
                if current > target:
                    self.ctx.set_precision(phase, current - 1)
                    action = "decay"
                elif current < minimum:
                    # An external write, partial register update, or a
                    # surrogate misprediction left this phase below its
                    # profiled floor; recover to the minimum instead of
                    # holding there forever.
                    self.ctx.set_precision(phase, minimum)
                    action = "recover"
        self.history.append(
            _StepLog(step, dict(self.ctx.phase_precision), violation,
                     reexecuted))
        if self.observer is not None:
            self.observer.controller_event(
                step=step, action=action, violation=violation,
                reexecuted=reexecuted,
                precisions=dict(self.ctx.phase_precision))

    def current_precision(self, phase: str) -> int:
        return self.ctx.precision_for(phase)


class ControlledSimulation:
    """Couples a world to a controller, with the re-execution fail-safe."""

    def __init__(self, world, controller: PrecisionController) -> None:
        self.world = world
        self.controller = controller

    # ------------------------------------------------------------------
    def _snapshot(self):
        """Capture world state via the shared checkpoint utility.

        Delegates to :mod:`repro.robustness.checkpoint` — the single
        source of truth for world-state capture (bodies, cloth, energy
        records, the injection ledger, and the warm-start cache).
        """
        return capture_world(self.world)

    def _restore(self, snapshot) -> None:
        restore_world(self.world, snapshot)

    # ------------------------------------------------------------------
    def _blew_up(self, diff: Optional[float]) -> bool:
        bodies = self.world.bodies
        n = bodies.count
        if n and not (
            np.isfinite(bodies.pos[:n]).all()
            and np.isfinite(bodies.linvel[:n]).all()
        ):
            return True
        return diff is not None and diff > self.controller.blowup_threshold

    def step(self) -> None:
        """One timestep with quality monitoring and the fail-safe."""
        snapshot = self._snapshot()
        self.world.step()
        diff = self.world.monitor.relative_step_difference()
        reexecuted = False

        if self._blew_up(diff):
            # Fail-safe: rewind and redo this step at full precision.
            self._restore(snapshot)
            saved = dict(self.controller.ctx.phase_precision)
            for phase in self.controller.register:
                self.controller.ctx.set_precision(phase, FULL_PRECISION)
            self.world.step()
            # Restore through set_precision so the range validation
            # applies (a raw dict update would bypass it).
            for phase, bits in saved.items():
                self.controller.ctx.set_precision(phase, bits)
            diff = self.world.monitor.relative_step_difference()
            reexecuted = True
            self.controller.reexecutions += 1

        self.controller.observe(diff, self.world.step_count - 1,
                                reexecuted)

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()
