"""Learned precision surrogate: predictive tuning from step traces.

The paper's Section 4.2 controller is purely reactive (throttle to full
precision *after* an energy violation) and the Table 1 search
brute-forces every probed width by re-simulation.  This module closes
ROADMAP item 3: a dependency-free ridge regression over polynomial
features, trained on the JSONL step traces the observability layer
already records, predicts the per-phase minimum believable precision
from scenario state.  The prediction is used two ways:

* **Sweep warm-start** — :func:`~repro.tuning.believability.minimum_precision`
  accepts ``surrogate=model`` and verifies the predicted ``±2`` bracket
  first, falling back to the full bracket on a misprediction, so the
  returned bits are identical to the cold search while evaluating fewer
  candidate widths;
* **Feed-forward control** — :meth:`SurrogateModel.feed_forward_register`
  produces per-phase predictions for
  :class:`~repro.tuning.controller.PrecisionController`'s ``surrogate=``
  parameter, setting precision ahead of the energy signal (the guard
  and the re-execution fail-safe stay as the safety net).

Physics-informed constraint: predictions are clamped to the minimum
label observed per phase during training (never below the measured
floors) and to ``[1, FULL_PRECISION]``.

The whole pipeline is numpy-only; the model artifact is a JSON file of
weights that any session can reload.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..fp.context import FPContext
from ..fp.rounding import FULL_PRECISION, RoundingMode
from ..obs import JsonlWriter, Tracer, read_events
from ..obs.features import EVENT_FEATURES, features_from_events
from ..perf.sweep import SweepJob, SweepOutcome, SweepRunner
from ..workloads import SCENARIO_NAMES, build, default_steps
from .believability import PrecisionQuery, minimum_precision

__all__ = [
    "BASE_FEATURES",
    "SurrogateModel",
    "extract_features",
    "build_dataset",
    "load_dataset",
    "train",
    "train_from_file",
    "evaluate_warm_start",
]

#: Probe width forced on the tuned phases for the reduced feature run.
DEFAULT_PROBE_BITS = 6
#: Steps per feature-probe run (two short runs per feature row).
DEFAULT_PROBE_STEPS = 12

PHASE_NAMES = ("lcp", "narrow")
MODE_NAMES = ("rn", "jam", "trunc")

#: Scenario-level features prepended to the event-stream features.
STATIC_FEATURES = (
    "bodies",
    "joints",
    "cloth_particles",
    "explosions",
    "penetration",
    "probe_penetration_ratio",
    "scale",
    "steps",
    "pinned_lcp",
    "pinned_narrow",
)

BASE_FEATURES = STATIC_FEATURES + EVENT_FEATURES

#: One-hot columns appended by the vectorizer.
_ONE_HOTS = tuple(f"phase={p}" for p in PHASE_NAMES) + \
    tuple(f"mode={m}" for m in MODE_NAMES)


# ----------------------------------------------------------------------
# Feature extraction (traced probe runs -> flat feature dict)
# ----------------------------------------------------------------------
def _probe_run(scenario: str, precision: Mapping[str, int], mode,
               steps: int, scale: float, seed: Optional[int],
               out_path) -> Dict[str, float]:
    """One short traced run; returns scenario statics, streams JSONL."""
    mode = RoundingMode.parse(mode)
    ctx = FPContext(dict(precision), mode=mode, census=True)
    world = build(scenario, ctx=ctx, scale=scale, seed=seed)
    tracer = Tracer(JsonlWriter(out_path))
    tracer.meta(scenario=scenario, steps=steps,
                precision=dict(precision), mode=mode.value, census=True)
    tracer.attach(world=world)
    blew_up = False
    try:
        for _ in range(steps):
            world.step()
            n = world.bodies.count
            if n and not (np.isfinite(world.bodies.pos[:n]).all()
                          and np.isfinite(world.bodies.linvel[:n]).all()):
                blew_up = True
                break
    except (FloatingPointError, ValueError):
        blew_up = True
    finally:
        tracer.close()
    return {
        "bodies": float(world.bodies.count),
        "joints": float(len(world.joints)),
        "cloth_particles": float(
            sum(c.particle_count for c in world.cloths)),
        "explosions": float(len(world.explosions)),
        "penetration": float(
            world.penetration_series.maximum(default=0.0)),
        "blew_up": float(blew_up),
    }


def extract_features(
    scenario: str,
    steps: Optional[int] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    mode="jam",
    fixed_precision: Optional[Mapping[str, int]] = None,
    probe_steps: int = DEFAULT_PROBE_STEPS,
    probe_bits: int = DEFAULT_PROBE_BITS,
) -> Dict[str, float]:
    """One deterministic feature row for a search configuration.

    Runs two short traced simulations (full precision, then the tuned
    phases forced to ``probe_bits``), reads the JSONL streams back, and
    merges the event features with scenario statics.  Costs
    ``2 * probe_steps`` census steps — small next to one believability
    probe at the full search step count.
    """
    steps = default_steps() if steps is None else steps
    fixed = dict(fixed_precision or {})
    probe_precision = dict(fixed)
    for phase in PHASE_NAMES:
        probe_precision.setdefault(phase, probe_bits)
    with tempfile.TemporaryDirectory(prefix="repro-surrogate-") as tmp:
        ref_path = Path(tmp) / "ref.jsonl"
        probe_path = Path(tmp) / "probe.jsonl"
        ref_statics = _probe_run(scenario, {}, mode, probe_steps, scale,
                                 seed, ref_path)
        probe_statics = _probe_run(scenario, probe_precision, mode,
                                   probe_steps, scale, seed, probe_path)
        ref_events, _ = read_events(ref_path)
        probe_events, _ = read_events(probe_path)

    features = features_from_events(ref_events, probe_events)
    features["probe_blowup"] = max(features["probe_blowup"],
                                   probe_statics["blew_up"])
    for name in ("bodies", "joints", "cloth_particles", "explosions",
                 "penetration"):
        features[name] = ref_statics[name]
    allowed = (3.0 * ref_statics["penetration"] + 0.05)
    features["probe_penetration_ratio"] = min(
        probe_statics["penetration"] / allowed, 100.0)
    features["scale"] = float(scale)
    features["steps"] = float(steps)
    features["pinned_lcp"] = float(fixed.get("lcp", FULL_PRECISION))
    features["pinned_narrow"] = float(fixed.get("narrow", FULL_PRECISION))
    return features


# ----------------------------------------------------------------------
# Dataset builder (scenario x phase x mode sweep -> JSONL rows)
# ----------------------------------------------------------------------
def _dataset_row(scenario, phase, mode, steps, scale, seed, probe_steps,
                 probe_bits, fixed_precision) -> SweepOutcome:
    """Module-level sweep job: one (features, label) training row."""
    mode = RoundingMode.parse(mode)
    features = extract_features(
        scenario, steps=steps, scale=scale, seed=seed, mode=mode,
        fixed_precision=fixed_precision, probe_steps=probe_steps,
        probe_bits=probe_bits)
    stats: Dict = {}
    label = minimum_precision(
        scenario, phases=(phase,), mode=mode, steps=steps, scale=scale,
        fixed_precision=fixed_precision, seed=seed, stats=stats)
    row = {
        "scenario": scenario,
        "phase": phase,
        "mode": mode.value,
        "steps": steps,
        "scale": scale,
        "seed": seed,
        "fixed_precision": dict(fixed_precision or {}),
        "features": features,
        "label": int(label),
        "search_probes": stats["probes"],
    }
    return SweepOutcome(row, ops=stats["probes"])


def build_dataset(
    scenarios: Optional[Sequence[str]] = None,
    phases: Iterable[str] = PHASE_NAMES,
    modes: Iterable = (RoundingMode.JAMMING,),
    steps: Optional[int] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    probe_steps: int = DEFAULT_PROBE_STEPS,
    probe_bits: int = DEFAULT_PROBE_BITS,
    include_combined: bool = False,
    runner: Optional[SweepRunner] = None,
    out_path=None,
) -> List[dict]:
    """Sweep scenarios x phases x modes into labelled feature rows.

    Each row pairs the cheap runtime features of a configuration with
    the expensive ground truth (the cold ``minimum_precision`` search).
    Jobs fan out over a :class:`~repro.perf.sweep.SweepRunner`;
    ``include_combined`` adds the combined-tuning rows (narrow-phase
    re-searched with LCP pinned at its jamming minimum, as in Table 1).
    ``out_path`` appends the rows as JSONL (one self-contained object
    per line, header first).
    """
    scenarios = list(scenarios or SCENARIO_NAMES)
    phases = tuple(phases)
    modes = tuple(RoundingMode.parse(m) for m in modes)
    steps = default_steps() if steps is None else steps
    runner = runner or SweepRunner(1)

    grid = [SweepJob(
        key=(scenario, phase, mode.value),
        fn=_dataset_row,
        args=(scenario, phase, mode, steps, scale, seed, probe_steps,
              probe_bits, None),
    ) for scenario in scenarios for phase in phases for mode in modes]
    rows = [r.value for r in runner.run(grid)]

    if include_combined and "lcp" in phases and "narrow" in phases:
        # Pin LCP at its independent jamming minimum, re-search narrow
        # (the parenthesised Table 1 numbers) — a second stage because
        # each pin depends on a first-stage label.
        lcp_bits = {
            row["scenario"]: row["label"] for row in rows
            if row["phase"] == "lcp" and row["mode"] == "jam"}
        combined = [SweepJob(
            key=(scenario, "narrow", "jam", "combined"),
            fn=_dataset_row,
            args=(scenario, "narrow", RoundingMode.JAMMING, steps, scale,
                  seed, probe_steps, probe_bits,
                  {"lcp": lcp_bits[scenario]}),
        ) for scenario in scenarios if scenario in lcp_bits]
        rows.extend(r.value for r in runner.run(combined))

    if out_path is not None:
        with JsonlWriter(out_path) as writer:
            writer.write({
                "dataset": "repro.surrogate.v1",
                "rows": len(rows),
                "scenarios": scenarios,
                "phases": list(phases),
                "modes": [m.value for m in modes],
                "steps": steps,
                "scale": scale,
                "seed": seed,
                "probe_steps": probe_steps,
                "probe_bits": probe_bits,
            })
            for row in rows:
                writer.write(row)
    return rows


def load_dataset(path) -> List[dict]:
    """Read the labelled rows back from a dataset JSONL file."""
    events, _skipped = read_events(path)
    return [e for e in events if "label" in e and "features" in e]


# ----------------------------------------------------------------------
# Model: ridge regression over polynomial features
# ----------------------------------------------------------------------
def _raw_vector(feature_names: Sequence[str], features: Mapping[str, float],
                phase: str, mode: str) -> np.ndarray:
    values = dict(features)
    for name in PHASE_NAMES:
        values[f"phase={name}"] = 1.0 if phase == name else 0.0
    for name in MODE_NAMES:
        values[f"mode={name}"] = 1.0 if mode == name else 0.0
    vec = np.array([float(values.get(name, 0.0))
                    for name in feature_names], dtype=np.float64)
    return np.nan_to_num(vec, nan=0.0, posinf=100.0, neginf=-100.0)


def _expand(z: np.ndarray, degree: int) -> np.ndarray:
    """Polynomial feature map: bias + linear (+ quadratic cross terms)."""
    terms = [np.ones(1), z]
    if degree >= 2:
        outer = np.outer(z, z)
        terms.append(outer[np.triu_indices(len(z))])
    return np.concatenate(terms)


@dataclass
class SurrogateModel:
    """Serializable precision predictor (JSON weights artifact).

    Prediction pipeline: raw feature vector (ordered by
    :attr:`feature_names`, one-hots included) -> z-score with the
    training ``mean``/``std`` -> polynomial expansion of ``degree`` ->
    dot with ``weights`` -> round -> clamp to the per-phase training
    floor and ``[1, FULL_PRECISION]``.
    """

    feature_names: List[str]
    mean: np.ndarray
    std: np.ndarray
    weights: np.ndarray
    degree: int = 2
    lam: float = 1e-3
    #: per-phase minimum label seen in training — the physics-informed
    #: floor predictions never go below
    floors: Dict[str, int] = field(default_factory=dict)
    probe_steps: int = DEFAULT_PROBE_STEPS
    probe_bits: int = DEFAULT_PROBE_BITS
    meta: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def predict_value(self, features: Mapping[str, float], phase: str,
                      mode: str = "jam") -> float:
        """Raw (unclamped, unrounded) regression output."""
        x = _raw_vector(self.feature_names, features, phase, mode)
        z = (x - self.mean) / self.std
        return float(_expand(z, self.degree) @ self.weights)

    def predict_bits(self, features: Mapping[str, float], phase: str,
                     mode: str = "jam") -> int:
        """Predicted minimum believable mantissa bits, floor-clamped."""
        bits = int(round(self.predict_value(features, phase, mode)))
        floor = max(1, int(self.floors.get(phase, 1)))
        return max(floor, min(bits, FULL_PRECISION))

    def features_for(self, query: PrecisionQuery) -> Dict[str, float]:
        return extract_features(
            query.scenario, steps=query.steps, scale=query.scale,
            seed=query.seed, mode=query.mode,
            fixed_precision=dict(query.fixed),
            probe_steps=self.probe_steps, probe_bits=self.probe_bits)

    def predict_query(self, query: PrecisionQuery) -> int:
        """The :func:`minimum_precision` warm-start entry point."""
        features = self.features_for(query)
        return self.predict_bits(features, query.phases[0], query.mode)

    def feed_forward_register(
        self,
        scenario: str,
        register: Mapping[str, int],
        mode="jam",
        steps: Optional[int] = None,
        scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Per-phase predictions for ``PrecisionController(surrogate=)``.

        One feature extraction serves every phase in the register; each
        prediction is clamped to never go below that phase's register
        floor.
        """
        mode = RoundingMode.parse(mode).value
        features = extract_features(
            scenario, steps=steps, scale=scale, seed=seed, mode=mode,
            probe_steps=self.probe_steps, probe_bits=self.probe_bits)
        return {
            phase: max(int(minimum),
                       self.predict_bits(features, phase, mode))
            for phase, minimum in register.items()
        }

    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": "repro.surrogate.v1",
            "feature_names": list(self.feature_names),
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
            "weights": self.weights.tolist(),
            "degree": self.degree,
            "lam": self.lam,
            "floors": {k: int(v) for k, v in self.floors.items()},
            "probe_steps": self.probe_steps,
            "probe_bits": self.probe_bits,
            "meta": self.meta,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path) -> "SurrogateModel":
        data = json.loads(Path(path).read_text())
        if data.get("format") != "repro.surrogate.v1":
            raise ValueError(
                f"not a surrogate model artifact: {path}")
        return cls(
            feature_names=list(data["feature_names"]),
            mean=np.asarray(data["mean"], dtype=np.float64),
            std=np.asarray(data["std"], dtype=np.float64),
            weights=np.asarray(data["weights"], dtype=np.float64),
            degree=int(data["degree"]),
            lam=float(data["lam"]),
            floors={k: int(v) for k, v in data["floors"].items()},
            probe_steps=int(data["probe_steps"]),
            probe_bits=int(data["probe_bits"]),
            meta=dict(data.get("meta", {})),
        )


def train(
    rows: Sequence[dict],
    degree: int = 2,
    lam: float = 1e-3,
    probe_steps: Optional[int] = None,
    probe_bits: Optional[int] = None,
) -> SurrogateModel:
    """Fit the ridge/polynomial surrogate on labelled dataset rows.

    ``lam`` is the ridge penalty (small values memorize the training
    grid, which is the intended regime: the model's job is to point the
    verified search at the right bracket, and the fallback makes a bad
    extrapolation cost probes, not correctness).
    """
    if not rows:
        raise ValueError("cannot train on an empty dataset")
    feature_names = list(BASE_FEATURES) + list(_ONE_HOTS)
    X = np.stack([
        _raw_vector(feature_names, row["features"], row["phase"],
                    row["mode"]) for row in rows])
    y = np.array([float(row["label"]) for row in rows])
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std < 1e-9] = 1.0
    Z = (X - mean) / std
    Phi = np.stack([_expand(z, degree) for z in Z])
    n_terms = Phi.shape[1]
    reg = lam * np.eye(n_terms)
    reg[0, 0] = 0.0  # never shrink the bias
    weights = np.linalg.solve(Phi.T @ Phi + reg, Phi.T @ y)

    floors: Dict[str, int] = {}
    for row in rows:
        phase = row["phase"]
        floors[phase] = min(floors.get(phase, FULL_PRECISION),
                            int(row["label"]))
    if probe_steps is None:
        probe_steps = DEFAULT_PROBE_STEPS
    if probe_bits is None:
        probe_bits = DEFAULT_PROBE_BITS
    residual = float(np.sqrt(np.mean((Phi @ weights - y) ** 2)))
    return SurrogateModel(
        feature_names=feature_names,
        mean=mean,
        std=std,
        weights=weights,
        degree=degree,
        lam=lam,
        floors=floors,
        probe_steps=probe_steps,
        probe_bits=probe_bits,
        meta={
            "rows": len(rows),
            "scenarios": sorted({row["scenario"] for row in rows}),
            "train_rmse": round(residual, 4),
            "trained_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
    )


def train_from_file(path, degree: int = 2, lam: float = 1e-3,
                    probe_steps: Optional[int] = None,
                    probe_bits: Optional[int] = None) -> SurrogateModel:
    """Load a dataset JSONL and train, inheriting its probe settings."""
    events, _ = read_events(path)
    header = next((e for e in events
                   if e.get("dataset") == "repro.surrogate.v1"), None)
    rows = [e for e in events if "label" in e and "features" in e]
    if header is not None:
        if probe_steps is None:
            probe_steps = int(header.get("probe_steps",
                                         DEFAULT_PROBE_STEPS))
        if probe_bits is None:
            probe_bits = int(header.get("probe_bits", DEFAULT_PROBE_BITS))
    return train(rows, degree=degree, lam=lam, probe_steps=probe_steps,
                 probe_bits=probe_bits)


# ----------------------------------------------------------------------
# Warm-start evaluation harness (cold vs warm, probe accounting)
# ----------------------------------------------------------------------
def evaluate_warm_start(
    model: SurrogateModel,
    scenarios: Optional[Sequence[str]] = None,
    phases: Iterable[str] = ("lcp",),
    mode="jam",
    steps: Optional[int] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict:
    """Run every search cold then warm; report identity + probe counts.

    The contract being checked is the PR's acceptance gate: identical
    returned bits on every configuration, and strictly fewer candidate
    widths evaluated in aggregate.
    """
    scenarios = list(scenarios or SCENARIO_NAMES)
    mode = RoundingMode.parse(mode)
    rows = []
    for scenario in scenarios:
        for phase in phases:
            cold_stats: Dict = {}
            warm_stats: Dict = {}
            cold = minimum_precision(
                scenario, phases=(phase,), mode=mode, steps=steps,
                scale=scale, seed=seed, runner=runner, stats=cold_stats)
            warm = minimum_precision(
                scenario, phases=(phase,), mode=mode, steps=steps,
                scale=scale, seed=seed, runner=runner, surrogate=model,
                stats=warm_stats)
            rows.append({
                "scenario": scenario,
                "phase": phase,
                "mode": mode.value,
                "cold_bits": cold,
                "warm_bits": warm,
                "identical": cold == warm,
                "cold_probes": cold_stats["probes"],
                "warm_probes": warm_stats["probes"],
                "predicted": warm_stats["predicted"],
                "warm_path": warm_stats["warm"],
            })
    cold_total = sum(r["cold_probes"] for r in rows)
    warm_total = sum(r["warm_probes"] for r in rows)
    return {
        "rows": rows,
        "identical": all(r["identical"] for r in rows),
        "cold_probes": cold_total,
        "warm_probes": warm_total,
        "fewer_probes": warm_total < cold_total,
        "probe_savings_pct": (
            round(100.0 * (1.0 - warm_total / cold_total), 1)
            if cold_total else 0.0),
    }
