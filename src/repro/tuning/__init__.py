"""Dynamic precision tuning: believability search and runtime control."""

from .believability import (
    BelievabilityCriteria,
    EnergyTrace,
    deviation,
    energy_trace,
    is_believable,
    minimum_precision,
)
from .controller import ControlledSimulation, PrecisionController

__all__ = [
    "BelievabilityCriteria",
    "EnergyTrace",
    "deviation",
    "energy_trace",
    "is_believable",
    "minimum_precision",
    "ControlledSimulation",
    "PrecisionController",
]
