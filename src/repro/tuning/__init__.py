"""Dynamic precision tuning: believability search and runtime control."""

from .believability import (
    BelievabilityCriteria,
    EnergyTrace,
    PrecisionQuery,
    deviation,
    energy_trace,
    is_believable,
    minimum_precision,
)
from .controller import ControlledSimulation, PrecisionController
from .surrogate import (
    SurrogateModel,
    build_dataset,
    evaluate_warm_start,
    extract_features,
    load_dataset,
    train,
    train_from_file,
)

__all__ = [
    "BelievabilityCriteria",
    "EnergyTrace",
    "PrecisionQuery",
    "deviation",
    "energy_trace",
    "is_believable",
    "minimum_precision",
    "ControlledSimulation",
    "PrecisionController",
    "SurrogateModel",
    "build_dataset",
    "evaluate_warm_start",
    "extract_features",
    "load_dataset",
    "train",
    "train_from_file",
]
