"""Mantissa precision reduction with the paper's three rounding modes.

Section 4.1.1 evaluates three ways of removing low-order mantissa bits:

* **round-to-nearest** — IEEE style, best accuracy, but costly to apply to
  both operands before execution;
* **jamming** (Burks/Goldstine/von Neumann; Fang et al.) — the kept LSB is
  ORed with the three guard bits immediately below it; zero-mean error with
  trivially cheap logic;
* **truncation** (round-to-zero) — cheapest, but negatively biased, which the
  paper shows inflates the precision requirement.

"Denormal handling remains unchanged": denormals, infinities and NaNs pass
through unmodified.  Reduction keeps ``precision`` mantissa bits,
``0 <= precision <= 23``; 23 keeps the full binary32 significand.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from .bits import (
    EXPONENT_MASK,
    MANTISSA_BITS,
    array_to_bits,
    bits_to_array,
    bits_to_float,
    float_to_bits,
)

__all__ = [
    "RoundingMode",
    "FULL_PRECISION",
    "DEFAULT_GUARD_BITS",
    "reduce_bits",
    "reduce_scalar",
    "reduce_array",
    "reduce_array_fast",
    "fused_binop",
    "fused_axpy",
    "ReducedKernel",
]

#: Mantissa width at which reduction is the identity.
FULL_PRECISION = MANTISSA_BITS


class RoundingMode(enum.Enum):
    """Rounding mode used when dropping mantissa bits."""

    NEAREST = "rn"
    JAMMING = "jam"
    TRUNCATION = "trunc"

    @classmethod
    def parse(cls, value: Union[str, "RoundingMode"]) -> "RoundingMode":
        """Accept a mode instance or one of its string aliases."""
        if isinstance(value, cls):
            return value
        aliases = {
            "rn": cls.NEAREST,
            "nearest": cls.NEAREST,
            "round-to-nearest": cls.NEAREST,
            "jam": cls.JAMMING,
            "jamming": cls.JAMMING,
            "trunc": cls.TRUNCATION,
            "truncation": cls.TRUNCATION,
            "round-to-zero": cls.TRUNCATION,
        }
        try:
            return aliases[str(value).lower()]
        except KeyError:
            raise ValueError(f"unknown rounding mode: {value!r}") from None


def _check_precision(precision: int) -> None:
    if not 0 <= precision <= MANTISSA_BITS:
        raise ValueError(
            f"precision must be in [0, {MANTISSA_BITS}], got {precision}"
        )


#: The paper's jamming inspects the three guard bits below the kept LSB.
DEFAULT_GUARD_BITS = 3


def reduce_bits(bits: int, precision: int, mode: RoundingMode,
                guard_bits: int = DEFAULT_GUARD_BITS) -> int:
    """Reduce the binary32 encoding ``bits`` to ``precision`` mantissa bits.

    Non-finite values and denormals are returned unchanged.  Round-to-nearest
    uses ties-to-even and may carry into the exponent (saturating to
    infinity, as hardware would).  ``guard_bits`` widens/narrows the OR
    window jamming inspects (an ablation knob; the paper uses 3).
    """
    _check_precision(precision)
    if precision == MANTISSA_BITS:
        return bits
    exp_field = bits & EXPONENT_MASK
    if exp_field == EXPONENT_MASK or exp_field == 0:
        return bits  # inf / NaN / zero / denormal untouched
    drop = MANTISSA_BITS - precision
    drop_mask = (1 << drop) - 1
    if mode is RoundingMode.TRUNCATION:
        return bits & ~drop_mask
    if mode is RoundingMode.NEAREST:
        half_minus_1 = (1 << (drop - 1)) - 1
        lsb = (bits >> drop) & 1
        return (bits + lsb + half_minus_1) & ~drop_mask & 0xFFFFFFFF
    if mode is RoundingMode.JAMMING:
        if drop >= MANTISSA_BITS:
            # No mantissa LSB remains to jam into; degrade to truncation.
            return bits & ~drop_mask
        guard_width = min(guard_bits, drop)
        kept = bits & ~drop_mask
        if guard_width <= 0:
            return kept
        guards = (bits >> (drop - guard_width)) & ((1 << guard_width) - 1)
        return kept | (1 << drop) if guards else kept
    raise ValueError(f"unknown rounding mode: {mode!r}")


def reduce_scalar(value: float, precision: int, mode: RoundingMode,
                  guard_bits: int = DEFAULT_GUARD_BITS) -> float:
    """Reduce a Python float (via binary32) to ``precision`` mantissa bits."""
    return bits_to_float(
        reduce_bits(float_to_bits(value), precision, mode, guard_bits))


def reduce_array(
    values: np.ndarray, precision: int, mode: RoundingMode,
    guard_bits: int = DEFAULT_GUARD_BITS,
) -> np.ndarray:
    """Vectorized :func:`reduce_scalar` over a float array.

    Returns a new ``float32`` array of the same shape.
    """
    _check_precision(precision)
    arr = np.asarray(values, dtype=np.float32)
    if precision == MANTISSA_BITS:
        return arr
    bits = array_to_bits(arr).copy()
    exp_field = bits & np.uint32(EXPONENT_MASK)
    normal = (exp_field != np.uint32(EXPONENT_MASK)) & (exp_field != 0)

    keep_mask, lsb_shift, lsb_bit, guard_shift, guard_mask, half_minus_1 = \
        _fast_params(precision, mode, guard_bits)[:6]
    if mode is RoundingMode.TRUNCATION:
        rounded = bits & keep_mask
    elif mode is RoundingMode.NEAREST:
        lsb = (bits >> lsb_shift) & np.uint32(1)
        rounded = (bits + lsb + half_minus_1) & keep_mask
    elif mode is RoundingMode.JAMMING:
        if not lsb_bit:
            rounded = bits & keep_mask  # nothing to jam; truncate
        else:
            guards = (bits >> guard_shift) & guard_mask
            rounded = np.where(guards != 0, (bits & keep_mask) | lsb_bit,
                               bits & keep_mask)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown rounding mode: {mode!r}")

    out = np.where(normal, rounded, bits)
    result = bits_to_array(out.astype(np.uint32))
    return result.reshape(arr.shape)


# ----------------------------------------------------------------------
# Fast path used by the census-free FPContext mode.
# ----------------------------------------------------------------------
_FAST_PARAMS = {}


def _fast_params(precision: int, mode: RoundingMode, guard_bits: int):
    key = (precision, mode, guard_bits)
    params = _FAST_PARAMS.get(key)
    if params is None:
        drop = MANTISSA_BITS - precision
        keep_mask = np.uint32(~((1 << drop) - 1) & 0xFFFFFFFF)
        lsb_shift = np.uint32(drop)
        lsb_bit = np.uint32(1 << drop) if drop < MANTISSA_BITS else np.uint32(
            0)
        guard_width = max(min(guard_bits, drop), 0)
        if guard_width == 0:
            lsb_bit = np.uint32(0)  # nothing to jam; behaves as truncation
        guard_shift = np.uint32(drop - guard_width)
        guard_mask = np.uint32((1 << guard_width) - 1)
        half_minus_1 = np.uint32((1 << (drop - 1)) - 1) if drop else np.uint32(
            0)
        # Derived constants for the fused in-place kernel: the guard test
        # without the shift, and the carry trick turning "any guard bit
        # set" into the kept-LSB jam bit in pure integer arithmetic.
        guard_test = np.uint32(int(guard_mask) << int(guard_shift))
        jam_carry = np.uint32(int(lsb_bit) - 1) if lsb_bit else np.uint32(0)
        params = (keep_mask, lsb_shift, lsb_bit, guard_shift, guard_mask,
                  half_minus_1, guard_test, jam_carry)
        _FAST_PARAMS[key] = params
    return params


def reduce_array_fast(
    values: np.ndarray, precision: int, mode: RoundingMode,
    guard_bits: int = DEFAULT_GUARD_BITS,
) -> np.ndarray:
    """Mantissa reduction without special-value guarding.

    Identical to :func:`reduce_array` for normal numbers and for zeros /
    infinities; differs only for denormals (which get rounded like tiny
    normals instead of passing through) and exotic NaN payloads.  Physics
    state never legitimately contains those, and blow-up detection is
    value-based, so the census-free context mode uses this ~2x cheaper
    kernel.
    """
    arr = np.asarray(values, dtype=np.float32)
    if precision == MANTISSA_BITS:
        return arr
    bits = np.ascontiguousarray(arr).view(np.uint32)
    keep_mask, lsb_shift, lsb_bit, guard_shift, guard_mask, half_minus_1 = \
        _fast_params(precision, mode, guard_bits)[:6]
    if mode is RoundingMode.TRUNCATION:
        out = bits & keep_mask
    elif mode is RoundingMode.NEAREST:
        lsb = (bits >> lsb_shift) & np.uint32(1)
        out = (bits + lsb + half_minus_1) & keep_mask
    else:  # JAMMING
        kept = bits & keep_mask
        if lsb_bit:
            guards = (bits >> guard_shift) & guard_mask
            out = kept | (lsb_bit * (guards != 0))
        else:
            out = kept
    return out.view(np.float32).reshape(arr.shape)


# ----------------------------------------------------------------------
# Fused round-a / round-b / op / round-result kernels.
#
# ``FPContext._fast_binop`` used to make three ``reduce_array_fast``
# calls per operation; on the census-free step loop that per-call Python
# dispatch (asarray / param lookup / view / reshape, plus 4-6 uint32
# temporaries each) dominated the wall clock.  The fused kernels below
# make one parameter lookup and one ``view(np.uint32)`` round-trip per
# array and round in place with wrapping uint32 arithmetic, producing
# bit-identical results.
# ----------------------------------------------------------------------
def _reduce_bits_inplace(bits: np.ndarray, mode: RoundingMode,
                         params) -> None:
    """Mantissa-reduce a uint32 bit array in place (no special-value
    guard, like :func:`reduce_array_fast`)."""
    keep_mask = params[0]
    if mode is RoundingMode.TRUNCATION:
        np.bitwise_and(bits, keep_mask, out=bits)
    elif mode is RoundingMode.NEAREST:
        half_minus_1 = params[5]
        tmp = np.right_shift(bits, params[1])
        np.bitwise_and(tmp, np.uint32(1), out=tmp)
        np.add(tmp, half_minus_1, out=tmp)
        np.add(bits, tmp, out=bits)
        np.bitwise_and(bits, keep_mask, out=bits)
    else:  # JAMMING
        lsb_bit = params[2]
        if lsb_bit:
            # (guards + (lsb_bit - 1)) & lsb_bit == lsb_bit iff any guard
            # bit is set: the guard field is strictly below lsb_bit, so
            # the add carries into the lsb position exactly when nonzero.
            guards = np.bitwise_and(bits, params[6])
            np.add(guards, params[7], out=guards)
            np.bitwise_and(guards, lsb_bit, out=guards)
            np.bitwise_and(bits, keep_mask, out=bits)
            np.bitwise_or(bits, guards, out=bits)
        else:
            np.bitwise_and(bits, keep_mask, out=bits)


def _reduced_copy(values, mode: RoundingMode, params) -> np.ndarray:
    """Contiguous float32 copy of ``values``, mantissa-reduced in place."""
    arr = np.array(values, dtype=np.float32, order="C")
    # reshape(-1) is a view on these fresh contiguous arrays and keeps
    # 0-d inputs working (ops on 0-d arrays return scalars, not arrays).
    _reduce_bits_inplace(arr.reshape(-1).view(np.uint32), mode, params)
    return arr


class ReducedKernel:
    """Reduced-domain op helper for census-free whole-array passes.

    All three rounding modes are idempotent (``round(round(x)) ==
    round(x)``), so a pipeline whose arrays are *already* mantissa-reduced
    can skip the per-operand re-reduction that :func:`fused_binop` performs
    and round only each new result — bit-identical output at a fraction of
    the ufunc dispatch.  Callers are responsible for the invariant: every
    operand passed to :meth:`binop` / :meth:`binop_at` must have come from
    :meth:`enter` or from a previous kernel result.

    At full precision every method degenerates to the plain ufunc, which
    matches the census-free :class:`~repro.fp.FPContext` exactly.
    """

    __slots__ = ("precision", "mode", "guard_bits", "full", "_params")

    def __init__(self, precision: int, mode: RoundingMode,
                 guard_bits: int = DEFAULT_GUARD_BITS) -> None:
        _check_precision(precision)
        self.precision = precision
        self.mode = RoundingMode.parse(mode)
        self.guard_bits = guard_bits
        self.full = precision == MANTISSA_BITS
        self._params = None if self.full else _fast_params(
            precision, self.mode, guard_bits)

    def reduce_(self, arr: np.ndarray) -> np.ndarray:
        """Mantissa-reduce a contiguous float32 array in place."""
        if not self.full:
            _reduce_bits_inplace(arr.reshape(-1).view(np.uint32),
                                 self.mode, self._params)
        return arr

    def enter(self, values) -> np.ndarray:
        """Reduced, contiguous float32 copy of ``values``."""
        arr = np.array(values, dtype=np.float32, order="C")
        if not self.full:
            _reduce_bits_inplace(arr.reshape(-1).view(np.uint32),
                                 self.mode, self._params)
        return arr

    def binop(self, ufunc, a, b) -> np.ndarray:
        """``round(a ufunc b)`` for already-reduced operands."""
        return self.reduce_(np.ascontiguousarray(ufunc(a, b)))

    def binop_at(self, ufunc, a, b, out: np.ndarray) -> np.ndarray:
        """Like :meth:`binop` but into a preallocated contiguous buffer."""
        ufunc(a, b, out=out)
        return self.reduce_(out)


def fused_binop(
    ufunc, a, b, precision: int, mode: RoundingMode,
    guard_bits: int = DEFAULT_GUARD_BITS,
) -> np.ndarray:
    """``round(round(a) ufunc round(b))`` in one pass.

    Bit-identical to three :func:`reduce_array_fast` calls around
    ``ufunc`` (the paper's pure round-operands / execute / round-result
    error model), but with a single parameter lookup and in-place uint32
    mask arithmetic.  The inputs are never mutated.
    """
    if precision == MANTISSA_BITS:
        return ufunc(np.asarray(a, dtype=np.float32),
                     np.asarray(b, dtype=np.float32))
    params = _fast_params(precision, mode, guard_bits)
    ra = _reduced_copy(a, mode, params)
    rb = _reduced_copy(b, mode, params)
    out = ufunc(ra, rb, out=ra) if ra.shape == rb.shape else ufunc(ra, rb)
    _reduce_bits_inplace(out.reshape(-1).view(np.uint32), mode, params)
    return out


def fused_axpy(
    a, x, y, precision: int, mode: RoundingMode,
    guard_bits: int = DEFAULT_GUARD_BITS,
) -> np.ndarray:
    """``round(round(round(a)*round(x)) + round(y))`` in one pass.

    Bit-identical to ``fused_binop(np.multiply, a, x)`` followed by
    ``fused_binop(np.add, ., y)``: re-reducing the already-reduced
    product is the identity, so the intermediate rounding is applied
    exactly once here.
    """
    if precision == MANTISSA_BITS:
        t = np.multiply(np.asarray(a, dtype=np.float32),
                        np.asarray(x, dtype=np.float32))
        return np.add(t, np.asarray(y, dtype=np.float32),
                      out=t if t.shape == np.shape(y) else None)
    params = _fast_params(precision, mode, guard_bits)
    ra = _reduced_copy(a, mode, params)
    rx = _reduced_copy(x, mode, params)
    t = (np.multiply(ra, rx, out=ra) if ra.shape == rx.shape
         else np.multiply(ra, rx))
    _reduce_bits_inplace(t.reshape(-1).view(np.uint32), mode, params)
    ry = _reduced_copy(y, mode, params)
    out = np.add(t, ry, out=t) if t.shape == ry.shape else np.add(t, ry)
    _reduce_bits_inplace(out.reshape(-1).view(np.uint32), mode, params)
    return out
