"""Reduced-precision vector FP operations with trivial-operation bypass.

The paper's methodology (Section 3): "Precision reduction is modeled by
rounding both operands, executing the operation, and then rounding the
result."  Add, subtract and multiply are reduced; divide is not (Section
4.3.1), although divides are still screened for trivial cases.

Trivial elements bypass the normal path and keep **full precision** of the
surviving operand, exactly as the paper's hardware would ("Full precision
of the non-trivial operand can be used to minimize injected error").

Every operation returns the numeric result plus an :class:`OpSample`
carrying the trivialization census that the memoization tables, the
architectural model, and Table 4 consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .bits import array_to_bits
from .rounding import FULL_PRECISION, RoundingMode, reduce_array
from .trivial import (
    TrivialMasks,
    add_trivial_masks,
    div_trivial_masks,
    mul_trivial_masks,
)

__all__ = ["OpSample", "reduced_add", "reduced_sub", "reduced_mul",
           "reduced_div", "inject_bitflip"]

_SIGN = np.uint32(0x80000000)


def inject_bitflip(values: np.ndarray, lane: int, bit: int) -> None:
    """Flip one IEEE-754 bit of one lane in place (soft-error model).

    ``values`` must be a contiguous ``float32`` array.  ``bit`` indexes
    the 32-bit encoding (0 = mantissa LSB ... 22 = mantissa MSB); the
    fault injector confines flips to the mantissa window the reduced FPU
    keeps, modelling a particle strike in the area-efficient datapath.
    """
    flat = values.reshape(-1)
    word = flat[lane:lane + 1].view(np.uint32)
    word ^= np.uint32(1) << np.uint32(bit)


@dataclass
class OpSample:
    """Census of one vector FP operation.

    ``nontrivial_operands`` is only populated when the caller requests it
    (memoization runs): a pair of flattened ``uint32`` arrays holding the
    reduced encodings of the non-trivial elements, in element order.
    """

    op: str
    total: int = 0
    conventional_trivial: int = 0
    extended_trivial: int = 0
    nontrivial_operands: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False
    )

    @property
    def nontrivial(self) -> int:
        """Element count that would still need an FPU (or table)."""
        return self.total - self.extended_trivial


def _prepare(a, b) -> Tuple[np.ndarray, np.ndarray]:
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    a32, b32 = np.broadcast_arrays(a32, b32)
    return a32, b32


def _census(op: str, masks: TrivialMasks, abits, bbits,
            collect_operands: bool) -> OpSample:
    sample = OpSample(
        op=op,
        total=int(masks.extended.size),
        conventional_trivial=int(np.count_nonzero(masks.conventional)),
        extended_trivial=int(np.count_nonzero(masks.extended)),
    )
    if collect_operands:
        keep = ~masks.extended.ravel()
        sample.nontrivial_operands = (
            abits.ravel()[keep].copy(),
            bbits.ravel()[keep].copy(),
        )
    return sample


def reduced_add(
    a,
    b,
    precision: int = FULL_PRECISION,
    mode: RoundingMode = RoundingMode.JAMMING,
    collect_operands: bool = False,
) -> Tuple[np.ndarray, OpSample]:
    """Elementwise ``a + b`` at ``precision`` mantissa bits.

    Returns ``(result, sample)`` where ``result`` is ``float32`` of the
    broadcast shape.
    """
    a32, b32 = _prepare(a, b)
    ra = reduce_array(a32, precision, mode)
    rb = reduce_array(b32, precision, mode)
    abits = array_to_bits(ra)
    bbits = array_to_bits(rb)
    masks = add_trivial_masks(abits, bbits, precision)

    result = reduce_array(ra + rb, precision, mode)
    if masks.extended.any():
        # Bypass lanes keep the surviving operand at full precision.
        result = np.where(masks.use_a, a32, result)
        result = np.where(masks.use_b, b32, result)
    sample = _census("add", masks, abits, bbits, collect_operands)
    return result.astype(np.float32, copy=False), sample


def reduced_sub(
    a,
    b,
    precision: int = FULL_PRECISION,
    mode: RoundingMode = RoundingMode.JAMMING,
    collect_operands: bool = False,
) -> Tuple[np.ndarray, OpSample]:
    """Elementwise ``a - b``; identical census semantics to addition.

    Subtraction is addition of the negated operand — negation flips only
    the sign bit, so the trivial conditions (which inspect exponents and
    mantissas) are unaffected.
    """
    b32 = np.asarray(b, dtype=np.float32)
    result, sample = reduced_add(a, -b32, precision, mode, collect_operands)
    sample.op = "sub"
    return result, sample


def reduced_mul(
    a,
    b,
    precision: int = FULL_PRECISION,
    mode: RoundingMode = RoundingMode.JAMMING,
    collect_operands: bool = False,
) -> Tuple[np.ndarray, OpSample]:
    """Elementwise ``a * b`` at ``precision`` mantissa bits."""
    a32, b32 = _prepare(a, b)
    ra = reduce_array(a32, precision, mode)
    rb = reduce_array(b32, precision, mode)
    abits = array_to_bits(ra)
    bbits = array_to_bits(rb)
    masks = mul_trivial_masks(abits, bbits, precision)

    result = reduce_array(ra * rb, precision, mode)
    if masks.extended.any():
        zero_result = masks.extended & ~masks.use_a & ~masks.use_b
        if zero_result.any():
            sign = (abits ^ bbits) & _SIGN
            signed_zero = sign.view(np.float32)
            result = np.where(zero_result, signed_zero, result)
        # ±2^E lanes: exponent/sign logic runs, the other operand's mantissa
        # passes through at full precision.  Multiplying by an exact power
        # of two reproduces this bit-for-bit.
        result = np.where(masks.use_a, a32 * rb, result)
        result = np.where(masks.use_b, ra * b32, result)
    sample = _census("mul", masks, abits, bbits, collect_operands)
    return result.astype(np.float32, copy=False), sample


def reduced_div(
    a,
    b,
    precision: int = FULL_PRECISION,
    mode: RoundingMode = RoundingMode.JAMMING,
    collect_operands: bool = False,
) -> Tuple[np.ndarray, OpSample]:
    """Elementwise ``a / b`` — never precision-reduced, only screened.

    ``precision``/``mode`` are accepted for interface symmetry; the paper's
    error-tolerance study covers add/sub/mul only, so divides execute at
    full precision.
    """
    del precision, mode
    a32, b32 = _prepare(a, b)
    abits = array_to_bits(a32)
    bbits = array_to_bits(b32)
    masks = div_trivial_masks(abits, bbits)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = (a32 / b32).astype(np.float32, copy=False)
    sample = _census("div", masks, abits, bbits, collect_operands)
    return result, sample
