"""IEEE-754 single-precision bit manipulation helpers.

The paper reduces precision by "removal of less significant bits from the
mantissa using a selected rounding mode" (Section 2.3).  Everything in this
package works on the raw 32-bit encoding: sign (1 bit), biased exponent
(8 bits), mantissa/significand fraction (23 bits).

Two parallel implementations are provided:

* scalar: plain-Python ``int`` bit twiddling via :mod:`struct`, used by the
  scalar operation path and by tests;
* vectorized: :mod:`numpy` ``uint32`` views, used by the physics engine's
  hot loops.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "MANTISSA_BITS",
    "EXPONENT_BITS",
    "EXPONENT_BIAS",
    "MANTISSA_MASK",
    "EXPONENT_MASK",
    "SIGN_MASK",
    "float_to_bits",
    "bits_to_float",
    "to_float32",
    "sign_of",
    "biased_exponent",
    "mantissa_field",
    "compose",
    "is_finite_bits",
    "array_to_bits",
    "bits_to_array",
]

#: Width of the stored (explicit) significand fraction of binary32.
MANTISSA_BITS = 23
#: Width of the biased exponent field of binary32.
EXPONENT_BITS = 8
#: Exponent bias of binary32.
EXPONENT_BIAS = 127

MANTISSA_MASK = (1 << MANTISSA_BITS) - 1  # 0x007FFFFF
EXPONENT_MASK = ((1 << EXPONENT_BITS) - 1) << MANTISSA_BITS  # 0x7F800000
SIGN_MASK = 1 << 31  # 0x80000000

_PACK_F = struct.Struct("<f").pack
_UNPACK_F = struct.Struct("<f").unpack
_PACK_I = struct.Struct("<I").pack
_UNPACK_I = struct.Struct("<I").unpack


def float_to_bits(value: float) -> int:
    """Return the binary32 encoding of ``value`` as an unsigned integer.

    ``value`` is first narrowed to single precision (round-to-nearest-even),
    matching the engine's float32 data path.
    """
    return _UNPACK_I(_PACK_F(value))[0]


def bits_to_float(bits: int) -> float:
    """Return the Python float whose binary32 encoding is ``bits``."""
    return _UNPACK_F(_PACK_I(bits & 0xFFFFFFFF))[0]


def to_float32(value: float) -> float:
    """Narrow ``value`` to the nearest binary32 value (as a Python float)."""
    return _UNPACK_F(_PACK_F(value))[0]


def sign_of(bits: int) -> int:
    """Return the sign bit (0 for positive, 1 for negative)."""
    return (bits >> 31) & 1


def biased_exponent(bits: int) -> int:
    """Return the raw 8-bit biased exponent field."""
    return (bits & EXPONENT_MASK) >> MANTISSA_BITS


def mantissa_field(bits: int) -> int:
    """Return the 23-bit stored mantissa fraction."""
    return bits & MANTISSA_MASK


def compose(sign: int, exponent: int, mantissa: int) -> int:
    """Assemble a binary32 encoding from its three fields."""
    if not 0 <= exponent <= 0xFF:
        raise ValueError(f"biased exponent out of range: {exponent}")
    if not 0 <= mantissa <= MANTISSA_MASK:
        raise ValueError(f"mantissa out of range: {mantissa:#x}")
    return ((sign & 1) << 31) | (exponent << MANTISSA_BITS) | mantissa


def is_finite_bits(bits: int) -> bool:
    """True when ``bits`` encodes a finite number (not inf / NaN)."""
    return (bits & EXPONENT_MASK) != EXPONENT_MASK


def array_to_bits(values: np.ndarray) -> np.ndarray:
    """View/convert a float array as ``uint32`` binary32 encodings."""
    arr = np.ascontiguousarray(values, dtype=np.float32)
    return arr.view(np.uint32)


def bits_to_array(bits: np.ndarray) -> np.ndarray:
    """View a ``uint32`` array of binary32 encodings as ``float32``."""
    arr = np.ascontiguousarray(bits, dtype=np.uint32)
    return arr.view(np.float32)
