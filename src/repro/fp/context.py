"""Floating-point execution context with per-phase dynamic precision.

This is the software analogue of the paper's hardware/software co-design
(Section 4.2): the application sets a *control register* holding the
minimum mantissa width for the currently executing region, and every FP
add/sub/mul in that region is performed at that width.  Here the "control
register" is :attr:`FPContext.phase_precision` plus the active
:attr:`FPContext.phase` label, which the physics engine switches as it
moves through its pipeline (``narrow`` → ``lcp`` → ``integrate``).

The context also keeps the trivialization census per ``(phase, op)`` that
Table 4 and the architectural model consume, and can optionally stream
non-trivial operand pairs through :class:`~repro.memo.memo_table.MemoBank`
to measure memoization hit rates.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from .ops import reduced_add, reduced_div, reduced_mul, reduced_sub
from .rounding import (
    DEFAULT_GUARD_BITS,
    FULL_PRECISION,
    ReducedKernel,
    RoundingMode,
    fused_axpy,
    fused_binop,
)

__all__ = ["OpCounter", "FPContext"]


@dataclass
class OpCounter:
    """Aggregate census for one ``(phase, op)`` bucket."""

    total: int = 0
    conventional_trivial: int = 0
    extended_trivial: int = 0
    memo_lookups: int = 0
    memo_hits: int = 0

    @property
    def nontrivial(self) -> int:
        return self.total - self.extended_trivial

    def merge(self, other: "OpCounter") -> None:
        self.total += other.total
        self.conventional_trivial += other.conventional_trivial
        self.extended_trivial += other.extended_trivial
        self.memo_lookups += other.memo_lookups
        self.memo_hits += other.memo_hits


class FPContext:
    """Executes vector FP operations at the active phase's precision.

    Parameters
    ----------
    phase_precision:
        Mapping from phase name to mantissa bits (0-23).  Phases absent
        from the map run at full precision.
    mode:
        Rounding mode for precision reduction (default jamming, the mode
        the paper selects for all architecture results).
    memo:
        Optional :class:`~repro.memo.memo_table.MemoBank`; when present,
        non-trivial add/mul operands are streamed through it to measure
        reuse (Table 4, right half).
    memo_budget:
        Cap on the number of per-element memoization probes, since memo
        simulation is inherently sequential.  ``None`` = unlimited.
    census:
        When False, skip the trivialization census *and* the trivial
        bypass: operations follow the paper's pure Table 1 error model
        ("rounding both operands, executing the operation, and then
        rounding the result") at a fraction of the cost.  Believability
        searches use this; census runs feed Table 4 and the architecture
        model.
    """

    def __init__(
        self,
        phase_precision: Optional[Mapping[str, int]] = None,
        mode: Union[str, RoundingMode] = RoundingMode.JAMMING,
        memo=None,
        memo_budget: Optional[int] = None,
        census: bool = True,
        jam_guard_bits: int = DEFAULT_GUARD_BITS,
    ) -> None:
        self.phase_precision: Dict[str, int] = dict(phase_precision or {})
        self.mode = RoundingMode.parse(mode)
        self.memo = memo
        self.memo_budget = memo_budget
        #: configured cap, restored by :meth:`reset_stats` (the live
        #: :attr:`memo_budget` is drawn down as probes are spent)
        self._memo_budget_config = memo_budget
        self.census = census
        #: jamming OR-window width (ablation knob; the paper uses 3).
        #: Applies on the census-free fast path.
        self.jam_guard_bits = jam_guard_bits
        self.phase: str = "other"
        self.stats: Dict[Tuple[str, str], OpCounter] = {}
        #: optional :class:`~repro.robustness.FaultInjector`; when set,
        #: every op result passes through it (soft-error campaigns).
        self.injector = None

    # ------------------------------------------------------------------
    # Phase / precision plumbing
    # ------------------------------------------------------------------
    def precision_for(self, phase: str) -> int:
        """Mantissa bits in effect for ``phase`` (23 when untuned)."""
        return self.phase_precision.get(phase, FULL_PRECISION)

    @property
    def precision(self) -> int:
        """Mantissa bits in effect for the *current* phase."""
        return self.precision_for(self.phase)

    def set_precision(self, phase: str, bits: int) -> None:
        """Write the control register for ``phase``."""
        if not 0 <= bits <= FULL_PRECISION:
            raise ValueError(f"precision out of range: {bits}")
        self.phase_precision[phase] = bits

    @contextmanager
    def in_phase(self, phase: str):
        """Scope the active phase label (restores the previous one)."""
        previous = self.phase
        self.phase = phase
        try:
            yield self
        finally:
            self.phase = previous

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def _counter(self, op: str) -> OpCounter:
        key = (self.phase, op)
        counter = self.stats.get(key)
        if counter is None:
            counter = self.stats[key] = OpCounter()
        return counter

    def reset_stats(self) -> None:
        """Clear the census and restore the configured memo budget.

        Without the budget restore, a second run on the same context
        would silently collect no memoization samples (the budget having
        been exhausted by the first run).
        """
        self.stats.clear()
        self.memo_budget = self._memo_budget_config

    def counter(self, phase: str, op: str) -> OpCounter:
        """Census for ``(phase, op)``, registered in :attr:`stats`.

        A bucket that never executed is created zeroed *and recorded*,
        so a caller that read-modifies the returned counter (merging
        sweep shards, restoring a cached census) mutates the census the
        context will later report.  The old behaviour returned a
        detached ``OpCounter()`` for unseen keys: updates to it were
        silently dropped and Table 4 underreported never-hit buckets.
        """
        key = (phase, op)
        counter = self.stats.get(key)
        if counter is None:
            counter = self.stats[key] = OpCounter()
        return counter

    def phase_totals(self, phase: str) -> OpCounter:
        """Merged census across all op types of one phase."""
        merged = OpCounter()
        for (ph, _op), counter in self.stats.items():
            if ph == phase:
                merged.merge(counter)
        return merged

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _record(self, sample, collectable: bool) -> None:
        counter = self._counter(sample.op)
        counter.total += sample.total
        counter.conventional_trivial += sample.conventional_trivial
        counter.extended_trivial += sample.extended_trivial
        if collectable and sample.nontrivial_operands is not None:
            abits, bbits = sample.nontrivial_operands
            n = len(abits)
            if self.memo_budget is not None:
                n = min(n, self.memo_budget)
                self.memo_budget -= n
            if n:
                hits = self.memo.probe(sample.op, abits[:n], bbits[:n])
                counter.memo_lookups += n
                counter.memo_hits += hits

    def _collecting(self, op: str) -> bool:
        if self.memo is None or op not in ("add", "sub", "mul"):
            return False
        return self.memo_budget is None or self.memo_budget > 0

    def _deliver(self, op: str, result: np.ndarray) -> np.ndarray:
        """Hand an op result to the installed fault injector, if any."""
        injector = self.injector
        if injector is not None:
            return injector.corrupt(self.phase, op, result, self.precision)
        return result

    def fast_kernel(self) -> Optional[ReducedKernel]:
        """Reduced-domain kernel for the current phase, or ``None``.

        ``None`` means the caller must take its legacy op-for-op path:
        the census counts per-element samples in call order, and a fault
        injector consumes RNG per delivered op, so both are sensitive to
        the *call structure*, not just the values.  Whole-array fast
        paths are only value-preserving, hence only allowed when neither
        is active.
        """
        if self.census or self.injector is not None:
            return None
        return ReducedKernel(self.precision, self.mode, self.jam_guard_bits)

    def _fast_binop(self, ufunc, a, b) -> np.ndarray:
        """Census-free path: pure round-op-round (Table 1 error model)."""
        precision = self.precision
        if precision == FULL_PRECISION:
            return ufunc(
                np.asarray(a, dtype=np.float32),
                np.asarray(b, dtype=np.float32),
            )
        return fused_binop(ufunc, a, b, precision, self.mode,
                           self.jam_guard_bits)

    def axpy(self, a, x, y) -> np.ndarray:
        """``a * x + y`` at the active precision.

        Bit-identical to ``add(y, mul(a, x))`` (FP addition commutes);
        the census-free path runs one fused kernel instead of two ops.
        Census and fault-injection runs fall back to the two-op sequence
        so op counters, memo operand order, and corruption points are
        exactly what the unfused code produced.
        """
        if self.census or self.injector is not None:
            return self.add(y, self.mul(a, x))
        precision = self.precision
        if precision == FULL_PRECISION:
            t = np.multiply(np.asarray(a, dtype=np.float32),
                            np.asarray(x, dtype=np.float32))
            return np.add(t, np.asarray(y, dtype=np.float32))
        return fused_axpy(a, x, y, precision, self.mode,
                          self.jam_guard_bits)

    def add(self, a, b) -> np.ndarray:
        if not self.census:
            return self._deliver("add", self._fast_binop(np.add, a, b))
        collect = self._collecting("add")
        result, sample = reduced_add(a, b, self.precision, self.mode, collect)
        self._record(sample, collect)
        return self._deliver("add", result)

    def sub(self, a, b) -> np.ndarray:
        if not self.census:
            return self._deliver("sub", self._fast_binop(np.subtract, a, b))
        collect = self._collecting("sub")
        result, sample = reduced_sub(a, b, self.precision, self.mode, collect)
        self._record(sample, collect)
        return self._deliver("sub", result)

    def mul(self, a, b) -> np.ndarray:
        if not self.census:
            return self._deliver("mul", self._fast_binop(np.multiply, a, b))
        collect = self._collecting("mul")
        result, sample = reduced_mul(a, b, self.precision, self.mode, collect)
        self._record(sample, collect)
        return self._deliver("mul", result)

    def div(self, a, b) -> np.ndarray:
        if not self.census:
            with np.errstate(divide="ignore", invalid="ignore"):
                result = np.divide(
                    np.asarray(a, dtype=np.float32),
                    np.asarray(b, dtype=np.float32),
                )
            return self._deliver("div", result)
        result, sample = reduced_div(a, b)
        self._record(sample, False)
        return self._deliver("div", result)

    def sqrt(self, a) -> np.ndarray:
        """Full-precision square root, censused in the divide class.

        The paper's cores implement sqrt/div on the same long-latency
        non-pipelined unit; neither is precision-reduced.
        """
        arr = np.asarray(a, dtype=np.float32)
        if self.census:
            counter = self._counter("div")
            counter.total += int(arr.size)
        with np.errstate(invalid="ignore"):
            return np.sqrt(arr)
