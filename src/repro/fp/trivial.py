"""Trivial FP operation detection (paper Section 4.3.1, Tables 2-4).

Conventional trivial cases (Table 2):

======== =========== =========================================
op       form        trivial when
======== =========== =========================================
add      X + Y       X = 0 or Y = 0
subtract X - Y       X = 0 or Y = 0
multiply X * Y       X = 0 or +/-1, or Y = 0 or +/-1
divide   X / Y       X = 0 or Y = +/-1
======== =========== =========================================

The paper's three *new* conditions, enabled by precision reduction:

1. **Add/Sub** — if the magnitude of the operands' exponent difference
   exceeds ``valid mantissa bits + 1``, the smaller operand is entirely
   shifted out: the result is simply the larger operand (kept at full
   precision to minimise injected error).
2. **Multiply** — if the *reduced* mantissa bits of one operand are all
   zeros (the significand is exactly 1.0, i.e. the operand is ±2^E), the
   result mantissa is just the other operand's; only exponent and sign
   logic execute.
3. **Divide** — if the *full* mantissa of the divisor is all zeros
   (divisor is ±2^E), the result mantissa is the dividend's.  (The paper
   deliberately does not trivialise *reduced* divisors because the prior
   error-tolerance study only reduced add/sub/mul.)

All detectors work on ``uint32`` arrays of binary32 encodings so the
physics engine's vectorized hot path can classify whole operand arrays at
once.  Each returns boolean masks; the caller combines them with the
bypass result computation in :mod:`repro.fp.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bits import EXPONENT_MASK, MANTISSA_BITS, MANTISSA_MASK

__all__ = [
    "TrivialMasks",
    "is_zero",
    "is_pm_one",
    "is_pow2",
    "is_normal",
    "add_trivial_masks",
    "mul_trivial_masks",
    "div_trivial_masks",
]

_ABS_MASK = np.uint32(0x7FFFFFFF)
_ONE_BITS = np.uint32(0x3F800000)
_EXP_MASK = np.uint32(EXPONENT_MASK)
_MANT_MASK = np.uint32(MANTISSA_MASK)


def is_zero(bits: np.ndarray) -> np.ndarray:
    """Mask of elements encoding ±0.0."""
    return (bits & _ABS_MASK) == 0


def is_pm_one(bits: np.ndarray) -> np.ndarray:
    """Mask of elements encoding +1.0 or -1.0."""
    return (bits & _ABS_MASK) == _ONE_BITS


def is_pow2(bits: np.ndarray) -> np.ndarray:
    """Mask of *normal* elements that are exactly ±2^E (mantissa 1.0)."""
    exp = bits & _EXP_MASK
    return ((bits & _MANT_MASK) == 0) & (exp != 0) & (exp != _EXP_MASK)


def is_normal(bits: np.ndarray) -> np.ndarray:
    """Mask of normal (non-zero, non-denormal, finite) elements."""
    exp = bits & _EXP_MASK
    return (exp != 0) & (exp != _EXP_MASK)


@dataclass(frozen=True)
class TrivialMasks:
    """Per-element trivialization decision for one vector FP operation.

    Attributes
    ----------
    conventional:
        Elements trivial under the conventional (Table 2) conditions.
    extended:
        Elements trivial under conventional *or* new conditions.
    use_a / use_b:
        Among ``extended`` elements, whether the bypass result is derived
        from operand ``a`` or ``b`` (exactly one holds per trivial element;
        ``use_a`` wins ties).  For multiply-by-zero both are False and the
        result is a signed zero.
    """

    conventional: np.ndarray
    extended: np.ndarray
    use_a: np.ndarray
    use_b: np.ndarray

    @property
    def extended_only(self) -> np.ndarray:
        """Elements trivial only thanks to the new conditions."""
        return self.extended & ~self.conventional


def _exponent_field(bits: np.ndarray) -> np.ndarray:
    return (bits & _EXP_MASK) >> np.uint32(MANTISSA_BITS)


def add_trivial_masks(
    abits: np.ndarray, bbits: np.ndarray, precision: int
) -> TrivialMasks:
    """Classify an elementwise add/sub over reduced operand encodings.

    ``precision`` is the current number of valid mantissa bits; the new
    condition fires when ``|Ea - Eb| > precision + 1`` (the +1 accounts for
    the implicit leading one of the normalized significand).
    """
    a_zero = is_zero(abits)
    b_zero = is_zero(bbits)
    conventional = a_zero | b_zero

    both_normal = is_normal(abits) & is_normal(bbits)
    ea = _exponent_field(abits).astype(np.int32)
    eb = _exponent_field(bbits).astype(np.int32)
    diff = ea - eb
    shifted_out = both_normal & (np.abs(diff) > np.int32(precision + 1))

    extended = conventional | shifted_out
    # Result source: the operand that survives.  Zero cases keep the other
    # operand; exponent-difference cases keep the larger-magnitude operand.
    use_a = b_zero | (shifted_out & (diff > 0))
    use_b = (~use_a) & (a_zero | (shifted_out & (diff < 0)))
    return TrivialMasks(conventional, extended, use_a & extended,
                        use_b & extended)


def mul_trivial_masks(
    abits: np.ndarray, bbits: np.ndarray, precision: int
) -> TrivialMasks:
    """Classify an elementwise multiply over reduced operand encodings.

    ``precision`` only matters in that the operands are *already* reduced;
    the new condition checks whether a reduced significand is exactly 1.0
    (operand ±2^E), generalising the conventional ±1 case to any exponent.
    """
    del precision  # operands arrive already reduced
    a_zero = is_zero(abits)
    b_zero = is_zero(bbits)
    a_one = is_pm_one(abits)
    b_one = is_pm_one(bbits)
    conventional = a_zero | b_zero | a_one | b_one

    a_pow2 = is_pow2(abits)
    b_pow2 = is_pow2(bbits)
    extended = conventional | a_pow2 | b_pow2

    zero_result = a_zero | b_zero
    # Multiplying by ±2^E keeps the *other* operand's mantissa: result is
    # derived from b when a is the power of two, and vice versa.  Exact
    # ±1 operands take priority over reduced powers of two so the bypass
    # keeps the maximum available precision (X * 1 returns X unrounded).
    use_a = ~zero_result & (b_one | (~a_one & b_pow2))
    use_b = ~zero_result & ~use_a & (a_one | a_pow2)
    return TrivialMasks(conventional, extended, use_a & extended,
                        use_b & extended)


def div_trivial_masks(
    abits: np.ndarray, bbits: np.ndarray
) -> TrivialMasks:
    """Classify an elementwise divide X / Y over *full-precision* encodings.

    Division operands are never precision-reduced (the paper's methodology
    only reduces add/sub/mul), so the extended check inspects the divisor's
    full mantissa.
    """
    a_zero = is_zero(abits)
    b_one = is_pm_one(bbits)
    conventional = a_zero | b_one

    b_pow2 = is_pow2(bbits)
    extended = conventional | b_pow2

    use_a = ~a_zero & (b_one | b_pow2)
    use_b = np.zeros_like(use_a)
    return TrivialMasks(conventional, extended, use_a & extended, use_b)
