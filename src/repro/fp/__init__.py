"""Reduced-precision floating-point substrate.

Implements the paper's precision-reduction methodology: binary32 mantissa
rounding (round-to-nearest / jamming / truncation), trivial-operation
detection (conventional and extended conditions), and an
:class:`~repro.fp.context.FPContext` that executes vector FP operations at
a per-phase tunable precision while collecting the trivialization census.
"""

from .bits import (
    EXPONENT_BIAS,
    EXPONENT_BITS,
    MANTISSA_BITS,
    bits_to_float,
    float_to_bits,
    to_float32,
)
from .context import FPContext, OpCounter
from .ops import OpSample, reduced_add, reduced_div, reduced_mul, reduced_sub
from .rounding import (
    FULL_PRECISION,
    RoundingMode,
    reduce_array,
    reduce_scalar,
)

__all__ = [
    "EXPONENT_BIAS",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "FULL_PRECISION",
    "RoundingMode",
    "FPContext",
    "OpCounter",
    "OpSample",
    "bits_to_float",
    "float_to_bits",
    "to_float32",
    "reduce_array",
    "reduce_scalar",
    "reduced_add",
    "reduced_sub",
    "reduced_mul",
    "reduced_div",
]
