"""Round-robin FPU arbitration (paper Section 5, Kumar et al. policy).

"We adopt a simple policy for arbitration to minimize latency — the cores
simply take turns accessing the FPU on alternating cycles for pipelined
operations.  So when a single FPU is shared among N cores, a given core
will get access to the FPU once every N cycles.  If the core does not
require the FPU in that cycle, the opportunity to use the FPU is wasted.
For long latency non-pipelined FP operations such as divide, we assume
alternating 3-cycle scheduling windows for each core."

Because the slots are static, waits are deterministic functions of the
requesting cycle — "the latency of a non-trivial operation is known at
issue time ... using a local counter to indicate current round-robin
arbitration overhead."
"""

from __future__ import annotations

__all__ = ["RoundRobinArbiter", "DIV_WINDOW_CYCLES"]

#: width of each core's non-pipelined (divide) scheduling window
DIV_WINDOW_CYCLES = 3


class RoundRobinArbiter:
    """Static time-slot arbitration for one shared L2 FPU."""

    def __init__(self, cores: int, slot: int = 0) -> None:
        """``slot`` is this core's position in the rotation (0..cores-1)."""
        if cores < 1:
            raise ValueError("need at least one core")
        if not 0 <= slot < cores:
            raise ValueError(f"slot {slot} out of range for {cores} cores")
        self.cores = cores
        self.slot = slot

    def pipelined_wait(self, cycle: int) -> int:
        """Cycles until this core may issue a pipelined FP op."""
        if self.cores == 1:
            return 0
        return (self.slot - cycle) % self.cores

    def divide_wait(self, cycle: int) -> int:
        """Cycles until this core may start a divide.

        Zero while inside the core's own 3-cycle window, otherwise the
        distance to the next window start.
        """
        if self.cores == 1:
            return 0
        period = DIV_WINDOW_CYCLES * self.cores
        window_start = DIV_WINDOW_CYCLES * self.slot
        offset = (cycle - window_start) % period
        if offset < DIV_WINDOW_CYCLES:
            return 0
        return period - offset

    def expected_pipelined_wait(self) -> float:
        """Mean arbitration wait for uniformly arriving pipelined ops."""
        return (self.cores - 1) / 2.0

    def expected_divide_wait(self) -> float:
        """Mean wait for a divide start under uniform arrivals."""
        if self.cores == 1:
            return 0.0
        period = DIV_WINDOW_CYCLES * self.cores
        total = sum(self.divide_wait(c) for c in range(period))
        return total / period
