"""Die-area accounting and core-count scaling (Figure 6a).

The baseline is 128 cores, each with a private full FPU and a mesh
router.  Any configuration that shares FPUs (and/or adds L1 FPU hardware)
packs as many cores as fit in the *same die area* as its baseline:

    total_area = 128 * (core + router + fpu_area)
    per_core   = core + router + fpu_area / cores_per_fpu + l1_overhead
    cores      = floor(total_area / per_core), rounded down to a multiple
                 of the sharing degree so clusters stay whole.
"""

from __future__ import annotations

from . import params
from .l1fpu import L1Design

__all__ = ["die_area_mm2", "per_core_area_mm2", "cores_in_same_area"]


def die_area_mm2(fpu_area_mm2: float) -> float:
    """Total die area of the 128-core private-FPU baseline."""
    return params.BASELINE_CORES * (
        params.CORE_AREA_MM2 + params.ROUTER_AREA_MM2 + fpu_area_mm2
    )


def per_core_area_mm2(
    fpu_area_mm2: float,
    cores_per_fpu: int,
    design: L1Design,
) -> float:
    """Area per core including its share of the L2 FPU and L1 hardware."""
    if cores_per_fpu < 1:
        raise ValueError("cores_per_fpu must be >= 1")
    return (
        params.CORE_AREA_MM2
        + params.ROUTER_AREA_MM2
        + fpu_area_mm2 / cores_per_fpu
        + design.area_overhead_mm2(fpu_area_mm2)
    )


def cores_in_same_area(
    fpu_area_mm2: float,
    cores_per_fpu: int,
    design: L1Design,
) -> int:
    """Cores that fit in the baseline die area (whole clusters only)."""
    total = die_area_mm2(fpu_area_mm2)
    per_core = per_core_area_mm2(fpu_area_mm2, cores_per_fpu, design)
    cores = int(total / per_core)
    return (cores // cores_per_fpu) * cores_per_fpu
