"""Joint cluster simulation with selectable arbitration policies.

The paper adopts Kumar et al.'s *simple* policy — static alternating
cycles ("If the core does not require the FPU in that cycle, the
opportunity to use the FPU is wasted").  Kumar et al. also proposed "a
more intelligent policy where either core can use a resource in any
cycle, but the arbitration priority among the cores switches from cycle
to cycle for fairness".  This module simulates all cores of one HFPU
cluster together so both policies can be compared:

* ``static``  — the paper's time-slot policy (equivalent to the
  independent per-core model in :mod:`repro.arch.core`, which this
  simulator cross-validates);
* ``demand``  — any core may issue on any cycle; conflicts are granted
  by rotating priority.

Divides hold the (non-pipelined) unit for their full latency under both
policies; under ``static`` they additionally wait for the core's 3-cycle
scheduling window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from . import params
from .arbiter import RoundRobinArbiter
from .l1fpu import L1Design, SERVICE_L1, SERVICE_L2, SERVICE_MINI
from .trace import Trace

__all__ = ["ClusterResult", "simulate_cluster"]

POLICIES = ("static", "demand")


@dataclass
class ClusterResult:
    """Joint-simulation outcome for one cluster."""

    per_core_ipc: List[float]
    cycles: int
    instructions: int
    #: cycles the L2 FPU issue port actually accepted an operation
    fpu_busy_cycles: int

    @property
    def mean_ipc(self) -> float:
        return sum(self.per_core_ipc) / len(self.per_core_ipc)

    @property
    def fpu_utilization(self) -> float:
        return self.fpu_busy_cycles / self.cycles if self.cycles else 0.0


class _CoreState:
    """Execution cursor of one core replaying its trace."""

    __slots__ = ("trace", "index", "ready_at", "done_at", "wants_fpu",
                 "pending_op")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.index = 0
        self.ready_at = 0       # cycle at which the next instr may begin
        self.done_at: Optional[int] = None  # set when trace exhausted
        self.wants_fpu = False
        self.pending_op: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.index >= len(self.trace.op_index)


def simulate_cluster(
    traces: Sequence[Trace],
    design: L1Design,
    policy: str = "static",
    interconnect: Optional[int] = None,
) -> ClusterResult:
    """Simulate one cluster (``len(traces)`` cores, one shared L2 FPU)."""
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}")
    n = len(traces)
    if n < 1:
        raise ValueError("need at least one core")
    if interconnect is None:
        interconnect = params.interconnect_latency(n)

    cores = [_CoreState(trace) for trace in traces]
    arbiters = [RoundRobinArbiter(n, slot) for slot in range(n)]
    mini_period = max(design.mini_shared_by, 1)

    fp_alu = params.CORE.fp_alu_latency
    fp_div = params.CORE.fp_div_latency
    ops = Trace.OPS

    cycle = 0
    priority = 0              # demand policy: rotating grant priority
    divider_free_at = 0       # the non-pipelined divide sub-unit only:
    # pipelined adds/muls flow through the FPU pipeline regardless of an
    # in-flight divide (Kumar et al.'s split the paper inherits).
    fpu_busy_cycles = 0
    finish_cycles = [0] * n

    def _advance_local(core: _CoreState, slot: int) -> None:
        """Run the core forward until it needs the shared FPU (or ends)."""
        while not core.finished:
            k = core.trace.op_index[core.index]
            if k < 0:
                core.ready_at += 1
                core.index += 1
                continue
            op = ops[k]
            service = design.service(
                op, core.trace.precision,
                bool(core.trace.conv_trivial[core.index]),
                bool(core.trace.ext_trivial[core.index]))
            if service == SERVICE_L1:
                core.ready_at += params.L1_HIT_LATENCY
                core.index += 1
            elif service == SERVICE_MINI:
                wait = 0
                if design.mini_shared_by > 1:
                    wait = (slot - core.ready_at) % mini_period
                core.ready_at += wait + params.MINI_FPU_LATENCY
                core.index += 1
            else:
                core.wants_fpu = True
                core.pending_op = op
                return
        core.done_at = core.ready_at

    for slot, core in enumerate(cores):
        _advance_local(core, slot)

    while any(not core.finished for core in cores):
        # Who is requesting the shared FPU this cycle?
        requesters = [
            i for i, core in enumerate(cores)
            if core.wants_fpu and core.ready_at <= cycle
        ]
        grant = None
        if requesters:
            if policy == "static":
                # Only the slot owner may use this cycle; divides also
                # need the core's scheduling window and a free divider.
                for i in requesters:
                    if cores[i].pending_op == "div":
                        ok = (arbiters[i].divide_wait(cycle) == 0
                              and cycle >= divider_free_at)
                    else:
                        ok = arbiters[i].pipelined_wait(cycle) == 0
                    if ok:
                        grant = i
                        break
            else:  # demand
                for offset in range(n):
                    i = (priority + offset) % n
                    if i not in requesters:
                        continue
                    if (cores[i].pending_op == "div"
                            and cycle < divider_free_at):
                        continue
                    grant = i
                    break
                priority = (priority + 1) % n

        if grant is not None:
            core = cores[grant]
            latency = fp_div if core.pending_op == "div" else fp_alu
            if core.pending_op == "div":
                divider_free_at = cycle + latency
            fpu_busy_cycles += 1
            core.ready_at = cycle + interconnect + latency
            core.wants_fpu = False
            core.pending_op = None
            core.index += 1
            _advance_local(core, grant)

        cycle += 1

    for i, core in enumerate(cores):
        finish_cycles[i] = core.done_at if core.done_at is not None \
            else core.ready_at

    total_cycles = max(finish_cycles) if finish_cycles else 0
    per_core_ipc = [
        len(core.trace) / finish_cycles[i] if finish_cycles[i] else 0.0
        for i, core in enumerate(cores)
    ]
    return ClusterResult(
        per_core_ipc=per_core_ipc,
        cycles=total_cycles,
        instructions=sum(len(core.trace) for core in cores),
        fpu_busy_cycles=fpu_busy_cycles,
    )
