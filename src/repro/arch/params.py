"""Architectural parameters (paper Tables 5, 6, 7 and Section 5 text).

All constants are the paper's own published numbers (90 nm, 1 GHz
fine-grain shader cores in a ParallAX-style CMP), so the area arithmetic
of Figure 6(a) reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "CoreParams",
    "CORE",
    "CORE_AREA_MM2",
    "ROUTER_AREA_MM2",
    "BASELINE_CORES",
    "FPU_AREAS_MM2",
    "MINI_FPU_AREA_FACTOR",
    "MINI_FPU_MANTISSA_BITS",
    "CONV_TRIV_AREA_MM2",
    "REDUCED_TRIV_AREA_MM2",
    "LOOKUP_TABLE_AREA_MM2",
    "LOOKUP_LATENCY_NS",
    "LOOKUP_ENERGY_NJ",
    "MEMO_LATENCY_NS",
    "MEMO_ENERGY_NJ",
    "MEMO_AREA_MM2",
    "L1_HIT_LATENCY",
    "MINI_FPU_LATENCY",
    "INTERCONNECT_LATENCY",
    "FPU_OP_ENERGY_NJ",
    "TRIV_LOGIC_ENERGY_NJ",
    "MINI_FPU_ENERGY_FACTOR",
    "PHASE_FP_FRACTION",
    "interconnect_latency",
]


@dataclass(frozen=True)
class CoreParams:
    """Table 6: fine-grain shader core design."""

    width: int = 1
    pipeline_stages: int = 5
    in_order: bool = True
    clock_ghz: float = 1.0
    technology_nm: int = 90
    fp_alu_latency: int = 4
    fp_mult_latency: int = 4
    fp_div_latency: int = 20
    int_alu_latency: int = 1
    int_mult_latency: int = 6
    int_div_latency: int = 40
    local_inst_memory_kb: int = 4
    local_data_memory_kb: int = 4
    window_entries: int = 8
    scheduler_entries: int = 4


CORE = CoreParams()

# ---------------------------------------------------------------------
# Section 5 area model
# ---------------------------------------------------------------------
#: simple in-order shader-class core, excluding the FPU
CORE_AREA_MM2 = 2.0
#: per-core mesh interconnect router (Polaris [31])
ROUTER_AREA_MM2 = 0.19
#: the ParallAX baseline configuration
BASELINE_CORES = 128
#: the four FPU design points explored (Section 5)
FPU_AREAS_MM2 = (1.5, 1.0, 0.75, 0.375)
#: the 14-bit mantissa mini-FPU costs 60 % of a full FPU
MINI_FPU_AREA_FACTOR = 0.6
MINI_FPU_MANTISSA_BITS = 14

# Table 8 per-core area overheads.  The new trivialization conditions add
# an 8-bit exponent adder estimated at 1/16 of a 64-bit adder's area.
CONV_TRIV_AREA_MM2 = 0.0023
REDUCED_TRIV_AREA_MM2 = 0.0079
LOOKUP_TABLE_AREA_MM2 = 0.080

# ---------------------------------------------------------------------
# Table 5: lookup vs memoization (Cacti 3.0 derived)
# ---------------------------------------------------------------------
LOOKUP_LATENCY_NS = 0.40
LOOKUP_ENERGY_NJ = 0.03
# LOOKUP area is LOOKUP_TABLE_AREA_MM2 above (0.08 mm^2)
MEMO_LATENCY_NS = 0.88
MEMO_ENERGY_NJ = 0.73
MEMO_AREA_MM2 = 0.35

# ---------------------------------------------------------------------
# Table 7: variable FP latency components (cycles)
# ---------------------------------------------------------------------
#: trivialization or lookup-table satisfaction
L1_HIT_LATENCY = 1
#: the 14-bit mini-FPU
MINI_FPU_LATENCY = 3
#: one-way wire overhead added when reaching the shared L2 FPU
INTERCONNECT_LATENCY: Dict[int, int] = {1: 0, 2: 0, 4: 1, 8: 2}


def interconnect_latency(cores_per_fpu: int) -> int:
    """Cycles of wire delay for a given L2 sharing degree."""
    try:
        return INTERCONNECT_LATENCY[cores_per_fpu]
    except KeyError:
        raise ValueError(
            f"unsupported sharing degree {cores_per_fpu}; "
            f"choose from {sorted(INTERCONNECT_LATENCY)}"
        ) from None


# ---------------------------------------------------------------------
# Dynamic energy model (scaled from Citron & Feitelson [10]; the paper
# reports relative reductions, so only the ratios matter)
# ---------------------------------------------------------------------
FPU_OP_ENERGY_NJ: Dict[str, float] = {
    "add": 0.40,
    "sub": 0.40,
    "mul": 0.55,
    "div": 2.00,
}
#: comparator/exponent logic charged to *every* FP op when trivialization
#: hardware is present
TRIV_LOGIC_ENERGY_NJ = 0.01
MINI_FPU_ENERGY_FACTOR = 0.6

# ---------------------------------------------------------------------
# Phase instruction mix (Section 4.1.1: "31% and 13% of dynamic
# instructions on average are FP for LCP and narrow-phase respectively")
# ---------------------------------------------------------------------
PHASE_FP_FRACTION: Dict[str, float] = {"lcp": 0.31, "narrow": 0.13}
