"""Dynamic FP energy model (Figure 6b).

"For configurations with trivialization, all FP operations are charged the
trivialization logic energy.  Non-trivial operations are then charged for
the FPU energy.  The lookup table is activated when the required precision
falls below six bits.  In these cases, all FP operations are charged the
trivialization plus the lookup energies."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..memo.lookup_table import LOOKUP_PRECISION_LIMIT
from . import params
from .l1fpu import L1Design
from .trace import PhaseWorkload

__all__ = ["EnergyBreakdown", "phase_energy", "energy_reduction",
           "trivialized_fraction"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Average energy per dynamic FP operation, in nJ."""

    trivialization_nj: float
    lookup_nj: float
    mini_nj: float
    fpu_nj: float

    @property
    def total_nj(self) -> float:
        return (self.trivialization_nj + self.lookup_nj + self.mini_nj
                + self.fpu_nj)


def phase_energy(workload: PhaseWorkload, design: L1Design) -> \
        EnergyBreakdown:
    """Average per-FP-op energy for a phase under an L1 design."""
    has_triv = design.name != "conjoin"
    lut_active = (
        design.has_lookup
        and workload.precision < LOOKUP_PRECISION_LIMIT
    )

    triv = lookup = mini = fpu = 0.0
    for op, profile in workload.ops.items():
        share = profile.share
        if share == 0:
            continue
        if has_triv:
            triv += share * params.TRIV_LOGIC_ENERGY_NJ
        if lut_active and op in ("add", "sub", "mul"):
            # All such ops charge the lookup energy; none reach the FPU.
            lookup += share * params.LOOKUP_ENERGY_NJ
            continue
        l1 = design.l1_rate(op, workload.precision,
                            profile.conv_trivial_rate,
                            profile.ext_trivial_rate)
        if op == "div":
            l1 = (0.0 if not has_triv else
                  (profile.ext_trivial_rate
                   if design.uses_reduced_conditions
                   else profile.conv_trivial_rate))
        mini_rate = design.mini_rate(op, workload.precision,
                                     profile.conv_trivial_rate,
                                     profile.ext_trivial_rate)
        fpu_rate = max(0.0, 1.0 - l1 - mini_rate)
        op_energy = params.FPU_OP_ENERGY_NJ[op]
        mini += share * mini_rate * op_energy * params.MINI_FPU_ENERGY_FACTOR
        fpu += share * fpu_rate * op_energy
    return EnergyBreakdown(triv, lookup, mini, fpu)


def baseline_energy(workload: PhaseWorkload) -> float:
    """Per-FP-op energy when every op uses a private full FPU (nJ)."""
    total = 0.0
    for op, profile in workload.ops.items():
        total += profile.share * params.FPU_OP_ENERGY_NJ[op]
    return total


def energy_reduction(workload: PhaseWorkload, design: L1Design) -> float:
    """Fractional FP energy saved vs the unshared full-FPU baseline."""
    base = baseline_energy(workload)
    if base == 0:
        return 0.0
    return 1.0 - phase_energy(workload, design).total_nj / base


def trivialized_fraction(workload: PhaseWorkload, design: L1Design) -> \
        float:
    """Fraction of FP ops satisfied by trivialization or table lookup."""
    total = 0.0
    for op, profile in workload.ops.items():
        l1 = design.l1_rate(op, workload.precision,
                            profile.conv_trivial_rate,
                            profile.ext_trivial_rate)
        if op == "div":
            l1 = (0.0 if design.name == "conjoin" else
                  (profile.ext_trivial_rate
                   if design.uses_reduced_conditions
                   else profile.conv_trivial_rate))
        total += profile.share * l1
    return total
