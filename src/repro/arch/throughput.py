"""Aggregate throughput comparison vs the 128-core baseline (Figure 5/7).

Two competing trends (paper Section 5.2): sharing FPUs frees area that
buys more cores (more parallelism), but sharing overheads lower per-core
IPC.  The phases studied are embarrassingly parallel, so aggregate
throughput scales with ``cores x per-core IPC``; the reported metric is
the percentage improvement over the 128-core private-FPU baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import area, params
from .core import cluster_ipc
from .l1fpu import CONJOIN, L1Design
from .trace import PhaseWorkload, Trace, generate_trace

__all__ = ["ConfigResult", "evaluate_config", "baseline_throughput"]

#: dynamic instructions fed to the cycle simulator per configuration
DEFAULT_TRACE_LENGTH = 20_000


@dataclass(frozen=True)
class ConfigResult:
    """Evaluated HFPU configuration."""

    design_name: str
    fpu_area_mm2: float
    cores_per_fpu: int
    cores: int
    per_core_ipc: float
    throughput: float           # cores x IPC
    improvement: float          # vs the 128-core unshared baseline

    @property
    def improvement_percent(self) -> float:
        return 100.0 * self.improvement


def _trace_for(workload: PhaseWorkload, trace_length: int,
               seed: int) -> Trace:
    return generate_trace(workload, trace_length, seed=seed)


def baseline_throughput(
    workload: PhaseWorkload,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> float:
    """Throughput of 128 cores, each with a private FPU and no L1."""
    trace = _trace_for(workload, trace_length, seed)
    ipc = cluster_ipc(trace, CONJOIN, cores_per_fpu=1)
    return params.BASELINE_CORES * ipc


def evaluate_config(
    workload: PhaseWorkload,
    design: L1Design,
    fpu_area_mm2: float,
    cores_per_fpu: int,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    interconnect: Optional[int] = None,
    seed: int = 0,
    baseline: Optional[float] = None,
) -> ConfigResult:
    """Evaluate one (design, FPU size, sharing degree) point.

    ``baseline`` lets callers reuse a precomputed baseline throughput;
    ``interconnect`` overrides the wire latency for Figure 8 sweeps.
    """
    trace = _trace_for(workload, trace_length, seed)
    ipc = cluster_ipc(trace, design, cores_per_fpu, interconnect)
    cores = area.cores_in_same_area(fpu_area_mm2, cores_per_fpu, design)
    throughput = cores * ipc
    if baseline is None:
        baseline = baseline_throughput(workload, trace_length, seed)
    return ConfigResult(
        design_name=design.name,
        fpu_area_mm2=fpu_area_mm2,
        cores_per_fpu=cores_per_fpu,
        cores=cores,
        per_core_ipc=ipc,
        throughput=throughput,
        improvement=throughput / baseline - 1.0,
    )
