"""ParallAX-style many-core timing / area / energy model with HFPU sharing.

Substitution note (DESIGN.md): the paper uses SESC, a cycle-accurate
full-system simulator.  Here the cycle-level core model replays FP
operation traces recorded from the instrumented physics engine; because
the paper's cores are single-issue in-order with *static* round-robin
FPU slots, per-core timing is exact given the trace, and aggregate
throughput follows from the area model's core counts.
"""

from . import params, parallax
from .arbiter import DIV_WINDOW_CYCLES, RoundRobinArbiter
from .area import cores_in_same_area, die_area_mm2, per_core_area_mm2
from .cluster import ClusterResult, simulate_cluster
from .core import CoreResult, analytic_cpi, cluster_ipc, simulate_core
from .energy import (
    EnergyBreakdown,
    baseline_energy,
    energy_reduction,
    phase_energy,
    trivialized_fraction,
)
from .l1fpu import (
    ALL_DESIGNS,
    CONJOIN,
    CONV_TRIV,
    LOOKUP_TRIV,
    REDUCED_TRIV,
    L1Design,
    mini_fpu,
)
from .throughput import ConfigResult, baseline_throughput, evaluate_config
from .trace import OpProfile, PhaseWorkload, Trace, generate_trace

__all__ = [
    "params",
    "parallax",
    "RoundRobinArbiter",
    "DIV_WINDOW_CYCLES",
    "cores_in_same_area",
    "die_area_mm2",
    "per_core_area_mm2",
    "ClusterResult",
    "simulate_cluster",
    "CoreResult",
    "analytic_cpi",
    "cluster_ipc",
    "simulate_core",
    "EnergyBreakdown",
    "baseline_energy",
    "energy_reduction",
    "phase_energy",
    "trivialized_fraction",
    "ALL_DESIGNS",
    "CONJOIN",
    "CONV_TRIV",
    "REDUCED_TRIV",
    "LOOKUP_TRIV",
    "L1Design",
    "mini_fpu",
    "ConfigResult",
    "baseline_throughput",
    "evaluate_config",
    "OpProfile",
    "PhaseWorkload",
    "Trace",
    "generate_trace",
]
