"""Phase workload characterization and instruction trace generation.

The physics engine's instrumented runs yield, per phase, the FP operation
mix and the trivialization rates under two conditions: conventional
conditions on full-precision operands, and all (extended) conditions on
reduced operands.  Combined with the paper's phase FP densities (31 % of
dynamic instructions are FP in LCP, 13 % in narrow-phase), this
characterizes the workload each fine-grain core executes; the trace
generator expands it into a concrete dynamic instruction stream for the
cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..fp.context import OpCounter
from . import params

__all__ = ["OpProfile", "PhaseWorkload", "Trace", "generate_trace"]

_FP_OPS = ("add", "sub", "mul", "div")


@dataclass(frozen=True)
class OpProfile:
    """Dynamic profile of one FP op type within a phase."""

    share: float          # fraction of the phase's FP ops
    conv_trivial_rate: float  # under conventional conditions, full precision
    ext_trivial_rate: float   # under all conditions, reduced operands


@dataclass(frozen=True)
class PhaseWorkload:
    """Everything the timing model needs about one phase's FP behaviour."""

    phase: str
    precision: int
    fp_fraction: float
    ops: Mapping[str, OpProfile]

    @classmethod
    def from_censuses(
        cls,
        phase: str,
        precision: int,
        full_stats: Mapping,
        reduced_stats: Mapping,
        fp_fraction: Optional[float] = None,
    ) -> "PhaseWorkload":
        """Build from two instrumented runs' ``FPContext.stats`` dicts.

        ``full_stats`` comes from a full-precision run (conventional
        trivial rates), ``reduced_stats`` from a run at the tuned
        precision (extended rates + the op mix actually executed).
        """
        def _counter(stats, op) -> OpCounter:
            value = stats.get((phase, op))
            return value if value is not None else OpCounter()

        totals = {op: _counter(reduced_stats, op).total for op in _FP_OPS}
        grand = sum(totals.values())
        ops: Dict[str, OpProfile] = {}
        for op in _FP_OPS:
            reduced = _counter(reduced_stats, op)
            full = _counter(full_stats, op)
            conv_rate = (full.conventional_trivial / full.total
                         if full.total else 0.0)
            ext_rate = (reduced.extended_trivial / reduced.total
                        if reduced.total else 0.0)
            share = totals[op] / grand if grand else 0.0
            ops[op] = OpProfile(share, conv_rate, ext_rate)
        if fp_fraction is None:
            fp_fraction = params.PHASE_FP_FRACTION.get(phase, 0.2)
        return cls(phase=phase, precision=precision,
                   fp_fraction=fp_fraction, ops=ops)


@dataclass
class Trace:
    """A concrete dynamic instruction stream for one core.

    ``op_index`` holds -1 for non-FP instructions, otherwise an index into
    ``_FP_OPS``; the trivial flags are only meaningful for FP entries.
    """

    op_index: np.ndarray
    conv_trivial: np.ndarray
    ext_trivial: np.ndarray
    precision: int

    OPS = _FP_OPS

    def __len__(self) -> int:
        return len(self.op_index)

    @property
    def fp_count(self) -> int:
        return int(np.count_nonzero(self.op_index >= 0))


def generate_trace(
    workload: PhaseWorkload,
    instructions: int,
    seed: int = 0,
) -> Trace:
    """Expand a phase workload into ``instructions`` dynamic instructions.

    Sampling is deterministic for a given seed, so experiments are
    reproducible run to run.
    """
    rng = np.random.default_rng(seed)
    is_fp = rng.random(instructions) < workload.fp_fraction

    shares = np.array(
        [workload.ops[op].share for op in _FP_OPS], dtype=np.float64)
    if shares.sum() <= 0:
        shares = np.array([0.45, 0.1, 0.4, 0.05])
    shares = shares / shares.sum()

    op_index = np.full(instructions, -1, dtype=np.int8)
    n_fp = int(np.count_nonzero(is_fp))
    op_index[is_fp] = rng.choice(len(_FP_OPS), size=n_fp, p=shares)

    conv = np.zeros(instructions, dtype=bool)
    ext = np.zeros(instructions, dtype=bool)
    draw = rng.random(instructions)
    for k, op in enumerate(_FP_OPS):
        mask = op_index == k
        profile = workload.ops[op]
        conv[mask] = draw[mask] < profile.conv_trivial_rate
        # Extended conditions are a superset of conventional ones, so
        # sampling with a shared uniform keeps ext ⊇ conv.
        ext[mask] = draw[mask] < max(profile.ext_trivial_rate,
                                     profile.conv_trivial_rate)
    return Trace(op_index=op_index, conv_trivial=conv, ext_trivial=ext,
                 precision=workload.precision)
