"""L1 FPU design alternatives (paper Section 5.1).

A hierarchical FPU (HFPU) gives each core a small local L1 unit; anything
the L1 cannot satisfy travels to the full-precision L2 FPU shared among
``cores_per_fpu`` cores.  The paper's four alternatives, by increasing
complexity:

1. **Conventional Trivialization** — Table 2 conditions only, evaluated on
   full-precision operands (no precision reduction hardware).
2. **Reduced Precision Trivialization** — the extended conditions on
   reduced operands; needs the extra exponent logic.
3. **Lookup Table + Reduced Triv** — adds the 2K-entry LUT; add/multiply
   at fewer than six mantissa bits never leave the core.
4. **mini-FPU + Reduced Triv** — adds a 14-bit-mantissa FPU covering
   add/multiply below 15 bits, at 60 % of a full FPU's area; optionally
   shared among 2 or 4 cores.

(The plain ``Conjoin`` baseline — sharing with no L1 at all — is also
modelled.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memo.lookup_table import LOOKUP_PRECISION_LIMIT
from . import params

__all__ = [
    "L1Design",
    "CONJOIN",
    "CONV_TRIV",
    "REDUCED_TRIV",
    "LOOKUP_TRIV",
    "mini_fpu",
    "ALL_DESIGNS",
    "SERVICE_L1",
    "SERVICE_MINI",
    "SERVICE_L2",
]

#: Service classes an FP operation can resolve to.
SERVICE_L1 = "l1"      # trivialization or lookup table: 1 cycle
SERVICE_MINI = "mini"  # the 14-bit mini-FPU: 3 cycles
SERVICE_L2 = "l2"      # the shared full-precision FPU


@dataclass(frozen=True)
class L1Design:
    """One L1 FPU alternative.

    ``mini_shared_by`` > 0 means the design includes a mini-FPU shared by
    that many cores (1 = private).
    """

    name: str
    uses_reduced_conditions: bool
    has_lookup: bool
    mini_shared_by: int = 0

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def area_overhead_mm2(self, fpu_area_mm2: float) -> float:
        """Additional area per core beyond core + router + shared L2."""
        if self.name == "conjoin":
            return 0.0
        area = (params.REDUCED_TRIV_AREA_MM2
                if self.uses_reduced_conditions
                else params.CONV_TRIV_AREA_MM2)
        if self.has_lookup:
            area += params.LOOKUP_TABLE_AREA_MM2
        if self.mini_shared_by:
            area += (params.MINI_FPU_AREA_FACTOR * fpu_area_mm2
                     / self.mini_shared_by)
        return area

    @property
    def has_mini(self) -> bool:
        return self.mini_shared_by > 0

    # ------------------------------------------------------------------
    # Service classification
    # ------------------------------------------------------------------
    def service(
        self,
        op: str,
        precision: int,
        trivial_conventional: bool,
        trivial_extended: bool,
    ) -> str:
        """Where one dynamic FP op executes under this design.

        ``trivial_conventional`` must be evaluated on *full-precision*
        operands and ``trivial_extended`` on reduced operands — designs
        without precision-reduction hardware only see the former.
        """
        if self.name == "conjoin":
            return SERVICE_L2
        if self.uses_reduced_conditions:
            if trivial_extended:
                return SERVICE_L1
        elif trivial_conventional:
            return SERVICE_L1
        if op in ("add", "sub", "mul"):
            if self.has_lookup and precision < LOOKUP_PRECISION_LIMIT:
                return SERVICE_L1
            if self.has_mini and precision < params.MINI_FPU_MANTISSA_BITS + 1:
                return SERVICE_MINI
        return SERVICE_L2

    def l1_rate(self, op: str, precision: int, conv_rate: float,
                ext_rate: float) -> float:
        """Fraction of ``op`` dynamic instances satisfied in 1 cycle."""
        if self.name == "conjoin":
            return 0.0
        base = ext_rate if self.uses_reduced_conditions else conv_rate
        if (op in ("add", "sub", "mul") and self.has_lookup
                and precision < LOOKUP_PRECISION_LIMIT):
            return 1.0  # everything the LUT sees is satisfied
        return base

    def mini_rate(self, op: str, precision: int, conv_rate: float,
                  ext_rate: float) -> float:
        """Fraction of ``op`` handled by the mini-FPU (after L1 checks)."""
        if not self.has_mini or op not in ("add", "sub", "mul"):
            return 0.0
        if precision > params.MINI_FPU_MANTISSA_BITS:
            return 0.0
        return 1.0 - self.l1_rate(op, precision, conv_rate, ext_rate)


CONJOIN = L1Design("conjoin", uses_reduced_conditions=False,
                   has_lookup=False)
CONV_TRIV = L1Design("conv_triv", uses_reduced_conditions=False,
                     has_lookup=False)
REDUCED_TRIV = L1Design("reduced_triv", uses_reduced_conditions=True,
                        has_lookup=False)
LOOKUP_TRIV = L1Design("lookup_triv", uses_reduced_conditions=True,
                       has_lookup=True)


def mini_fpu(shared_by: int = 1) -> L1Design:
    """The mini-FPU design, optionally sharing one mini among N cores."""
    if shared_by not in (1, 2, 4):
        raise ValueError("mini-FPU sharing must be 1, 2 or 4")
    return L1Design(f"mini_fpu_{shared_by}", uses_reduced_conditions=True,
                    has_lookup=False, mini_shared_by=shared_by)


ALL_DESIGNS = (CONJOIN, CONV_TRIV, REDUCED_TRIV, LOOKUP_TRIV)
