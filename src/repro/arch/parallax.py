"""ParallAX-style phase scheduling: work queues over fine-grain cores.

The paper's physics engine "parallelized ... using POSIX threads and a
work-queue model with persistent worker threads", and ParallAX feeds the
massively parallel phases to its fine-grain core array the same way:

* **Narrow-phase** — one work item per candidate geom pair ("object-pairs
  are independent of each other");
* **LCP** — one work item per island ("Each island is independent").

Per-core IPC (from :mod:`repro.arch.core`) tells how fast a core chews
instructions; this module adds the other half of phase runtime: how
evenly the *items* spread over the cores.  Small scenes expose the
classic limit — LCP parallelism saturates at the island count, while
narrow-phase keeps scaling with its much larger pair count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..physics.shapes import ShapeType

__all__ = [
    "QueueResult",
    "simulate_work_queue",
    "lcp_work_items",
    "narrow_work_items",
    "phase_speedup",
]

#: Relative narrow-phase cost per pair type (measured op-count ratios of
#: our contact generators; box-box SAT + clipping dominates).
PAIR_COST_WEIGHTS: Dict[frozenset, float] = {
    frozenset({"sphere"}): 1.0,
    frozenset({"sphere", "plane"}): 0.8,
    frozenset({"box", "plane"}): 2.5,
    frozenset({"box", "sphere"}): 2.0,
    frozenset({"box"}): 8.0,
}


@dataclass
class QueueResult:
    """Outcome of running a set of work items through a work queue."""

    makespan: float
    total_work: float
    cores: int

    @property
    def speedup(self) -> float:
        """vs running every item on a single core."""
        return self.total_work / self.makespan if self.makespan else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of core-time spent on items."""
        if not self.makespan or not self.cores:
            return 0.0
        return self.total_work / (self.makespan * self.cores)


def simulate_work_queue(
    costs: Sequence[float], cores: int
) -> QueueResult:
    """FIFO work queue with persistent workers (the engine's model).

    Items are pulled in submission order by whichever core frees first —
    no lookahead, exactly what a work-queue of persistent threads does.
    """
    if cores < 1:
        raise ValueError("need at least one core")
    total = float(sum(costs))
    if not costs:
        return QueueResult(makespan=0.0, total_work=0.0, cores=cores)
    free_at = [0.0] * min(cores, max(len(costs), 1))
    heapq.heapify(free_at)
    finish = 0.0
    for cost in costs:
        start = heapq.heappop(free_at)
        end = start + float(cost)
        finish = max(finish, end)
        heapq.heappush(free_at, end)
    return QueueResult(makespan=finish, total_work=total, cores=cores)


def lcp_work_items(world, intra_island_parallelism: int = 1) -> \
        List[float]:
    """Per-island LCP costs from the world's current constraint state.

    Cost model: rows x iterations (each island relaxes its own rows for
    the full iteration count).  Contacts involving the static world
    anchor to the dynamic body's island; joint rows likewise.

    ``intra_island_parallelism`` > 1 splits each island into that many
    work items, modelling the paper's observation that "the LCP solver
    for each island contains loosely coupled iterations of work" — the
    default of 1 (island granularity) is the conservative bound.
    """
    labels = world.island_labels
    if len(labels) == 0:
        return []
    rows_per_island: Dict[int, float] = {}

    def _credit(body_a: int, body_b: int, rows: float) -> None:
        for body in (body_a, body_b):
            if 0 <= body < len(labels) and labels[body] >= 0:
                island = int(labels[body])
                rows_per_island[island] = (
                    rows_per_island.get(island, 0.0) + rows)
                return  # one island per constraint

    # Recreate the same contact set the last step solved.
    from . import params  # noqa: F401  (kept for symmetry)
    from ..physics import broadphase, narrowphase

    aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                    world.bodies.view("rot"))
    pairs = broadphase.candidate_pairs(world.geoms, aabbs)
    contacts = narrowphase.generate_contacts(
        world.ctx, world.bodies, world.geoms, pairs)
    for a, b in zip(contacts.body_a, contacts.body_b):
        _credit(int(a), int(b), 3.0)  # normal + two friction rows
    for joint in world.joints.ball_joints:
        _credit(joint.body_a, joint.body_b, 3.0)
    for joint in world.joints.hinge_joints:
        _credit(joint.body_a, joint.body_b, 5.0)

    iterations = world.solver.iterations
    split = max(1, int(intra_island_parallelism))
    items = []
    for rows in rows_per_island.values():
        cost = rows * iterations
        items.extend([cost / split] * split)
    return items


def narrow_work_items(world) -> List[float]:
    """Per-candidate-pair narrow-phase costs (weighted by pair type)."""
    from ..physics import broadphase

    aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                    world.bodies.view("rot"))
    pairs = broadphase.candidate_pairs(world.geoms, aabbs)
    costs = []
    for i, j in pairs:
        kinds = frozenset({world.geoms[i].shape.value,
                           world.geoms[j].shape.value})
        costs.append(PAIR_COST_WEIGHTS.get(kinds, 2.0))
    return costs


def phase_speedup(
    items: Sequence[float], core_counts: Sequence[int]
) -> Dict[int, QueueResult]:
    """Work-queue results across a sweep of core counts."""
    return {cores: simulate_work_queue(items, cores)
            for cores in core_counts}
