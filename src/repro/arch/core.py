"""Cycle-level model of one fine-grain in-order core (Table 6).

The cores are single-issue and in-order with no dynamic scheduler:
"Instructions are dispatched in program order ... If the operation is
satisfied by the trivial or look-up table logic, then the operation
completes in 1 cycle.  If not, the pipeline stalls until the operation is
completed."  That makes per-core timing independent of the other cores in
the cluster (the round-robin slots are static), so a cluster's per-core
IPC is obtained by simulating one core per slot position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import params
from .arbiter import RoundRobinArbiter
from .l1fpu import L1Design, SERVICE_L1, SERVICE_L2, SERVICE_MINI
from .trace import Trace

__all__ = ["CoreResult", "simulate_core", "cluster_ipc", "analytic_cpi"]


@dataclass
class CoreResult:
    """Timing outcome of replaying one trace on one core."""

    instructions: int
    cycles: int
    l1_satisfied: int
    mini_satisfied: int
    l2_ops: int
    fp_ops: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_rate(self) -> float:
        return self.l1_satisfied / self.fp_ops if self.fp_ops else 0.0


def simulate_core(
    trace: Trace,
    design: L1Design,
    cores_per_fpu: int,
    slot: int = 0,
    interconnect: Optional[int] = None,
) -> CoreResult:
    """Replay ``trace`` cycle by cycle on one core of an HFPU cluster.

    ``interconnect`` overrides the Table 7 wire latency (Figure 8's
    sensitivity sweep uses this).
    """
    if interconnect is None:
        interconnect = params.interconnect_latency(cores_per_fpu)
    arbiter = RoundRobinArbiter(cores_per_fpu, slot % cores_per_fpu)
    mini_arbiter = (
        RoundRobinArbiter(design.mini_shared_by,
                          slot % design.mini_shared_by)
        if design.mini_shared_by > 1 else None
    )

    fp_alu = params.CORE.fp_alu_latency
    fp_div = params.CORE.fp_div_latency
    ops = Trace.OPS

    cycle = 0
    l1_hits = mini_hits = l2_ops = fp_ops = 0

    op_index = trace.op_index
    conv = trace.conv_trivial
    ext = trace.ext_trivial
    precision = trace.precision

    for i in range(len(op_index)):
        k = op_index[i]
        if k < 0:
            cycle += 1  # int / memory op on 1-cycle local storage
            continue
        fp_ops += 1
        op = ops[k]
        service = design.service(op, precision, bool(conv[i]), bool(ext[i]))
        if service == SERVICE_L1:
            l1_hits += 1
            cycle += params.L1_HIT_LATENCY
        elif service == SERVICE_MINI:
            mini_hits += 1
            wait = (mini_arbiter.pipelined_wait(cycle)
                    if mini_arbiter else 0)
            cycle += wait + params.MINI_FPU_LATENCY
        else:
            l2_ops += 1
            if op == "div":
                wait = arbiter.divide_wait(cycle)
                cycle += wait + interconnect + fp_div
            else:
                wait = arbiter.pipelined_wait(cycle)
                cycle += wait + interconnect + fp_alu

    return CoreResult(
        instructions=len(op_index),
        cycles=cycle,
        l1_satisfied=l1_hits,
        mini_satisfied=mini_hits,
        l2_ops=l2_ops,
        fp_ops=fp_ops,
    )


def cluster_ipc(
    trace: Trace,
    design: L1Design,
    cores_per_fpu: int,
    interconnect: Optional[int] = None,
) -> float:
    """Average per-core IPC across the cluster's slot positions."""
    total = 0.0
    for slot in range(cores_per_fpu):
        total += simulate_core(trace, design, cores_per_fpu, slot,
                               interconnect).ipc
    return total / cores_per_fpu


def analytic_cpi(
    workload,
    design: L1Design,
    cores_per_fpu: int,
    interconnect: Optional[int] = None,
) -> float:
    """Closed-form expected CPI (validates the cycle simulator).

    Expected cost per instruction under uniform arrival phases:
    ``(1-f) * 1 + f * E[fp cost]`` with the Table 7 latency components.
    """
    if interconnect is None:
        interconnect = params.interconnect_latency(cores_per_fpu)
    arbiter = RoundRobinArbiter(cores_per_fpu)
    mini_wait = ((design.mini_shared_by - 1) / 2.0
                 if design.mini_shared_by > 1 else 0.0)

    expected_fp = 0.0
    for op, profile in workload.ops.items():
        if profile.share == 0:
            continue
        l1 = design.l1_rate(op, workload.precision,
                            profile.conv_trivial_rate,
                            profile.ext_trivial_rate)
        mini = design.mini_rate(op, workload.precision,
                                profile.conv_trivial_rate,
                                profile.ext_trivial_rate)
        l2 = max(0.0, 1.0 - l1 - mini)
        if op == "div":
            # Divides never use the LUT or mini-FPU; only trivialization.
            l1 = (0.0 if design.name == "conjoin"
                  else (profile.ext_trivial_rate
                        if design.uses_reduced_conditions
                        else profile.conv_trivial_rate))
            mini = 0.0
            l2 = 1.0 - l1
            l2_cost = (arbiter.expected_divide_wait() + interconnect
                       + params.CORE.fp_div_latency)
        else:
            l2_cost = (arbiter.expected_pipelined_wait() + interconnect
                       + params.CORE.fp_alu_latency)
        cost = (l1 * params.L1_HIT_LATENCY
                + mini * (mini_wait + params.MINI_FPU_LATENCY)
                + l2 * l2_cost)
        expected_fp += profile.share * cost

    f = workload.fp_fraction
    return (1.0 - f) * 1.0 + f * expected_fp
