"""Figure 8 — sensitivity to added FPU sharing latency.

"The baseline for these figures is the performance of the Lookup Table +
Reduced Precision Trivialization sharing one FPU among two cores" at its
nominal 0-cycle interconnect; the HFPU4 configuration is swept over 1-4
cycles of added latency.  LCP is more sensitive than narrow-phase, and
for the most aggressively sized FPUs the 4-way advantage erodes past a
single cycle.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..arch import params
from ..arch.area import cores_in_same_area
from ..arch.core import cluster_ipc
from ..arch.l1fpu import LOOKUP_TRIV
from ..arch.trace import PhaseWorkload, generate_trace
from .common import PHASES, all_workloads
from .report import render_table

__all__ = ["Figure8Result", "compute_figure8", "render"]

TRACE_LENGTH = 12_000
LATENCIES = (1, 2, 3, 4)


@dataclass
class Figure8Result:
    """improvement[phase][(fpu_area, latency)] of HFPU4 vs HFPU2@0."""

    improvement: Dict[str, Dict[Tuple[float, int], float]]


def compute_figure8(
    workloads: Optional[Mapping[str, Mapping[str, PhaseWorkload]]] = None,
    fpu_areas: Iterable[float] = params.FPU_AREAS_MM2,
    latencies: Iterable[int] = LATENCIES,
    trace_length: int = TRACE_LENGTH,
) -> Figure8Result:
    workloads = workloads or all_workloads()
    improvement: Dict[str, Dict] = {phase: {} for phase in PHASES}
    design = LOOKUP_TRIV

    for phase in PHASES:
        ipc2: Dict[str, float] = {}
        ipc4: Dict[Tuple[str, int], float] = {}
        for scenario, phases in workloads.items():
            trace = generate_trace(phases[phase], trace_length,
                                   seed=zlib.crc32(scenario.encode()))
            ipc2[scenario] = cluster_ipc(trace, design, 2, interconnect=0)
            for latency in latencies:
                ipc4[(scenario, latency)] = cluster_ipc(
                    trace, design, 4, interconnect=latency)

        for area in fpu_areas:
            cores2 = cores_in_same_area(area, 2, design)
            cores4 = cores_in_same_area(area, 4, design)
            for latency in latencies:
                values = [
                    (cores4 * ipc4[(s, latency)])
                    / (cores2 * ipc2[s]) - 1.0
                    for s in workloads
                ]
                improvement[phase][(area, latency)] = (
                    sum(values) / len(values))
    return Figure8Result(improvement=improvement)


def render(result: Figure8Result, phase: str) -> str:
    areas = sorted({k[0] for k in result.improvement[phase]}, reverse=True)
    latencies = sorted({k[1] for k in result.improvement[phase]})
    rows = []
    for area in areas:
        row = [f"{area:g}"]
        for latency in latencies:
            value = result.improvement[phase][(area, latency)]
            row.append(f"{100 * value:+.1f}%")
        rows.append(row)
    label = "LCP" if phase == "lcp" else "Narrow-phase"
    return render_table(
        ["FPU mm2"] + [f"HFPU4 {c}-cycle" for c in latencies], rows,
        title=f"Figure 8 ({label}): HFPU4 throughput vs HFPU2 0-cycle")
