"""Figure 7 — mini-FPU designs vs the best low-overhead L1.

The 14-bit mini-FPU has the best per-core IPC (1 cycle less latency and
broad precision coverage) but its area overhead packs fewer cores, so
aggregate throughput usually trails the Lookup design; sharing the mini
among 2 or 4 cores claws area back.  "We limit our exploration to
configurations where the L2 FPU is shared by at least as many cores as
the L1 [mini-FPU]."
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..arch import params
from ..arch.area import cores_in_same_area
from ..arch.core import cluster_ipc
from ..arch.l1fpu import CONJOIN, LOOKUP_TRIV, L1Design, mini_fpu
from ..arch.trace import PhaseWorkload, generate_trace
from .common import PHASES, all_workloads
from .report import render_table

__all__ = ["Figure7Result", "compute_figure7", "render"]

TRACE_LENGTH = 12_000


def _designs() -> Tuple[L1Design, ...]:
    return (LOOKUP_TRIV, mini_fpu(1), mini_fpu(2), mini_fpu(4))


@dataclass
class Figure7Result:
    """improvement[phase][(fpu_area, design_name, l2_sharing)]"""

    improvement: Dict[str, Dict[Tuple[float, str, int], float]]


def compute_figure7(
    workloads: Optional[Mapping[str, Mapping[str, PhaseWorkload]]] = None,
    fpu_areas: Iterable[float] = params.FPU_AREAS_MM2,
    sharing: Iterable[int] = (1, 2, 4, 8),
    trace_length: int = TRACE_LENGTH,
) -> Figure7Result:
    workloads = workloads or all_workloads()
    designs = _designs()
    improvement: Dict[str, Dict] = {phase: {} for phase in PHASES}

    for phase in PHASES:
        ipc_cache: Dict[Tuple[str, str, int], float] = {}
        baselines: Dict[str, float] = {}
        for scenario, phases in workloads.items():
            workload = phases[phase]
            trace = generate_trace(workload, trace_length,
                                   seed=zlib.crc32(scenario.encode()))
            baselines[scenario] = (
                params.BASELINE_CORES * cluster_ipc(trace, CONJOIN, 1))
            for design in designs:
                for n in sharing:
                    if design.mini_shared_by > n > 0:
                        continue  # L2 must be shared at least as widely
                    ipc_cache[(scenario, design.name, n)] = cluster_ipc(
                        trace, design, n)

        for design in designs:
            for n in sharing:
                if design.mini_shared_by > n > 0:
                    continue
                for area in fpu_areas:
                    cores = cores_in_same_area(area, n, design)
                    values = [
                        cores * ipc_cache[(s, design.name, n)]
                        / baselines[s] - 1.0
                        for s in workloads
                    ]
                    improvement[phase][(area, design.name, n)] = (
                        sum(values) / len(values))
    return Figure7Result(improvement=improvement)


def render(result: Figure7Result, phase: str) -> str:
    designs = [d.name for d in _designs()]
    areas = sorted({k[0] for k in result.improvement[phase]}, reverse=True)
    sharing = sorted({k[2] for k in result.improvement[phase]})
    rows = []
    for area in areas:
        for n in sharing:
            row = [f"{area:g}", n]
            for name in designs:
                value = result.improvement[phase].get((area, name, n))
                row.append("-" if value is None else f"{100 * value:+.1f}%")
            rows.append(row)
    label = "LCP" if phase == "lcp" else "Narrow-phase"
    return render_table(
        ["FPU mm2", "cores/full-FPU"] + designs, rows,
        title=f"Figure 7 ({label}): mini-FPU vs Lookup throughput "
              "improvement")
