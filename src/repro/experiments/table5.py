"""Table 5 — lookup table vs memoization tables.

The structural comparison (latency / energy / area, Cacti-derived) comes
straight from the paper's constants; on top of that this module validates
the functional claim behind the lookup table: at fewer than six mantissa
bits the 2K-entry table *covers all operand combinations* and its output
tracks direct reduced-precision execution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..arch import params
from ..fp.bits import float_to_bits, mantissa_field
from ..fp.rounding import RoundingMode, reduce_scalar
from ..memo.lookup_table import LookupTable
from .report import render_table

__all__ = ["Table5Result", "compute_table5", "render"]


@dataclass
class Table5Result:
    lookup_latency_ns: float
    lookup_energy_nj: float
    lookup_area_mm2: float
    memo_latency_ns: float
    memo_energy_nj: float
    memo_area_mm2: float
    #: functional validation at 5-bit precision
    mul_exact_fraction: float
    add_exact_fraction: float
    mul_max_ulp: float
    add_max_ulp: float

    @property
    def area_reduction(self) -> float:
        """Paper: "the area requirement is reduced by 77%"."""
        return 1.0 - self.lookup_area_mm2 / self.memo_area_mm2


def _ulp_distance(a: float, b: float, precision: int) -> float:
    """Distance in reduced-precision ulps between two values."""
    if a == b:
        return 0.0
    if a == 0.0 or b == 0.0:
        return abs(a - b) / max(abs(a), abs(b), 1e-30) * (1 << precision)
    exp = np.floor(np.log2(max(abs(a), abs(b))))
    ulp = 2.0 ** (exp - precision)
    return abs(a - b) / ulp


def compute_table5(precision: int = 5) -> Table5Result:
    """Constants plus exhaustive LUT-vs-direct validation."""
    mode = RoundingMode.JAMMING
    lut = LookupTable(precision, mode)

    # Exhaustive over the reduced operand space at one exponent band plus
    # a few exponent offsets (the table is mantissa-indexed; exponent
    # logic is external and exact).
    mul_errors, add_errors = [], []
    mul_exact = add_exact = mul_total = add_total = 0
    for a5, b5 in itertools.product(range(32), repeat=2):
        for exp_b in (0, 1, 3):
            a = (1.0 + a5 / 32.0) * 2.0
            b = (1.0 + b5 / 32.0) * 2.0 ** exp_b
            direct_mul = reduce_scalar(np.float32(a) * np.float32(b),
                                       precision, mode)
            lut_mul = lut.compute_mul(a, b)
            mul_errors.append(_ulp_distance(direct_mul, lut_mul, precision))
            mul_exact += direct_mul == lut_mul
            mul_total += 1

            direct_add = reduce_scalar(np.float32(a) + np.float32(b),
                                       precision, mode)
            lut_add = lut.compute_add(a, b)
            add_errors.append(_ulp_distance(direct_add, lut_add, precision))
            add_exact += direct_add == lut_add
            add_total += 1

    return Table5Result(
        lookup_latency_ns=params.LOOKUP_LATENCY_NS,
        lookup_energy_nj=params.LOOKUP_ENERGY_NJ,
        lookup_area_mm2=params.LOOKUP_TABLE_AREA_MM2,
        memo_latency_ns=params.MEMO_LATENCY_NS,
        memo_energy_nj=params.MEMO_ENERGY_NJ,
        memo_area_mm2=params.MEMO_AREA_MM2,
        mul_exact_fraction=mul_exact / mul_total,
        add_exact_fraction=add_exact / add_total,
        mul_max_ulp=max(mul_errors),
        add_max_ulp=max(add_errors),
    )


def render(result: Table5Result) -> str:
    rows = [
        ["Lookup", f"{result.lookup_latency_ns:.2f}",
         f"{result.lookup_energy_nj:.2f}", f"{result.lookup_area_mm2:.2f}"],
        ["Memo", f"{result.memo_latency_ns:.2f}",
         f"{result.memo_energy_nj:.2f}", f"{result.memo_area_mm2:.2f}"],
    ]
    table = render_table(
        ["Table Type", "Latency (ns)", "Energy (nJ)", "Area (mm2)"],
        rows, title="Table 5: lookup vs memoization table")
    extra = (
        f"\narea reduction: {100 * result.area_reduction:.0f}% "
        f"(paper: 77%)"
        f"\nLUT functional check @5 bits: mul exact "
        f"{100 * result.mul_exact_fraction:.1f}% "
        f"(max {result.mul_max_ulp:.2f} ulp), add exact "
        f"{100 * result.add_exact_fraction:.1f}% "
        f"(max {result.add_max_ulp:.2f} ulp)"
    )
    return table + extra
