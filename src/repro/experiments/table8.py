"""Table 8 — evaluated designs: area overhead and per-core IPC.

Per-core area overhead is the L1 hardware added to the 2 mm^2 core;
per-core IPC is reported at 4 cores per L2 FPU for both studied phases,
averaged across the eight scenarios (the paper's Avg Per Core IPC
column).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..arch import params
from ..arch.core import cluster_ipc
from ..arch.l1fpu import (
    CONJOIN,
    CONV_TRIV,
    LOOKUP_TRIV,
    REDUCED_TRIV,
    L1Design,
    mini_fpu,
)
from ..arch.trace import PhaseWorkload, generate_trace
from .common import PHASES, all_workloads
from .report import render_table

__all__ = ["PAPER_TABLE8_IPC", "Table8Row", "compute_table8", "render"]

#: Paper Table 8 "Avg Per Core IPC, 4 Cores Per L2-FPU": (narrow, lcp).
PAPER_TABLE8_IPC = {
    "conjoin": (0.347, 0.293),
    "conv_triv": (0.376, 0.319),
    "reduced_triv": (0.377, 0.334),
    "lookup_triv": (0.377, 0.357),
    "mini_fpu_1": (0.382, 0.364),
}

TRACE_LENGTH = 12_000
_SHARING = 4


@dataclass
class Table8Row:
    design: str
    area_overhead: str
    narrow_ipc: float
    lcp_ipc: float


def _area_label(design: L1Design) -> str:
    if design.name == "conjoin":
        return "--"
    if design.name == "conv_triv":
        return f"{params.CONV_TRIV_AREA_MM2:g}"
    if design.name == "reduced_triv":
        return f"{params.REDUCED_TRIV_AREA_MM2:g}"
    if design.name == "lookup_triv":
        return (f"{params.REDUCED_TRIV_AREA_MM2:g} + "
                f"{params.LOOKUP_TABLE_AREA_MM2:g}")
    return (f"{params.REDUCED_TRIV_AREA_MM2:g} + "
            f"({params.MINI_FPU_AREA_FACTOR:g} x FP Area"
            + (f" / {design.mini_shared_by}" if design.mini_shared_by > 1
               else "") + ")")


def compute_table8(
    workloads: Optional[Mapping[str, Mapping[str, PhaseWorkload]]] = None,
    trace_length: int = TRACE_LENGTH,
) -> List[Table8Row]:
    workloads = workloads or all_workloads()
    designs = (CONJOIN, CONV_TRIV, REDUCED_TRIV, LOOKUP_TRIV, mini_fpu(1))

    rows = []
    for design in designs:
        ipc: Dict[str, float] = {}
        for phase in PHASES:
            values = []
            for scenario, phases in workloads.items():
                trace = generate_trace(phases[phase], trace_length,
                                       seed=zlib.crc32(scenario.encode()))
                values.append(cluster_ipc(trace, design, _SHARING))
            ipc[phase] = sum(values) / len(values)
        rows.append(Table8Row(
            design=design.name,
            area_overhead=_area_label(design),
            narrow_ipc=ipc["narrow"],
            lcp_ipc=ipc["lcp"],
        ))
    return rows


def render(rows: List[Table8Row]) -> str:
    table = []
    for row in rows:
        paper = PAPER_TABLE8_IPC.get(row.design)
        table.append([
            row.design,
            row.area_overhead,
            f"{row.narrow_ipc:.3f}",
            f"{row.lcp_ipc:.3f}",
            f"{paper[0]:.3f}, {paper[1]:.3f}" if paper else "-",
        ])
    return render_table(
        ["Architecture", "Area overhead/core (mm2)", "Narrow IPC",
         "LCP IPC", "paper (NP, LCP)"],
        table,
        title="Table 8: evaluated designs (4 cores per L2 FPU)")
