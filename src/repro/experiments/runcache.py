"""Cached instrumented scenario runs shared by all experiments.

Several tables/figures consume the same expensive artifacts:

* **census runs** — a scenario simulated with the trivialization census
  (and optionally memoization tables) enabled, yielding per-(phase, op)
  totals and hit counts;
* **tuned precisions** — the Table 1 minimum-precision search results.

Both are memoized in memory and persisted as JSON under the cache
directory (``REPRO_CACHE_DIR`` env var, default ``.repro_cache`` in the
working directory) so re-running a benchmark does not repeat hours of
simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from ..fp.context import FPContext, OpCounter
from ..fp.rounding import RoundingMode
from ..memo.memo_table import MemoBank
from ..workloads import build, default_steps

__all__ = ["cache_dir", "census_stats", "cached_json",
           "write_json_atomic", "StatsDict"]

StatsDict = Dict[Tuple[str, str], OpCounter]

_MEMORY_CACHE: Dict[str, StatsDict] = {}
#: guards the in-memory layer (sweep results can land from pool-callback
#: threads while the main thread reads)
_MEMORY_LOCK = threading.Lock()

_JSON_CACHE: Dict[str, dict] = {}
_JSON_LOCK = threading.Lock()


def write_json_atomic(path, payload: dict) -> None:
    """Persist ``payload`` via temp-file-then-rename.

    ``os.replace`` is atomic on POSIX, so concurrent sweep workers
    writing the same cache entry can never leave a torn file for a
    reader to trip over — last writer wins with a complete document.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def cache_dir() -> Path:
    """Directory for persisted experiment artifacts."""
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


def _serialize(stats: StatsDict) -> dict:
    return {
        f"{phase}|{op}": [c.total, c.conventional_trivial,
                          c.extended_trivial, c.memo_lookups, c.memo_hits]
        for (phase, op), c in stats.items()
    }


def _deserialize(payload: dict) -> StatsDict:
    stats: StatsDict = {}
    for key, values in payload.items():
        phase, op = key.split("|", 1)
        stats[(phase, op)] = OpCounter(*values)
    return stats


def cached_json(kind: str, params: dict, compute,
                use_cache: bool = True) -> dict:
    """Memoize an arbitrary JSON-valued computation by parameter tuple.

    ``params`` must be JSON-serializable and fully determine the result;
    ``compute()`` runs on a miss and must return a JSON-serializable
    dict.  Entries share the census cache's layout: an in-memory layer
    plus a ``{kind}_{key}.json`` file written atomically, so concurrent
    sweep workers (processes *and* threads) can race on the same entry
    safely.  ``use_cache=False`` bypasses both layers without poisoning
    them (the fresh result is still stored for later hits).
    """
    key = _key({"kind": kind, **params})
    if use_cache:
        with _JSON_LOCK:
            cached = _JSON_CACHE.get(key)
        if cached is not None:
            return cached
        path = cache_dir() / f"{kind}_{key}.json"
        if path.exists():
            try:
                with path.open() as handle:
                    result = json.load(handle)["result"]
            except (OSError, ValueError, KeyError):
                result = None  # unreadable/corrupt entry: recompute
            if result is not None:
                with _JSON_LOCK:
                    _JSON_CACHE[key] = result
                return result
    result = compute()
    write_json_atomic(cache_dir() / f"{kind}_{key}.json",
                      {"params": {"kind": kind, **params},
                       "result": result})
    with _JSON_LOCK:
        _JSON_CACHE[key] = result
    return result


def census_stats(
    scenario: str,
    phase_precision: Optional[Mapping[str, int]] = None,
    mode: str = "jam",
    steps: Optional[int] = None,
    scale: float = 1.0,
    memo: bool = False,
    memo_budget: int = 400_000,
) -> StatsDict:
    """Instrumented run returning per-(phase, op) census counters.

    Results are cached by the full parameter tuple; delete the cache
    directory to force re-simulation.
    """
    steps = default_steps() if steps is None else steps
    mode = RoundingMode.parse(mode)
    payload = {
        "kind": "census",
        "scenario": scenario,
        "precision": dict(phase_precision or {}),
        "mode": mode.value,
        "steps": steps,
        "scale": scale,
        "memo": memo,
        "memo_budget": memo_budget if memo else 0,
    }
    key = _key(payload)
    with _MEMORY_LOCK:
        cached = _MEMORY_CACHE.get(key)
    if cached is not None:
        return cached

    path = cache_dir() / f"census_{key}.json"
    if path.exists():
        try:
            with path.open() as handle:
                stats = _deserialize(json.load(handle)["stats"])
        except (OSError, ValueError, KeyError):
            stats = None  # unreadable/corrupt entry: re-simulate
        if stats is not None:
            with _MEMORY_LOCK:
                _MEMORY_CACHE[key] = stats
            return stats

    ctx = FPContext(
        phase_precision,
        mode=mode,
        memo=MemoBank() if memo else None,
        memo_budget=memo_budget if memo else None,
        census=True,
    )
    world = build(scenario, ctx=ctx, scale=scale)
    for _ in range(steps):
        world.step()
    stats = ctx.stats

    write_json_atomic(path, {"params": payload, "stats": _serialize(stats)})
    with _MEMORY_LOCK:
        _MEMORY_CACHE[key] = stats
    return stats
