"""Figure 6 — (a) core counts per configuration, (b) trivialization and
FP energy reduction.

(a) is pure area arithmetic: the cores that fit in the same die area as
the 128-core baseline, per FPU size, sharing degree and L1 design.
(b) measures, for the Conv Triv (C), Reduced Triv (R) and Lookup (L)
designs, the percentage of FP operations satisfied without the full FPU
and the resulting dynamic-energy reduction, per phase, averaged across
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..arch import params
from ..arch.area import cores_in_same_area
from ..arch.energy import energy_reduction, trivialized_fraction
from ..arch.l1fpu import (
    CONJOIN,
    CONV_TRIV,
    LOOKUP_TRIV,
    REDUCED_TRIV,
    L1Design,
    mini_fpu,
)
from ..arch.trace import PhaseWorkload
from .common import PHASES, all_workloads
from .report import render_table

__all__ = ["compute_core_counts", "compute_energy", "Figure6bResult",
           "render_cores", "render_energy"]

#: Paper: total FP energy reduced by 50 % for LCP, 27 % for narrow-phase.
PAPER_ENERGY_REDUCTION = {"lcp": 0.50, "narrow": 0.27}
#: Paper: the HFPU design trivializes 53 % of FP operations in LCP.
PAPER_LCP_TRIVIALIZED = 0.53

_B_DESIGNS = (CONV_TRIV, REDUCED_TRIV, LOOKUP_TRIV)


def compute_core_counts(
    fpu_areas: Iterable[float] = params.FPU_AREAS_MM2,
    sharing: Iterable[int] = (1, 2, 4, 8),
) -> Dict[Tuple[float, str, int], int]:
    """Figure 6a: cores in the baseline die area per configuration.

    Conjoin / Conv Triv / Reduced Triv share one curve in the paper
    (their area overheads are negligible at plot resolution); the lookup
    and mini-FPU designs get their own.
    """
    counts: Dict[Tuple[float, str, int], int] = {}
    designs = [CONJOIN, LOOKUP_TRIV, mini_fpu(1), mini_fpu(2), mini_fpu(4)]
    for area in fpu_areas:
        for design in designs:
            for n in sharing:
                counts[(area, design.name, n)] = cores_in_same_area(
                    area, n, design)
    return counts


@dataclass
class Figure6bResult:
    """Per phase and per design: mean trivialized fraction and energy
    reduction across scenarios."""

    trivialized: Dict[str, Dict[str, float]]
    energy_reduction: Dict[str, Dict[str, float]]


def compute_energy(
    workloads: Optional[Mapping[str, Mapping[str, PhaseWorkload]]] = None,
) -> Figure6bResult:
    """Figure 6b."""
    workloads = workloads or all_workloads()
    trivialized: Dict[str, Dict[str, float]] = {}
    reduction: Dict[str, Dict[str, float]] = {}
    for phase in PHASES:
        trivialized[phase] = {}
        reduction[phase] = {}
        for design in _B_DESIGNS:
            triv_values, energy_values = [], []
            for scenario, phases in workloads.items():
                workload = phases[phase]
                triv_values.append(trivialized_fraction(workload, design))
                energy_values.append(energy_reduction(workload, design))
            trivialized[phase][design.name] = (
                sum(triv_values) / len(triv_values))
            reduction[phase][design.name] = (
                sum(energy_values) / len(energy_values))
    return Figure6bResult(trivialized=trivialized,
                          energy_reduction=reduction)


def render_cores(counts: Mapping[Tuple[float, str, int], int]) -> str:
    areas = sorted({k[0] for k in counts}, reverse=True)
    sharing = sorted({k[2] for k in counts})
    designs = ["conjoin", "lookup_triv", "mini_fpu_1", "mini_fpu_2",
               "mini_fpu_4"]
    rows = []
    for area in areas:
        for n in sharing:
            rows.append([f"{area:g}", n] + [
                counts.get((area, d, n), "-") for d in designs])
    return render_table(
        ["FPU mm2", "cores/FPU"] + designs, rows,
        title="Figure 6a: total cores in the 128-core baseline die area")


def render_energy(result: Figure6bResult) -> str:
    rows = []
    for phase in PHASES:
        for design in _B_DESIGNS:
            rows.append([
                phase,
                {"conv_triv": "C", "reduced_triv": "R",
                 "lookup_triv": "L"}[design.name],
                f"{100 * result.trivialized[phase][design.name]:.0f}%",
                f"{100 * result.energy_reduction[phase][design.name]:.0f}%",
            ])
    table = render_table(
        ["Phase", "Design", "% trivialized", "% energy reduction"], rows,
        title="Figure 6b: FP computation trivialized and energy reduction")
    notes = (
        f"\npaper: LCP L-design trivializes ~53%, energy reduction "
        f"LCP ~50%, narrow-phase ~27%"
    )
    return table + notes
