"""Table 4 — percent of FP adds/multiplies trivialized or memoized.

"Based on simulations of the latest PhysicsBench with object-disabling
and round-to-nearest ... we have compiled the trivialization hit-rate
with full precision using conventional conditions versus reduced
precision with all conditions ... for LCP."  Memoization uses the two
256-entry 16-way tables; trivializable operations are filtered before the
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from ..perf.sweep import SweepJob, SweepRunner
from ..workloads import SCENARIO_ABBREVIATIONS, SCENARIO_NAMES, default_steps
from .report import render_table
from .runcache import census_stats
from .table1 import tuned_precisions

__all__ = ["PAPER_TABLE4", "Table4Row", "compute_table4", "render"]

#: Paper Table 4, percentages: (trivial add, trivial mul, memo add,
#: memo mul) at 23-bit then reduced precision.
PAPER_TABLE4 = {
    "breakable": ((36, 34, 0, 2), (48, 41, 1, 8)),
    "continuous": ((49, 43, 0, 1), (71, 62, 8, 38)),
    "deformable": ((32, 31, 0, 2), (61, 64, 7, 35)),
    "everything": ((35, 33, 0, 3), (43, 38, 1, 6)),
    "explosions": ((28, 25, 0, 7), (38, 29, 1, 10)),
    "highspeed": ((27, 23, 0, 8), (54, 49, 11, 51)),
    "periodic": ((32, 32, 0, 0), (34, 34, 0, 0)),
    "ragdoll": ((34, 33, 0, 0), (52, 53, 2, 28)),
}

_PHASE = "lcp"


@dataclass
class Table4Row:
    """Measured percentages for one scenario (LCP phase)."""

    scenario: str
    trivial_add_full: float
    trivial_mul_full: float
    trivial_add_reduced: float
    trivial_mul_reduced: float
    memo_add_full: float
    memo_mul_full: float
    memo_add_reduced: float
    memo_mul_reduced: float
    #: memo table hit rates (hits / lookups), full vs reduced precision —
    #: the operand-space-collapse signal independent of how much
    #: trivialization already filtered.
    memo_add_hitrate_full: float = 0.0
    memo_mul_hitrate_full: float = 0.0
    memo_add_hitrate_reduced: float = 0.0
    memo_mul_hitrate_reduced: float = 0.0


def _rates(stats, op: str, extended: bool):
    """(trivial %, memo % of total ops, memo hit rate %) per op class.

    Adds and subtracts share hardware (and the paper's "add" numbers), so
    their counters merge.
    """
    ops = ("add", "sub") if op == "add" else (op,)
    total = trivial = hits = lookups = raw_hits = 0
    for name in ops:
        counter = stats.get((_PHASE, name))
        if counter is None:
            continue
        total += counter.total
        trivial += (counter.extended_trivial if extended
                    else counter.conventional_trivial)
        if counter.memo_lookups:
            # Scale sampled memo hits up to the full non-trivial stream.
            nontrivial = counter.total - counter.extended_trivial
            hits += (counter.memo_hits / counter.memo_lookups) * nontrivial
            lookups += counter.memo_lookups
            raw_hits += counter.memo_hits
    if total == 0:
        return 0.0, 0.0, 0.0
    hitrate = 100.0 * raw_hits / lookups if lookups else 0.0
    return 100.0 * trivial / total, 100.0 * hits / total, hitrate


def compute_table4(
    scenarios: Optional[Iterable[str]] = None,
    tuned_map: Optional[Mapping[str, Mapping[str, int]]] = None,
    steps: Optional[int] = None,
    scale: float = 1.0,
    mode: str = "rn",
    workers: Optional[int] = None,
) -> Dict[str, Table4Row]:
    """Measure trivialization and memoization rates per scenario.

    The full- and reduced-precision census runs for every scenario are
    independent, so all ``2 × len(scenarios)`` simulations fan out over
    a :class:`~repro.perf.sweep.SweepRunner`; the persistent run cache
    stays coherent because workers write entries atomically.
    """
    scenarios = list(scenarios or SCENARIO_NAMES)
    tuned_map = tuned_map or tuned_precisions()
    steps = default_steps() if steps is None else steps

    runner = SweepRunner(workers)
    jobs = []
    for scenario in scenarios:
        jobs.append(SweepJob(
            key=(scenario, "full"), fn=census_stats,
            args=(scenario, None, mode, steps, scale),
            kwargs=dict(memo=True)))
        jobs.append(SweepJob(
            key=(scenario, "reduced"), fn=census_stats,
            args=(scenario, dict(tuned_map[scenario]), mode, steps, scale),
            kwargs=dict(memo=True)))
    stats_by_key = {r.key: r.value for r in runner.run(jobs)}

    rows: Dict[str, Table4Row] = {}
    for scenario in scenarios:
        full = stats_by_key[(scenario, "full")]
        reduced = stats_by_key[(scenario, "reduced")]
        ta_f, ma_f, ha_f = _rates(full, "add", extended=False)
        tm_f, mm_f, hm_f = _rates(full, "mul", extended=False)
        ta_r, ma_r, ha_r = _rates(reduced, "add", extended=True)
        tm_r, mm_r, hm_r = _rates(reduced, "mul", extended=True)
        rows[scenario] = Table4Row(
            scenario=scenario,
            trivial_add_full=ta_f, trivial_mul_full=tm_f,
            trivial_add_reduced=ta_r, trivial_mul_reduced=tm_r,
            memo_add_full=ma_f, memo_mul_full=mm_f,
            memo_add_reduced=ma_r, memo_mul_reduced=mm_r,
            memo_add_hitrate_full=ha_f, memo_mul_hitrate_full=hm_f,
            memo_add_hitrate_reduced=ha_r, memo_mul_hitrate_reduced=hm_r,
        )
    return rows


def render(rows: Mapping[str, Table4Row]) -> str:
    headers = ["Bench",
               "Triv A/M 23b", "Triv A/M red",
               "Memo A/M 23b", "Memo A/M red",
               "MemoHit A/M 23b", "MemoHit A/M red",
               "paper triv 23b/red", "paper memo 23b/red"]
    table = []
    for scenario, row in rows.items():
        paper_full, paper_red = PAPER_TABLE4[scenario]
        table.append([
            SCENARIO_ABBREVIATIONS.get(scenario, scenario[:3]),
            f"{row.trivial_add_full:.0f},{row.trivial_mul_full:.0f}",
            f"{row.trivial_add_reduced:.0f},{row.trivial_mul_reduced:.0f}",
            f"{row.memo_add_full:.0f},{row.memo_mul_full:.0f}",
            f"{row.memo_add_reduced:.0f},{row.memo_mul_reduced:.0f}",
            (f"{row.memo_add_hitrate_full:.0f},"
             f"{row.memo_mul_hitrate_full:.0f}"),
            (f"{row.memo_add_hitrate_reduced:.0f},"
             f"{row.memo_mul_hitrate_reduced:.0f}"),
            (f"{paper_full[0]},{paper_full[1]} / "
             f"{paper_red[0]},{paper_red[1]}"),
            (f"{paper_full[2]},{paper_full[3]} / "
             f"{paper_red[2]},{paper_red[3]}"),
        ])
    return render_table(
        headers, table,
        title="Table 4: % FP trivialized or memoized (LCP), add/mul")
