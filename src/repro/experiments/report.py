"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_percent"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (benchmarks print these)."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_percent(value: float, signed: bool = True) -> str:
    """Format a fraction as a percentage string."""
    pct = 100.0 * value
    return f"{pct:+.1f}%" if signed else f"{pct:.1f}%"
