"""Table 3 — scenario factors that increase trivialization.

The paper derives these factors "from directed tests using two rigid
bodies".  Each factor here is a pair of miniature scenes differing only
in the factor; we measure the LCP add+mul trivialization rate (all
conditions, reduced precision) in both and report the delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..fp.context import FPContext
from ..physics import SleepParams, World
from ..physics.joints import WORLD
from .report import render_table

__all__ = ["FACTORS", "DirectedResult", "compute_table3", "render"]

_PRECISION = {"lcp": 8, "narrow": 8}
#: Short window so both scenes are measured during live dynamics (long
#: windows converge to "everything at rest", washing out the factor).
_STEPS = 25


def _measure(build: Callable[[World], None]) -> float:
    """Percent of LCP adds+muls trivialized in a directed scene.

    Object disabling is off so both scenes of a pair are measured over
    live dynamics rather than whichever one falls asleep first.
    """
    ctx = FPContext(_PRECISION, mode="jam", census=True)
    world = World(ctx=ctx, sleep=SleepParams(enabled=False))
    build(world)
    for _ in range(_STEPS):
        world.step()
    total = trivial = 0
    for op in ("add", "sub", "mul"):
        counter = ctx.stats.get(("lcp", op))
        if counter:
            total += counter.total
            trivial += counter.extended_trivial
    return 100.0 * trivial / total if total else 0.0


# ----------------------------------------------------------------------
# Directed scenes: (with factor, without factor)
# ----------------------------------------------------------------------
def _mass_similar(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 0.3, 0.0], 0.3, 1.0)
    world.add_sphere([0.25, 0.84, 0.0], 0.3, 1.0)


def _mass_different(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 0.3, 0.0], 0.3, 1.0)
    world.add_sphere([0.25, 0.84, 0.0], 0.3, 9.7)


def _no_velocity(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_box([0.0, 0.3, 0.0], [0.3, 0.3, 0.3], 2.0)
    world.add_box([0.1, 1.0, 0.0], [0.3, 0.3, 0.3], 2.0)


def _spinning(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_box([0.0, 0.3, 0.0], [0.3, 0.3, 0.3], 2.0,
                  angvel=[3.0, 5.0, 2.0], linvel=[1.0, 0.0, -0.7])
    world.add_box([0.1, 1.0, 0.0], [0.3, 0.3, 0.3], 2.0,
                  angvel=[-4.0, 2.0, 6.0], linvel=[-0.8, 0.0, 0.9])


def _size_similar(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 0.4, 0.0], 0.4, 1.5)
    world.add_sphere([0.2, 1.3, 0.0], 0.4, 1.5)


def _size_different(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 0.9, 0.0], 0.9, 1.5)
    world.add_sphere([0.2, 2.0, 0.0], 0.13, 1.5)


def _simple_shapes(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 0.4, 0.0], 0.4, 2.0)
    world.add_sphere([0.1, 1.3, 0.0], 0.4, 2.0)


def _complex_shapes(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_box([0.0, 0.4, 0.0], [0.4, 0.4, 0.4], 2.0,
                  quat=[0.924, 0.0, 0.383, 0.0])
    world.add_box([0.1, 1.4, 0.0], [0.4, 0.4, 0.4], 2.0,
                  quat=[0.924, 0.383, 0.0, 0.0])


def _with_ground(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_box([0.0, 0.3, 0.0], [0.3, 0.3, 0.3], 2.0)
    world.add_box([0.0, 1.0, 0.0], [0.3, 0.3, 0.3], 2.0)


def _free_space(world: World) -> None:
    world.gravity[:] = 0.0
    world.monitor.gravity[:] = 0.0
    world.add_box([0.0, 0.3, 0.0], [0.3, 0.3, 0.3], 2.0,
                  linvel=[0.4, 0.3, 0.0])
    world.add_box([1.2, 0.45, 0.0], [0.3, 0.3, 0.3], 2.0,
                  linvel=[-0.6, 0.2, 0.0])


def _articulated(world: World) -> None:
    world.add_ground_plane(0.0)
    torso = world.add_box([0.0, 1.2, 0.0], [0.15, 0.25, 0.1], 4.0)
    limb = world.add_box([0.0, 0.7, 0.0], [0.07, 0.2, 0.07], 1.0)
    world.joints.add_ball(world.bodies, torso, limb, [0.0, 0.95, 0.0])
    world.joints.add_ball(world.bodies, torso, WORLD, [0.0, 1.45, 0.0])


def _rigid_box(world: World) -> None:
    world.add_ground_plane(0.0)
    world.add_box([0.0, 1.2, 0.0], [0.15, 0.25, 0.1], 4.0)


FACTORS: List[Tuple[str, Callable, Callable]] = [
    ("Small mass difference between objects", _mass_similar,
     _mass_different),
    ("Zero velocities before collision", _no_velocity, _spinning),
    ("Small size difference between objects", _size_similar,
     _size_different),
    ("Simple object shapes", _simple_shapes, _complex_shapes),
    ("Use of ground and gravity", _with_ground, _free_space),
    ("Higher amount of articulation", _articulated, _rigid_box),
]


@dataclass
class DirectedResult:
    factor: str
    with_factor_pct: float
    without_factor_pct: float

    @property
    def delta(self) -> float:
        return self.with_factor_pct - self.without_factor_pct


def compute_table3() -> List[DirectedResult]:
    """Run all directed two-body tests."""
    results = []
    for factor, with_builder, without_builder in FACTORS:
        results.append(DirectedResult(
            factor=factor,
            with_factor_pct=_measure(with_builder),
            without_factor_pct=_measure(without_builder),
        ))
    return results


def render(results: List[DirectedResult]) -> str:
    rows = [
        [r.factor, f"{r.with_factor_pct:.1f}%",
         f"{r.without_factor_pct:.1f}%", f"{r.delta:+.1f}%"]
        for r in results
    ]
    return render_table(
        ["Factor (paper Table 3)", "with", "without", "delta"],
        rows,
        title="Table 3: factors increasing trivialization "
              "(LCP add+mul trivial %)")
