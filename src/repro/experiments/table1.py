"""Table 1 — minimum mantissa bits for believable results.

Reproduces the paper's per-scenario, per-rounding-mode, per-phase minimum
precision search (Section 4.1.1), including the combined-tuning column:
with LCP pinned at its independently found minimum, narrow-phase is
re-searched, because "the error injected in one phase will impact the
precision tolerance of the other phase" (the paper's parenthesised
values).

Results are persisted in the experiment cache; the paper's own Table 1 is
included for side-by-side comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..fp.rounding import RoundingMode
from ..perf.sweep import SweepJob, SweepOutcome, SweepRunner
from ..tuning.believability import minimum_precision
from ..workloads import SCENARIO_NAMES, default_steps
from .report import render_table
from .runcache import cache_dir, write_json_atomic

__all__ = [
    "PAPER_TABLE1",
    "PRESET_PRECISIONS",
    "compute_table1",
    "tuned_precisions",
    "render",
]

#: The paper's Table 1 (RN / J / T per phase; combined narrow in parens).
PAPER_TABLE1 = {
    "breakable": {"lcp": (8, 17, 13), "narrow": (17, 10, 23),
                  "narrow_combined": 21},
    "continuous": {"lcp": (4, 4, 4), "narrow": (9, 9, 9),
                   "narrow_combined": 9},
    "deformable": {"lcp": (3, 4, 8), "narrow": (9, 9, 9),
                   "narrow_combined": 9},
    "everything": {"lcp": (10, 10, 23), "narrow": (18, 10, 19),
                   "narrow_combined": 17},
    "explosions": {"lcp": (11, 13, 9), "narrow": (21, 14, 13),
                   "narrow_combined": 14},
    "highspeed": {"lcp": (3, 3, 8), "narrow": (9, 9, 9),
                  "narrow_combined": 9},
    "periodic": {"lcp": (13, 14, 23), "narrow": (22, 21, 23),
                 "narrow_combined": 23},
    "ragdoll": {"lcp": (5, 5, 9), "narrow": (9, 9, 9),
                "narrow_combined": 21},
}

#: Measured minimums for this reproduction (jamming; full-size scenes, 90
#: steps; LCP at its independent minimum, narrow-phase at the
#: combined-tuning minimum).  Tests and quick benchmark modes use these
#: instead of re-running the ~10 minute search; the Table 1 benchmark
#: recomputes them.  Regenerate with ``compute_table1()``.
PRESET_PRECISIONS: Dict[str, Dict[str, int]] = {
    "breakable": {"lcp": 9, "narrow": 6},
    "continuous": {"lcp": 3, "narrow": 6},
    "deformable": {"lcp": 8, "narrow": 4},
    "everything": {"lcp": 9, "narrow": 9},
    "explosions": {"lcp": 11, "narrow": 21},
    "highspeed": {"lcp": 8, "narrow": 10},
    "periodic": {"lcp": 10, "narrow": 8},
    "ragdoll": {"lcp": 9, "narrow": 9},
}

_MODES = (RoundingMode.NEAREST, RoundingMode.JAMMING,
          RoundingMode.TRUNCATION)


@dataclass
class Table1Result:
    """All measured minimum precisions."""

    #: scenario -> phase -> mode value -> bits
    independent: Dict[str, Dict[str, Dict[str, int]]]
    #: scenario -> combined-tuning narrow-phase bits (jamming)
    narrow_combined: Dict[str, int]
    steps: int
    scale: float
    #: total candidate widths simulated across every search cell
    #: (``None`` when the grid came from the cache); with a surrogate
    #: this drops while the bits stay identical
    probes: Optional[int] = None


def _search_cell(*args, **kwargs) -> SweepOutcome:
    """One grid cell, reporting its probe count through ``ops``."""
    stats: Dict = {}
    bits = minimum_precision(*args, stats=stats, **kwargs)
    return SweepOutcome(bits, ops=stats["probes"])


def compute_table1(
    steps: Optional[int] = None,
    scale: float = 1.0,
    scenarios=None,
    use_cache: bool = True,
    workers: Optional[int] = None,
    surrogate=None,
) -> Table1Result:
    """Run (or load) the full minimum-precision grid.

    The 48 independent (scenario, phase, mode) searches fan out over a
    :class:`~repro.perf.sweep.SweepRunner`; the combined-tuning searches
    follow as a second stage because each depends on its scenario's
    jamming LCP minimum.  Results are identical to the serial order.

    ``surrogate`` (a trained
    :class:`~repro.tuning.surrogate.SurrogateModel` or a path to its
    JSON artifact) warm-starts every search cell; the measured bits are
    identical by construction, only :attr:`Table1Result.probes` drops.
    """
    steps = default_steps() if steps is None else steps
    scenarios = list(scenarios or SCENARIO_NAMES)
    path = cache_dir() / f"table1_s{steps}_x{scale}.json"
    if use_cache and path.exists() and set(scenarios) == set(SCENARIO_NAMES):
        with path.open() as handle:
            data = json.load(handle)
        return Table1Result(
            independent=data["independent"],
            narrow_combined=data["narrow_combined"],
            steps=steps,
            scale=scale,
        )
    if isinstance(surrogate, (str, bytes)) or hasattr(surrogate,
                                                      "__fspath__"):
        from ..tuning.surrogate import SurrogateModel
        surrogate = SurrogateModel.load(surrogate)
    extra = {"surrogate": surrogate} if surrogate is not None else {}

    runner = SweepRunner(workers)
    grid = [SweepJob(
        key=(scenario, phase, mode.value),
        fn=_search_cell,
        args=(scenario,),
        kwargs=dict(phases=(phase,), mode=mode, steps=steps, scale=scale,
                    **extra),
    ) for scenario in scenarios
        for phase in ("lcp", "narrow")
        for mode in _MODES]
    results = runner.run(grid)
    probes = sum(r.ops for r in results)
    bits_by_key = {r.key: r.value for r in results}

    independent: Dict[str, Dict[str, Dict[str, int]]] = {}
    for scenario in scenarios:
        independent[scenario] = {
            phase: {mode.value: bits_by_key[(scenario, phase, mode.value)]
                    for mode in _MODES}
            for phase in ("lcp", "narrow")}

    # Combined tuning: pin LCP at its jamming minimum, re-search narrow.
    combined = [SweepJob(
        key=(scenario, "narrow_combined"),
        fn=_search_cell,
        args=(scenario,),
        kwargs=dict(
            phases=("narrow",), mode=RoundingMode.JAMMING, steps=steps,
            scale=scale,
            fixed_precision={
                "lcp": independent[scenario]["lcp"][
                    RoundingMode.JAMMING.value]},
            **extra),
    ) for scenario in scenarios]
    combined_results = runner.run(combined)
    probes += sum(r.ops for r in combined_results)
    narrow_combined: Dict[str, int] = {
        r.key[0]: r.value for r in combined_results}

    if set(scenarios) == set(SCENARIO_NAMES):
        write_json_atomic(path, {"independent": independent,
                                 "narrow_combined": narrow_combined})
    return Table1Result(independent, narrow_combined, steps, scale,
                        probes=probes)


def tuned_precisions(
    result: Optional[Table1Result] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-scenario tuned precision registers {phase: bits} (jamming).

    Uses the Table 1 combined methodology: LCP at its independent
    minimum, narrow-phase at the combined-tuning minimum.  Falls back to
    :data:`PRESET_PRECISIONS` when no measured result is supplied.
    """
    if result is None:
        return {k: dict(v) for k, v in PRESET_PRECISIONS.items()}
    tuned = {}
    for scenario, phases in result.independent.items():
        tuned[scenario] = {
            "lcp": phases["lcp"][RoundingMode.JAMMING.value],
            "narrow": result.narrow_combined[scenario],
        }
    return tuned


def render(result: Table1Result) -> str:
    """Paper-style Table 1 with measured and published values."""
    headers = ["Benchmark",
               "LCP RN", "LCP J", "LCP T",
               "NP RN", "NP J(comb)", "NP T",
               "paper LCP RN/J/T", "paper NP RN/J(comb)/T"]
    rows = []
    for scenario in SCENARIO_NAMES:
        ours = result.independent[scenario]
        paper = PAPER_TABLE1[scenario]
        rows.append([
            scenario,
            ours["lcp"]["rn"], ours["lcp"]["jam"], ours["lcp"]["trunc"],
            ours["narrow"]["rn"],
            f"{ours['narrow']['jam']} ({result.narrow_combined[scenario]})",
            ours["narrow"]["trunc"],
            "/".join(str(b) for b in paper["lcp"]),
            (f"{paper['narrow'][0]}/{paper['narrow'][1]} "
             f"({paper['narrow_combined']})/{paper['narrow'][2]}"),
        ])
    return render_table(
        headers, rows,
        title="Table 1: minimum mantissa bits for believable results")
