"""Ablations of design choices fixed by the paper (or by DESIGN.md).

1. **Jamming guard bits** — the paper ORs the LSB with *three* guard
   bits.  Fewer guards degrade towards truncation's negative bias; more
   guards buy almost nothing (the OR saturates quickly).
2. **Lookup-table operand width** — the paper uses 5-bit fields (2K x 1B)
   and leaves bigger tables to future work.  Width w costs 2^(1+2w) bytes
   and raises the covered precision limit to w+1.
3. **Controller threshold** — the paper adopts a 10 % energy-difference
   threshold; sweeping it shows the violations/precision trade-off.
4. **Arbitration policy** — the paper picks Kumar et al.'s simple static
   slots; the demand-based alternative quantifies what that leaves.
5. **Solver scheme** — DESIGN.md substitutes mass-split Jacobi for ODE's
   Gauss-Seidel; re-running the precision search under true
   Gauss-Seidel validates the substitution.
6. **Warm starting** — persistent-contact impulse reuse extends the
   paper's cross-iteration value locality across steps; measured via
   the memoization hit rate on a resting stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..arch import params as arch_params
from ..fp.context import FPContext
from ..fp.rounding import RoundingMode, reduce_array, reduce_scalar
from ..memo.lookup_table import LookupTable
from ..tuning.controller import ControlledSimulation, PrecisionController
from ..workloads import build
from .report import render_table

__all__ = [
    "GuardBitsResult",
    "LookupWidthResult",
    "ThresholdResult",
    "ArbitrationResult",
    "SolverSchemeResult",
    "WarmStartResult",
    "guard_bits_ablation",
    "lookup_width_ablation",
    "threshold_ablation",
    "arbitration_ablation",
    "solver_scheme_ablation",
    "warm_start_ablation",
    "render_guard_bits",
    "render_lookup_width",
    "render_threshold",
    "render_arbitration",
    "render_solver_scheme",
    "render_warm_start",
]


# ----------------------------------------------------------------------
# 1. Jamming guard bits
# ----------------------------------------------------------------------
@dataclass
class GuardBitsResult:
    guard_bits: int
    mean_signed_error: float  # relative, on random uniform values
    mean_abs_error: float
    #: max energy deviation of a fixed reduced-precision physics run
    energy_deviation: float


def guard_bits_ablation(
    guard_counts=(0, 1, 2, 3, 4, 6),
    precision: int = 8,
    samples: int = 200_000,
    scenario: str = "ragdoll",
    steps: int = 45,
    scale: float = 0.6,
) -> List[GuardBitsResult]:
    """Sweep the jamming OR-window width."""
    rng = np.random.default_rng(11)
    values = rng.uniform(0.5, 2.0, samples).astype(np.float32)

    def _reference_energy():
        ctx = FPContext(census=False)
        world = build(scenario, ctx=ctx, scale=scale)
        for _ in range(steps):
            world.step()
        return world.monitor.conserved_series()

    reference = _reference_energy()
    scale_e = max(float(np.ptp(reference)), 1.0)

    results = []
    for guards in guard_counts:
        reduced = reduce_array(values, precision, RoundingMode.JAMMING,
                               guard_bits=guards)
        err = (reduced.astype(np.float64) - values) / values
        ctx = FPContext({"lcp": precision, "narrow": precision},
                        mode="jam", census=False, jam_guard_bits=guards)
        world = build(scenario, ctx=ctx, scale=scale)
        for _ in range(steps):
            world.step()
        test = world.monitor.conserved_series()
        n = min(len(test), len(reference))
        deviation = float(np.abs(test[:n] - reference[:n]).max()) / scale_e
        results.append(GuardBitsResult(
            guard_bits=guards,
            mean_signed_error=float(err.mean()),
            mean_abs_error=float(np.abs(err).mean()),
            energy_deviation=deviation,
        ))
    return results


def render_guard_bits(results: List[GuardBitsResult]) -> str:
    rows = [
        [r.guard_bits, f"{r.mean_signed_error:+.2e}",
         f"{r.mean_abs_error:.2e}", f"{100 * r.energy_deviation:.2f}%"]
        for r in results
    ]
    return render_table(
        ["guard bits", "mean signed rel err", "mean |rel err|",
         "energy deviation"],
        rows,
        title="Ablation: jamming guard-bit window (paper fixes 3)")


# ----------------------------------------------------------------------
# 2. Lookup table operand width
# ----------------------------------------------------------------------
@dataclass
class LookupWidthResult:
    operand_bits: int
    entries: int
    size_bytes: int
    covered_precision: int  # highest precision the table satisfies
    area_mm2: float
    mul_exact_fraction: float
    add_max_ulp: float


def lookup_width_ablation(widths=(3, 4, 5, 6, 7)) -> \
        List[LookupWidthResult]:
    """Sweep the LUT operand field width (paper: 5)."""
    results = []
    for width in widths:
        lut = LookupTable(precision=width, operand_bits=width)
        # Exhaustive mul check + randomized add check at this width.
        mul_exact = total = 0
        add_worst = 0.0
        denom = 1 << width
        for a_field in range(0, denom, max(1, denom // 32)):
            for b_field in range(0, denom, max(1, denom // 32)):
                a = (1.0 + a_field / denom) * 2.0
                b = (1.0 + b_field / denom) * 0.5
                direct = reduce_scalar(np.float32(a) * np.float32(b),
                                       width, RoundingMode.JAMMING)
                mul_exact += lut.compute_mul(a, b) == direct
                total += 1
                direct_add = np.float32(a) + np.float32(b)
                got = lut.compute_add(a, b)
                ulp = abs(got - float(direct_add)) / (
                    2.0 ** (1 - width))  # ulp at exponent 1
                add_worst = max(add_worst, ulp)
        # SRAM area scales ~linearly with capacity at fixed geometry.
        area = arch_params.LOOKUP_TABLE_AREA_MM2 * lut.size_bytes / 2048.0
        results.append(LookupWidthResult(
            operand_bits=width,
            entries=lut.entries,
            size_bytes=lut.size_bytes,
            covered_precision=width,
            area_mm2=area,
            mul_exact_fraction=mul_exact / total,
            add_max_ulp=add_worst,
        ))
    return results


def render_lookup_width(results: List[LookupWidthResult]) -> str:
    rows = [
        [r.operand_bits, r.entries, r.size_bytes,
         f"<= {r.covered_precision} bits", f"{r.area_mm2:.3f}",
         f"{100 * r.mul_exact_fraction:.0f}%", f"{r.add_max_ulp:.2f}"]
        for r in results
    ]
    return render_table(
        ["operand bits", "entries", "bytes", "covers precision",
         "est. area mm2", "mul exact", "add max ulp"],
        rows,
        title="Ablation: lookup-table operand width (paper fixes 5)")


# ----------------------------------------------------------------------
# 3. Controller threshold
# ----------------------------------------------------------------------
@dataclass
class ThresholdResult:
    threshold: float
    violations: int
    reexecutions: int
    mean_lcp_precision: float


def threshold_ablation(
    thresholds=(0.02, 0.05, 0.10, 0.20, 0.50),
    scenario: str = "explosions",
    steps: int = 60,
    scale: float = 0.6,
    register: Optional[dict] = None,
) -> List[ThresholdResult]:
    """Sweep the energy-difference threshold (paper: 10 %)."""
    register = dict(register or {"lcp": 8, "narrow": 10})
    results = []
    for threshold in thresholds:
        ctx = FPContext(mode="jam", census=False)
        world = build(scenario, ctx=ctx, scale=scale)
        controller = PrecisionController(ctx, register,
                                         threshold=threshold)
        sim = ControlledSimulation(world, controller)
        sim.run(steps)
        mean_precision = float(np.mean(
            [log.precisions["lcp"] for log in controller.history]))
        results.append(ThresholdResult(
            threshold=threshold,
            violations=controller.violations,
            reexecutions=controller.reexecutions,
            mean_lcp_precision=mean_precision,
        ))
    return results


def render_threshold(results: List[ThresholdResult]) -> str:
    rows = [
        [f"{100 * r.threshold:.0f}%", r.violations, r.reexecutions,
         f"{r.mean_lcp_precision:.1f}"]
        for r in results
    ]
    return render_table(
        ["threshold", "violations", "re-executions", "mean LCP bits"],
        rows,
        title="Ablation: controller energy-difference threshold "
              "(paper fixes 10%)")


# ----------------------------------------------------------------------
# 4. Arbitration policy (the "more intelligent policy" of Kumar et al.)
# ----------------------------------------------------------------------
@dataclass
class ArbitrationResult:
    cores_per_fpu: int
    design_name: str
    static_ipc: float
    demand_ipc: float

    @property
    def demand_gain(self) -> float:
        return self.demand_ipc / self.static_ipc - 1.0


def arbitration_ablation(
    workloads=None,
    sharing=(2, 4, 8),
    trace_length: int = 6000,
) -> List[ArbitrationResult]:
    """Static alternating-cycle slots vs demand-based rotating priority.

    The paper adopts the simple static policy "to minimize latency";
    this quantifies the throughput it leaves on the table, per sharing
    degree, averaged over the scenarios' LCP workloads.
    """
    import zlib

    from ..arch.cluster import simulate_cluster
    from ..arch.l1fpu import CONJOIN, LOOKUP_TRIV
    from ..arch.trace import generate_trace
    from .common import all_workloads

    workloads = workloads or all_workloads()
    results = []
    for design in (CONJOIN, LOOKUP_TRIV):
        for n in sharing:
            static_vals, demand_vals = [], []
            for scenario, phases in workloads.items():
                base_seed = zlib.crc32(scenario.encode())
                traces = [
                    generate_trace(phases["lcp"], trace_length,
                                   seed=base_seed + k)
                    for k in range(n)
                ]
                static_vals.append(
                    simulate_cluster(traces, design, "static").mean_ipc)
                demand_vals.append(
                    simulate_cluster(traces, design, "demand").mean_ipc)
            results.append(ArbitrationResult(
                cores_per_fpu=n,
                design_name=design.name,
                static_ipc=sum(static_vals) / len(static_vals),
                demand_ipc=sum(demand_vals) / len(demand_vals),
            ))
    return results


def render_arbitration(results: List[ArbitrationResult]) -> str:
    rows = [
        [r.design_name, r.cores_per_fpu, f"{r.static_ipc:.3f}",
         f"{r.demand_ipc:.3f}", f"{100 * r.demand_gain:+.1f}%"]
        for r in results
    ]
    return render_table(
        ["design", "cores/FPU", "static IPC", "demand IPC",
         "demand gain"],
        rows,
        title="Ablation: L2 FPU arbitration policy (paper fixes the "
              "simple static slots)")


# ----------------------------------------------------------------------
# 5. Solver scheme (Jacobi substitution vs ODE-style Gauss-Seidel)
# ----------------------------------------------------------------------
@dataclass
class SolverSchemeResult:
    scenario: str
    jacobi_min_bits: int
    gauss_seidel_min_bits: int
    jacobi_penetration: float
    gauss_seidel_penetration: float


def solver_scheme_ablation(
    scenarios=("highspeed", "ragdoll"),
    steps: int = 60,
    scale: float = 0.7,
) -> List[SolverSchemeResult]:
    """Does the Jacobi substitution change the Table 1 minima?

    DESIGN.md replaces ODE's sequential Gauss-Seidel with vectorized
    mass-split Jacobi; this ablation re-runs the minimum-precision
    search under a true (colored-batch) Gauss-Seidel and compares both
    the minima and the residual penetration.
    """
    from ..physics.lcp import SolverParams
    from ..tuning.believability import energy_trace, minimum_precision

    results = []
    for scenario in scenarios:
        minima = {}
        penetration = {}
        for scheme in ("jacobi", "gauss_seidel"):
            solver = SolverParams(scheme=scheme)
            minima[scheme] = minimum_precision(
                scenario, phases=("lcp",), mode="jam", steps=steps,
                scale=scale, solver=solver)
            ctx = FPContext(census=False)
            world = build(scenario, ctx=ctx, scale=scale, solver=solver)
            for _ in range(steps):
                world.step()
            settled = world.penetration_series[steps // 2:]
            penetration[scheme] = max(settled) if settled else 0.0
        results.append(SolverSchemeResult(
            scenario=scenario,
            jacobi_min_bits=minima["jacobi"],
            gauss_seidel_min_bits=minima["gauss_seidel"],
            jacobi_penetration=penetration["jacobi"],
            gauss_seidel_penetration=penetration["gauss_seidel"],
        ))
    return results


def render_solver_scheme(results: List[SolverSchemeResult]) -> str:
    rows = [
        [r.scenario, r.jacobi_min_bits, r.gauss_seidel_min_bits,
         f"{r.jacobi_penetration:.4f}", f"{r.gauss_seidel_penetration:.4f}"]
        for r in results
    ]
    return render_table(
        ["scenario", "Jacobi min bits", "GS min bits",
         "Jacobi pen (m)", "GS pen (m)"],
        rows,
        title="Ablation: LCP solver scheme (DESIGN.md substitution "
              "check)")


# ----------------------------------------------------------------------
# 6. Warm starting and value locality
# ----------------------------------------------------------------------
@dataclass
class WarmStartResult:
    warm_start: bool
    add_trivial: float
    mul_trivial: float
    add_memo_hitrate: float
    mul_memo_hitrate: float

    def local_coverage(self, op: str) -> float:
        """Fraction of ops satisfied without the FPU (trivial or memo)."""
        trivial = getattr(self, f"{op}_trivial")
        hitrate = getattr(self, f"{op}_memo_hitrate")
        return trivial + (1.0 - trivial) * hitrate


def warm_start_ablation(
    precision: int = 8,
    steps: int = 90,
) -> List[WarmStartResult]:
    """Does persistent-contact warm starting boost value locality?

    The paper leans on "value locality ... across iterations during the
    relaxation of constraints"; warm starting extends that locality
    *across steps* by re-seeding converged impulses.  Measured on a
    resting stack with the memoization tables attached.
    """
    from ..memo.memo_table import MemoBank
    from ..physics import SolverParams, World

    results = []
    for warm in (False, True):
        ctx = FPContext({"lcp": precision, "narrow": precision},
                        memo=MemoBank(), memo_budget=400_000)
        world = World(ctx=ctx, solver=SolverParams(warm_start=warm))
        world.add_ground_plane(0.0)
        for k in range(4):
            world.add_box([0, 0.5 + 1.01 * k, 0], [0.5, 0.5, 0.5], 2.0)
        for _ in range(steps):
            world.step()

        def _rates(op):
            counter = ctx.counter("lcp", op)
            trivial = (counter.extended_trivial / counter.total
                       if counter.total else 0.0)
            hitrate = (counter.memo_hits / counter.memo_lookups
                       if counter.memo_lookups else 0.0)
            return trivial, hitrate

        add_t, add_h = _rates("add")
        mul_t, mul_h = _rates("mul")
        results.append(WarmStartResult(
            warm_start=warm,
            add_trivial=add_t, mul_trivial=mul_t,
            add_memo_hitrate=add_h, mul_memo_hitrate=mul_h,
        ))
    return results


def render_warm_start(results: List[WarmStartResult]) -> str:
    rows = [
        ["on" if r.warm_start else "off",
         f"{100 * r.add_trivial:.1f}%", f"{100 * r.mul_trivial:.1f}%",
         f"{100 * r.add_memo_hitrate:.1f}%",
         f"{100 * r.mul_memo_hitrate:.1f}%",
         f"{100 * r.local_coverage('add'):.1f}%",
         f"{100 * r.local_coverage('mul'):.1f}%"]
        for r in results
    ]
    return render_table(
        ["warm start", "add trivial", "mul trivial", "add memo hit",
         "mul memo hit", "add local", "mul local"],
        rows,
        title="Ablation: contact warm starting vs LCP value locality "
              "(resting stack)")
