"""One module per paper table/figure, plus shared run caching.

================  ====================================================
module            reproduces
================  ====================================================
``table1``        minimum mantissa bits for believability
``table3``        factors increasing trivialization (directed tests)
``table4``        % FP trivialized / memoized, full vs reduced
``table5``        lookup vs memoization tables
``table8``        evaluated designs: area overhead + per-core IPC
``figure5``       HFPU throughput improvement grid
``figure6``       core counts (a); trivialization + energy (b)
``figure7``       mini-FPU design comparison
``figure8``       FPU latency sensitivity
================  ====================================================
"""

from . import (  # noqa: F401
    ablation,
    common,
    figure5,
    figure6,
    figure7,
    figure8,
    report,
    runcache,
    scalability,
    table1,
    table3,
    table4,
    table5,
    table8,
)

__all__ = [
    "ablation",
    "common",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "report",
    "runcache",
    "scalability",
    "table1",
    "table3",
    "table4",
    "table5",
    "table8",
]
