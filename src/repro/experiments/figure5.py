"""Figure 5 — HFPU throughput improvement grid (LCP and narrow-phase).

For every FPU design point (1.5 / 1.0 / 0.75 / 0.375 mm^2), sharing degree
(1 / 2 / 4 / 8 cores per L2 FPU) and L1 alternative (Conjoin, Conv Triv,
Reduced Triv, Lookup + Reduced Triv), report the aggregate throughput
improvement over the 128-core unshared baseline, averaged across the
eight scenarios.  Any area saved buys more cores (Figure 6a).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..arch import params
from ..arch.area import cores_in_same_area
from ..arch.core import cluster_ipc
from ..arch.l1fpu import ALL_DESIGNS, CONJOIN, LOOKUP_TRIV, L1Design
from ..arch.trace import PhaseWorkload, generate_trace
from .common import PHASES, all_workloads
from .report import render_table

__all__ = ["SHARING_DEGREES", "Figure5Result", "compute_figure5", "render",
           "paper_summary"]

SHARING_DEGREES = (1, 2, 4, 8)

#: Paper headline: average LCP improvement of the best HFPU (Lookup, 4-way)
#: per FPU size, and the same for narrow-phase.
PAPER_HFPU4_IMPROVEMENT = {
    "lcp": {1.5: 0.55, 1.0: 0.40, 0.75: 0.33, 0.375: 0.20},
    "narrow": {1.5: 0.46, 1.0: 0.32, 0.75: 0.25, 0.375: 0.13},
}

#: trace length per configuration (instructions per simulated core)
TRACE_LENGTH = 12_000


@dataclass
class Figure5Result:
    """improvement[phase][(fpu_area, design_name, sharing)] -> fraction."""

    improvement: Dict[str, Dict[Tuple[float, str, int], float]]
    per_core_ipc: Dict[str, Dict[Tuple[str, int], float]]
    designs: Tuple[L1Design, ...] = ALL_DESIGNS
    #: per-scenario breakdown: [phase][(area, design, n)][scenario]
    by_scenario: Optional[Dict[str, Dict[Tuple[float, str, int],
                                         Dict[str, float]]]] = None


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def compute_figure5(
    workloads: Optional[Mapping[str, Mapping[str, PhaseWorkload]]] = None,
    designs: Iterable[L1Design] = ALL_DESIGNS,
    fpu_areas: Iterable[float] = params.FPU_AREAS_MM2,
    sharing: Iterable[int] = SHARING_DEGREES,
    trace_length: int = TRACE_LENGTH,
) -> Figure5Result:
    """Evaluate the full Figure 5 grid.

    Per-core IPC depends only on (scenario, phase, design, sharing); the
    FPU area enters through the core count, so IPCs are computed once and
    reused across areas.
    """
    designs = tuple(designs)
    workloads = workloads or all_workloads()
    improvement: Dict[str, Dict] = {phase: {} for phase in PHASES}
    mean_ipc: Dict[str, Dict] = {phase: {} for phase in PHASES}
    by_scenario: Dict[str, Dict] = {phase: {} for phase in PHASES}

    for phase in PHASES:
        # scenario -> design/sharing -> ipc; plus per-scenario baselines.
        per_scenario_ipc: Dict[str, Dict[Tuple[str, int], float]] = {}
        baselines: Dict[str, float] = {}
        for scenario, phases in workloads.items():
            workload = phases[phase]
            trace = generate_trace(workload, trace_length,
                                   seed=zlib.crc32(scenario.encode()))
            table: Dict[Tuple[str, int], float] = {}
            for design in designs:
                for n in sharing:
                    table[(design.name, n)] = cluster_ipc(trace, design, n)
            per_scenario_ipc[scenario] = table
            baselines[scenario] = (
                params.BASELINE_CORES * cluster_ipc(trace, CONJOIN, 1))

        for design in designs:
            for n in sharing:
                mean_ipc[phase][(design.name, n)] = _mean(
                    [per_scenario_ipc[s][(design.name, n)]
                     for s in workloads])
                for area in fpu_areas:
                    cores = cores_in_same_area(area, n, design)
                    breakdown = {}
                    for scenario in workloads:
                        ipc = per_scenario_ipc[scenario][(design.name, n)]
                        breakdown[scenario] = (
                            cores * ipc / baselines[scenario] - 1.0)
                    key = (area, design.name, n)
                    by_scenario[phase][key] = breakdown
                    improvement[phase][key] = _mean(
                        list(breakdown.values()))
    return Figure5Result(improvement=improvement, per_core_ipc=mean_ipc,
                         designs=designs, by_scenario=by_scenario)


def render(result: Figure5Result, phase: str) -> str:
    headers = ["FPU mm2", "cores/FPU"] + [
        d.name for d in result.designs]
    rows = []
    areas = sorted({k[0] for k in result.improvement[phase]}, reverse=True)
    sharing = sorted({k[2] for k in result.improvement[phase]})
    for area in areas:
        for n in sharing:
            row = [f"{area:g}", n]
            for design in result.designs:
                value = result.improvement[phase][(area, design.name, n)]
                row.append(f"{100 * value:+.1f}%")
            rows.append(row)
    label = "LCP" if phase == "lcp" else "Narrow-phase"
    return render_table(
        headers, rows,
        title=f"Figure 5 ({label}): % throughput improvement vs 128-core "
              "unshared baseline")


def paper_summary(result: Figure5Result) -> str:
    """Headline comparison: Lookup+ReducedTriv shared 4-ways."""
    lines = ["HFPU (Lookup+ReducedTriv, 4 cores/FPU) improvement "
             "vs baseline:"]
    for phase in PHASES:
        for area in sorted(PAPER_HFPU4_IMPROVEMENT[phase], reverse=True):
            ours = result.improvement[phase][(area, LOOKUP_TRIV.name, 4)]
            paper = PAPER_HFPU4_IMPROVEMENT[phase][area]
            lines.append(
                f"  {phase:6s} {area:g} mm2: measured {100 * ours:+.1f}% "
                f"(paper {100 * paper:+.0f}%)")
    return "\n".join(lines)


def render_per_scenario(result: Figure5Result, phase: str,
                        area: float = 1.5, sharing: int = 4) -> str:
    """Per-scenario breakdown at one (FPU area, sharing) grid point.

    Exposes the spread the paper's averages hide: scenarios tuned to few
    mantissa bits benefit most from the lookup design.
    """
    if result.by_scenario is None:
        raise ValueError("result has no per-scenario breakdown")
    designs = [d.name for d in result.designs]
    scenarios = sorted(
        result.by_scenario[phase][(area, designs[0], sharing)])
    rows = []
    for scenario in scenarios:
        row = [scenario]
        for design in designs:
            value = result.by_scenario[phase][(area, design, sharing)][
                scenario]
            row.append(f"{100 * value:+.1f}%")
        rows.append(row)
    label = "LCP" if phase == "lcp" else "Narrow-phase"
    return render_table(
        ["scenario"] + designs, rows,
        title=f"Figure 5 per-scenario breakdown ({label}, "
              f"{area:g} mm2 FPU, {sharing} cores/FPU)")
