"""Phase-level scalability under the ParallAX work-queue model.

Not a paper table/figure per se, but the load-imbalance reality behind
them: the paper's throughput comparisons assume the phases keep all
cores fed ("massively parallel"), which holds for narrow-phase (many
independent pairs) much more readily than for LCP (parallelism bounded
by the island count unless the loosely-coupled iterations are split).
This experiment quantifies both on our scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..arch.parallax import (
    lcp_work_items,
    narrow_work_items,
    simulate_work_queue,
)
from ..fp.context import FPContext
from ..perf.sweep import SweepJob, SweepOutcome, SweepRunner
from ..workloads import SCENARIO_NAMES, build
from .report import render_table

__all__ = ["ScalabilityRow", "compute_scalability", "render"]

CORE_COUNTS = (8, 32, 128)
WARMUP_STEPS = 45


@dataclass
class ScalabilityRow:
    scenario: str
    islands: int
    pairs: int
    #: phase -> cores -> speedup
    speedup: Dict[str, Dict[int, float]]


def _scalability_worker(scenario: str, core_counts: List[int], scale: float,
                        intra_island_parallelism: int) -> SweepOutcome:
    """One scenario's settled-world build + work-queue simulation."""
    world = build(scenario, ctx=FPContext(census=False), scale=scale)
    for _ in range(WARMUP_STEPS):
        world.step()
    lcp_items = lcp_work_items(
        world, intra_island_parallelism=intra_island_parallelism)
    narrow_items = narrow_work_items(world)
    speedup: Dict[str, Dict[int, float]] = {"lcp": {}, "narrow": {}}
    for cores in core_counts:
        speedup["lcp"][cores] = simulate_work_queue(
            lcp_items, cores).speedup
        speedup["narrow"][cores] = simulate_work_queue(
            narrow_items, cores).speedup
    row = ScalabilityRow(
        scenario=scenario,
        islands=world.island_count,
        pairs=len(narrow_items),
        speedup=speedup,
    )
    return SweepOutcome(row, ops=WARMUP_STEPS)


def compute_scalability(
    scenarios: Optional[Iterable[str]] = None,
    core_counts: Iterable[int] = CORE_COUNTS,
    scale: float = 1.0,
    intra_island_parallelism: int = 4,
    workers: Optional[int] = None,
) -> List[ScalabilityRow]:
    """Measure per-phase work-queue speedups on settled scenarios.

    Each scenario's settle-and-measure is independent; they fan out over
    a :class:`~repro.perf.sweep.SweepRunner`.
    """
    core_counts = list(core_counts)
    runner = SweepRunner(workers)
    jobs = [SweepJob(
        key=(scenario,), fn=_scalability_worker,
        args=(scenario, core_counts, scale, intra_island_parallelism),
    ) for scenario in scenarios or SCENARIO_NAMES]
    return [r.value for r in runner.run(jobs)]


def render(rows: List[ScalabilityRow],
           core_counts: Iterable[int] = CORE_COUNTS) -> str:
    core_counts = list(core_counts)
    headers = (["scenario", "islands", "pairs"]
               + [f"LCP x{n}" for n in core_counts]
               + [f"NP x{n}" for n in core_counts])
    table = []
    for row in rows:
        table.append(
            [row.scenario, row.islands, row.pairs]
            + [f"{row.speedup['lcp'][n]:.1f}" for n in core_counts]
            + [f"{row.speedup['narrow'][n]:.1f}" for n in core_counts])
    return render_table(
        headers, table,
        title="Phase speedup under the work-queue model "
              "(islands split 4-ways)")
