"""Shared plumbing for the architecture experiments (Tables 4/8, Figures
5-8): turning cached instrumented runs into per-phase workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..arch.trace import PhaseWorkload
from ..workloads import SCENARIO_NAMES, default_steps
from .runcache import census_stats
from .table1 import tuned_precisions

__all__ = ["PHASES", "phase_workload", "all_workloads"]

PHASES = ("lcp", "narrow")


def phase_workload(
    scenario: str,
    phase: str,
    tuned: Mapping[str, int],
    steps: Optional[int] = None,
    scale: float = 1.0,
) -> PhaseWorkload:
    """Workload for one scenario phase at its tuned precision.

    Conventional trivial rates come from a full-precision census run (the
    ConvTriv L1 has no precision-reduction hardware); extended rates and
    the op mix from a run at the tuned per-phase precisions.
    """
    steps = default_steps() if steps is None else steps
    full = census_stats(scenario, None, "jam", steps, scale)
    reduced = census_stats(scenario, dict(tuned), "jam", steps, scale)
    return PhaseWorkload.from_censuses(
        phase, tuned[phase], full, reduced)


def all_workloads(
    scenarios: Optional[Iterable[str]] = None,
    tuned_map: Optional[Mapping[str, Mapping[str, int]]] = None,
    steps: Optional[int] = None,
    scale: float = 1.0,
) -> Dict[str, Dict[str, PhaseWorkload]]:
    """Per-scenario, per-phase workloads at tuned precisions."""
    scenarios = list(scenarios or SCENARIO_NAMES)
    tuned_map = tuned_map or tuned_precisions()
    out: Dict[str, Dict[str, PhaseWorkload]] = {}
    for scenario in scenarios:
        tuned = tuned_map[scenario]
        out[scenario] = {
            phase: phase_workload(scenario, phase, tuned, steps, scale)
            for phase in PHASES
        }
    return out
