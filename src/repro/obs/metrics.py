"""Metric primitives: counters, gauges, and fixed-bucket histograms.

The registry is the in-memory half of the observability layer
(:mod:`repro.obs`): tracing streams events to JSONL for offline
analysis, while the registry keeps cheap running aggregates that a live
process (or a test) can interrogate without re-reading the stream.

Design constraints, in order:

* **Hot-path cost** — one census-free ``World.step()`` runs in
  milliseconds; updating a handful of metrics must stay microseconds.
  Counters and gauges are plain attribute writes; histogram observation
  is one ``bisect`` plus three adds.
* **Determinism** — no wall-clock state lives in the registry itself, so
  two traced runs with the same seed produce identical snapshots apart
  from timing-valued metrics.
* **Mergeability** — sweep workers run in separate processes; their
  snapshots merge into the parent registry by plain addition.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_TIME_EDGES"]

#: Default histogram edges for durations in seconds (0.1 ms .. 10 s,
#: roughly geometric — step times span scenario scales by ~100x).
DEFAULT_TIME_EDGES = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (plus its min/max envelope)."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        # Last-writer-wins for the point value; envelopes union.
        if other.updates:
            self.value = other.value
            self.min = (other.min if self.min is None
                        else min(self.min, other.min))
            self.max = (other.max if self.max is None
                        else max(self.max, other.max))
            self.updates += other.updates

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value,
                "min": self.min, "max": self.max, "updates": self.updates}


class Histogram:
    """Fixed-bucket-edge histogram with quantile estimation.

    ``edges`` are the ascending upper bounds of the first ``len(edges)``
    buckets; one overflow bucket catches everything above the last edge.
    Quantiles interpolate linearly inside the containing bucket, which
    is exact enough for the p50/p95 reporting the trace summary needs.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be non-empty and ascending")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (q in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0.0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                lo = self.edges[i - 1] if i > 0 else (self.min or 0.0)
                hi = (self.edges[i] if i < len(self.edges)
                      else (self.max if self.max is not None else lo))
                lo = max(lo, self.min or lo)
                hi = min(hi, self.max if self.max is not None else hi)
                if hi <= lo:
                    return lo
                frac = (rank - seen) / bucket_count
                return lo + frac * (hi - lo)
            seen += bucket_count
        return self.max or 0.0

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = (other.min if self.min is None
                        else min(self.min, other.min))
        if other.max is not None:
            self.max = (other.max if self.max is None
                        else max(self.max, other.max))

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
        }


def _key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for named metrics.

    Labels are flattened into the metric key (``name{k=v,...}``) so the
    snapshot is a plain, deterministic, JSON-able dict.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, labels: Dict[str, str], factory,
             kind: type):
        key = _key(name, {k: str(v) for k, v in labels.items()})
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif not isinstance(metric, kind):
            raise TypeError(
                f"{key} already registered as {type(metric).__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, labels, Counter, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, labels, Gauge, Gauge)

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_TIME_EDGES,
                  **labels) -> Histogram:
        return self._get(name, labels, lambda: Histogram(edges), Histogram)

    def items(self) -> Iterable[Tuple[str, object]]:
        return sorted(self._metrics.items())

    def snapshot(self) -> dict:
        """Deterministic JSON-able dump of every metric."""
        return {key: metric.to_dict()
                for key, metric in sorted(self._metrics.items())}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters/histograms add, gauges
        last-writer-win) — used to aggregate sweep-worker registries."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                factory = (
                    (lambda m=metric: Histogram(m.edges))
                    if isinstance(metric, Histogram) else type(metric))
                mine = self._metrics[key] = factory()
            mine.merge(metric)
