"""Feature extraction from JSONL step traces (surrogate training).

The learned precision surrogate (:mod:`repro.tuning.surrogate`) predicts
per-phase minimum believable precision from cheap runtime signals.  The
signals come from exactly the telemetry the :class:`~repro.obs.Tracer`
already streams: per-step energy deltas against the believability
threshold, census composition, contact/island counts.  This module is
the pure half of that pipeline — event streams in, a flat feature dict
out — so it can run on any recorded trace without touching a simulator.

Two streams feed one feature row:

* a **reference** run at full precision (the scenario's baseline
  energy/contact behaviour), and
* a **probe** run at a deliberately narrow width on the tuned phases —
  how badly the energy trajectory degrades at, say, 6 bits is a strong
  predictor of where the believability cliff sits ("On Dynamic
  Precision Scaling": per-phase sensitivity is learnable from runtime
  signals).

Every feature is deterministic (no wall-clock values): the same
scenario and seed always produce the same row, so predictions are
reproducible across dataset builds and CI runs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["EVENT_FEATURES", "features_from_events"]

#: Features computed from the two event streams, in a stable order the
#: surrogate model's vectorizer can rely on.
EVENT_FEATURES = (
    "contacts_mean",
    "contacts_max",
    "islands_mean",
    "trivial_frac",
    "memo_frac",
    "log_ops",
    "energy_range",
    "energy_mag",
    "ref_delta_max",
    "ref_delta_mean",
    "probe_delta_max",
    "probe_delta_mean",
    "probe_violation_frac",
    "probe_blowup",
    "probe_energy_dev",
    "probe_truncated",
)

#: Relative energy deltas and deviations are clipped here: a blown-up
#: probe run produces astronomically large (or non-finite) deltas that
#: would otherwise dominate the regression's feature scaling.
_DELTA_CAP = 100.0


def _clip(value: float, cap: float = _DELTA_CAP) -> float:
    if not math.isfinite(value):
        return cap
    return max(-cap, min(cap, float(value)))


def _step_events(events: Sequence[dict]) -> List[dict]:
    return [e for e in events if e.get("kind") == "step"]


def _deltas(steps: Sequence[dict]) -> List[float]:
    out = []
    for event in steps:
        delta = event.get("energy", {}).get("delta_rel")
        if delta is not None:
            out.append(abs(float(delta)))
    return out


def _totals(steps: Sequence[dict]) -> List[float]:
    return [float(e.get("energy", {}).get("total", 0.0)) for e in steps]


def features_from_events(ref_events: Sequence[dict],
                         probe_events: Sequence[dict]) -> Dict[str, float]:
    """One feature row from a reference + probe pair of trace streams.

    ``ref_events`` is a full-precision run of the scenario;
    ``probe_events`` the same scenario with the tuned phases forced to a
    narrow probe width.  Returns a dict keyed by :data:`EVENT_FEATURES`;
    both streams may be truncated (a blown-up probe stops early) — the
    comparison covers the shared prefix and flags the truncation.
    """
    ref = _step_events(ref_events)
    probe = _step_events(probe_events)
    features = {name: 0.0 for name in EVENT_FEATURES}
    if not ref:
        return features

    contacts = [int(e.get("contacts", 0)) for e in ref]
    islands = [int(e.get("islands", 0)) for e in ref]
    features["contacts_mean"] = sum(contacts) / len(ref)
    features["contacts_max"] = float(max(contacts))
    features["islands_mean"] = sum(islands) / len(ref)

    total_ops = sum(int(e.get("census", {}).get("total", 0)) for e in ref)
    trivial = sum(int(e.get("census", {}).get("trivial", 0)) for e in ref)
    memo = sum(int(e.get("census", {}).get("memo_hits", 0)) for e in ref)
    if total_ops:
        features["trivial_frac"] = trivial / total_ops
        features["memo_frac"] = memo / total_ops
    features["log_ops"] = math.log10(1.0 + total_ops / len(ref))

    ref_totals = _totals(ref)
    finite = [t for t in ref_totals if math.isfinite(t)]
    if finite:
        features["energy_range"] = _clip(
            math.log10(1.0 + max(finite) - min(finite)), 60.0)
        features["energy_mag"] = _clip(
            math.log10(1.0 + max(abs(t) for t in finite)), 60.0)
    ref_deltas = _deltas(ref)
    if ref_deltas:
        features["ref_delta_max"] = _clip(max(ref_deltas))
        features["ref_delta_mean"] = _clip(
            sum(ref_deltas) / len(ref_deltas))

    if not probe:
        features["probe_truncated"] = 1.0
        features["probe_blowup"] = 1.0
        return features

    probe_deltas = _deltas(probe)
    if probe_deltas:
        features["probe_delta_max"] = _clip(max(probe_deltas))
        features["probe_delta_mean"] = _clip(
            sum(probe_deltas) / len(probe_deltas))
    violations = sum(
        bool(e.get("energy", {}).get("violation")) for e in probe)
    features["probe_violation_frac"] = violations / len(probe)

    probe_totals = _totals(probe)
    if any(not math.isfinite(t) for t in probe_totals):
        features["probe_blowup"] = 1.0
    if len(probe) < len(ref):
        features["probe_truncated"] = 1.0

    # Max energy deviation from the reference over the shared prefix,
    # normalized the way believability.deviation() normalizes: by the
    # reference dynamic range with a floor.
    n = min(len(ref_totals), len(probe_totals))
    if n and finite:
        scale = max(max(finite) - min(finite),
                    0.02 * max(abs(t) for t in finite), 1.0)
        dev = max(abs(probe_totals[i] - ref_totals[i]) for i in range(n))
        features["probe_energy_dev"] = _clip(dev / scale)
    return features
