"""Process-safe JSONL event streaming.

One trace is one append-only JSONL file: each line is a self-contained
JSON object with a ``kind`` discriminator (see :mod:`repro.obs.schema`).
The writer follows the same crash-safety reasoning as
``experiments.runcache.write_json_atomic``: where the run cache gets
atomicity from temp-file-then-``os.replace``, a *stream* gets it from
``O_APPEND`` plus one ``os.write`` per event — POSIX guarantees append
writes are not interleaved, so sweep workers and the parent process can
share a trace file without tearing lines.  A threading lock covers the
in-process case (pool callbacks land on worker threads).

Readers are tolerant: a torn final line (killed process) or a stray
non-JSON line is counted and skipped, never raised.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

__all__ = ["JsonlWriter", "NullSink", "read_events", "iter_events"]


class NullSink:
    """Metrics-only tracing target: swallows events, counts them."""

    def __init__(self) -> None:
        self.events = 0

    def write(self, event: dict) -> None:
        self.events += 1

    def close(self) -> None:
        pass


class JsonlWriter:
    """Append-only JSONL writer safe across threads *and* processes."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._lock = threading.Lock()
        self.events = 0

    def write(self, event: dict) -> None:
        if self._fd is None:
            raise ValueError("writer is closed")
        line = json.dumps(event, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            os.write(self._fd, data)
            self.events += 1

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_events(path) -> Iterator[Tuple[Optional[dict], str]]:
    """Yield ``(event, raw_line)`` pairs; ``event`` is None for lines
    that do not parse (torn tail, stray text)."""
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except json.JSONDecodeError:
                yield None, raw
                continue
            yield (event if isinstance(event, dict) else None), raw


def read_events(path, kinds: Optional[Tuple[str, ...]] = None
                ) -> Tuple[List[dict], int]:
    """Read a trace file; returns ``(events, skipped_line_count)``."""
    events: List[dict] = []
    skipped = 0
    for event, _raw in iter_events(path):
        if event is None:
            skipped += 1
            continue
        if kinds is not None and event.get("kind") not in kinds:
            continue
        events.append(event)
    return events, skipped
