"""Observability layer: structured telemetry and numerical profiling.

The paper's whole evaluation is measurement — trivialization and memo
hit rates (Table 4), the per-step energy delta against the 10 %
believability threshold (Section 4.1), and the precision the dynamic
controller actually ran at (Section 4.2).  ``repro.obs`` puts those
signals on one timeline:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
* :class:`JsonlWriter` / :func:`read_events` — process-safe JSONL event
  streaming (append-atomic, torn-line tolerant);
* :class:`Tracer` — the observer object the instrumented subsystems
  (``World.step`` phase boundaries, ``PrecisionController.observe``,
  the recovery ladder's :class:`~repro.robustness.IncidentLog`, and
  :class:`~repro.perf.SweepRunner`) stream through;
* :mod:`~repro.obs.schema` — the versioned event schema + validator;
* :func:`summarize_file` / :func:`render_summary` — the offline
  ``repro trace --summarize`` report.

Tracing is strictly opt-in: every hook is an ``observer`` attribute that
defaults to ``None``, and ``repro bench`` asserts the enabled overhead
stays under 10 % of step throughput.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .schema import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    validate_event,
    validate_events,
)
from .features import EVENT_FEATURES, features_from_events
from .summarize import render as render_summary
from .summarize import summarize, summarize_file
from .trace import JsonlWriter, NullSink, read_events
from .tracer import Tracer

__all__ = [
    "EVENT_FEATURES",
    "features_from_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "validate_event",
    "validate_events",
    "summarize",
    "summarize_file",
    "render_summary",
    "JsonlWriter",
    "NullSink",
    "read_events",
    "Tracer",
]
