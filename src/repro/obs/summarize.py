"""Offline trace analysis: ``repro trace --summarize``.

Reads a JSONL trace back, validates it against the schema, and reduces
it to the operator-facing numbers: step-time percentiles, per-phase
precision histograms (which mantissa widths actually executed, and for
how many steps), believability-violation counts, the census rates the
paper's Table 4 argument needs, and the controller/recovery activity
timeline totals.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Dict, List, Optional, Sequence

from .schema import validate_events
from .trace import read_events

__all__ = ["summarize", "summarize_file", "render"]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize(events: List[dict], skipped_lines: int = 0) -> dict:
    """Aggregate a parsed event stream into one report dict."""
    invalid, problems = validate_events(events)
    meta = next((e for e in events if e.get("kind") == "meta"), None)

    steps = [e for e in events if e.get("kind") == "step"]
    walls = sorted(float(e["wall"]) for e in steps
                   if isinstance(e.get("wall"), (int, float)))
    phase_seconds: Dict[str, float] = {}
    phase_bits: Dict[str, TallyCounter] = {}
    census = {"total": 0, "trivial": 0, "memo_hits": 0, "lut_hits": 0,
              "nontrivial": 0}
    violations = 0
    max_delta: Optional[float] = None
    for event in steps:
        for name, phase in event.get("phases", {}).items():
            phase_seconds[name] = (phase_seconds.get(name, 0.0)
                                   + float(phase.get("seconds", 0.0)))
            phase_bits.setdefault(name, TallyCounter())[
                int(phase.get("bits", -1))] += 1
        for field in census:
            census[field] += int(event.get("census", {}).get(field, 0))
        energy = event.get("energy", {})
        if energy.get("violation"):
            violations += 1
        delta = energy.get("delta_rel")
        if delta is not None:
            max_delta = delta if max_delta is None else max(max_delta,
                                                            delta)

    controller = TallyCounter(
        e["action"] for e in events
        if e.get("kind") == "controller" and "action" in e)
    detections = sum(1 for e in events if e.get("kind") == "detection")
    recovery = TallyCounter(
        (e.get("rung"), e.get("outcome")) for e in events
        if e.get("kind") == "recovery")
    sweep_jobs = [e for e in events if e.get("kind") == "sweep_job"]

    return {
        "meta": meta,
        "events": len(events),
        "skipped_lines": skipped_lines,
        "invalid_events": invalid,
        "schema_problems": problems,
        "steps": len(steps),
        "step_seconds": {
            "p50": round(_percentile(walls, 0.50), 6),
            "p95": round(_percentile(walls, 0.95), 6),
            "max": round(walls[-1], 6) if walls else 0.0,
            "total": round(sum(walls), 6),
        },
        "phase_seconds": {k: round(v, 6)
                          for k, v in sorted(phase_seconds.items())},
        "phase_bits": {k: dict(sorted(v.items()))
                       for k, v in sorted(phase_bits.items())},
        "violations": violations,
        "max_delta_rel": max_delta,
        "census": census,
        "controller_actions": dict(sorted(controller.items())),
        "detections": detections,
        "recovery_actions": {
            f"rung{rung}:{outcome}": count
            for (rung, outcome), count in sorted(recovery.items())
        },
        "sweep_jobs": len(sweep_jobs),
        "sweep_wall": round(sum(float(e.get("wall", 0.0))
                                for e in sweep_jobs), 6),
    }


def summarize_file(path) -> dict:
    events, skipped = read_events(path)
    return summarize(events, skipped_lines=skipped)


def render(summary: dict) -> str:
    """Human-readable report for the CLI."""
    from ..experiments.report import render_table

    meta = summary.get("meta") or {}
    title = "trace summary"
    if meta.get("scenario"):
        title += f": {meta['scenario']}"
    lines = [title]
    lines.append(
        f"  events: {summary['events']}"
        f" ({summary['steps']} steps, {summary['invalid_events']} invalid,"
        f" {summary['skipped_lines']} unparseable lines)")
    for problem in summary["schema_problems"]:
        lines.append(f"    schema: {problem}")

    st = summary["step_seconds"]
    lines.append(
        f"  step time: p50 {st['p50'] * 1e3:.2f} ms,"
        f" p95 {st['p95'] * 1e3:.2f} ms, max {st['max'] * 1e3:.2f} ms"
        f" (total {st['total']:.3f} s)")

    if summary["phase_bits"]:
        rows = []
        for phase, bits in summary["phase_bits"].items():
            hist = ", ".join(f"{b} bits x{n}" for b, n in bits.items())
            rows.append([phase,
                         f"{summary['phase_seconds'].get(phase, 0.0):.3f}",
                         hist])
        lines.append(render_table(
            ["phase", "seconds", "precision histogram (steps at width)"],
            rows))

    max_delta = summary["max_delta_rel"]
    lines.append(
        f"  energy: {summary['violations']} violation(s)"
        + (f", max |dE|/E {max_delta:.4f}" if max_delta is not None
           else ""))

    census = summary["census"]
    if census["total"]:
        total = census["total"]
        lines.append(
            f"  census: {total} FP ops, "
            f"{100.0 * census['trivial'] / total:.1f}% trivial, "
            f"{census['memo_hits']} memo hits, "
            f"{census['lut_hits']} LUT-covered, "
            f"{census['nontrivial']} nontrivial")

    if summary["controller_actions"]:
        acts = ", ".join(f"{k}={v}" for k, v in
                         summary["controller_actions"].items())
        lines.append(f"  controller: {acts}")
    if summary["detections"] or summary["recovery_actions"]:
        recs = ", ".join(f"{k}={v}" for k, v in
                         summary["recovery_actions"].items()) or "none"
        lines.append(f"  recovery: {summary['detections']} detection(s), "
                     f"actions: {recs}")
    if summary["sweep_jobs"]:
        lines.append(f"  sweep: {summary['sweep_jobs']} job(s), "
                     f"{summary['sweep_wall']:.3f} s busy")
    return "\n".join(lines)
