"""The `Tracer`: one object observing every instrumented subsystem.

A tracer couples a :class:`~repro.obs.metrics.MetricsRegistry` (live
aggregates) with an optional event sink (JSONL stream).  Subsystems hold
an ``observer`` attribute that defaults to ``None``; the instrumentation
hooks cost a single ``is not None`` check when disabled, which keeps the
census-free fast path untouched — the bench harness asserts the enabled
cost stays under 10 % of step throughput.

Hook surface:

* ``World.step()`` calls ``begin_step`` / ``phase_done`` / ``end_step``;
* ``PrecisionController.observe()`` calls ``controller_event``;
* ``IncidentLog.record()`` calls ``incident``;
* ``SweepRunner.run()`` calls ``sweep_result`` and ``sweep_metrics``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from .metrics import MetricsRegistry
from .schema import SCHEMA_VERSION

__all__ = ["Tracer", "LUT_PRECISION_LIMIT"]

#: Tuned precisions below this mantissa width are fully covered by the
#: 2K-entry arithmetic LUT (operand fields of ``w`` bits cover widths
#: < ``w + 1``; the paper's table uses w = 5 — Section 4.3.4).
LUT_PRECISION_LIMIT = 6

#: Ops the LUT (and the memo tables) serve; div/sqrt never use either.
_LUT_OPS = ("add", "sub", "mul")


class Tracer:
    """Streams step/controller/recovery/sweep events, keeps metrics.

    Parameters
    ----------
    sink:
        Event target with ``write(dict)`` / ``close()`` — a
        :class:`~repro.obs.trace.JsonlWriter`, a
        :class:`~repro.obs.trace.NullSink`, or ``None`` for
        metrics-only operation.
    registry:
        Metrics home; a fresh :class:`MetricsRegistry` when omitted.
    threshold:
        Relative energy-delta believability threshold used to tag step
        events with ``violation`` (the paper's 10 %).
    """

    def __init__(
        self,
        sink=None,
        registry: Optional[MetricsRegistry] = None,
        threshold: float = 0.10,
        lut_precision_limit: int = LUT_PRECISION_LIMIT,
    ) -> None:
        self.sink = sink
        self.registry = registry or MetricsRegistry()
        self.threshold = threshold
        self.lut_precision_limit = lut_precision_limit
        self._step_start: Optional[float] = None
        self._phase_seconds: Dict[str, float] = {}
        self._census_prev: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
        # Metric handles are resolved once, not per step: registry
        # lookups (label-key formatting) would otherwise dominate the
        # per-step tracer cost on sub-millisecond scenarios.
        reg = self.registry
        self._m_steps = reg.counter("steps")
        self._m_step_hist = reg.histogram("step.seconds")
        self._m_violations = reg.counter("energy.violations")
        self._m_census = {
            field: reg.counter(f"census.{field}")
            for field in ("total", "trivial", "memo_hits", "lut_hits",
                          "nontrivial")
        }
        self._m_phase: Dict[str, tuple] = {}  # name -> (hist, gauge)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def emit(self, event: dict) -> None:
        if self.sink is not None:
            self.sink.write(event)

    def meta(self, **fields) -> None:
        """Emit the stream header describing the traced run."""
        event = {"kind": "meta", "schema": SCHEMA_VERSION}
        event.update(fields)
        self.emit(event)

    def attach(self, world=None, controller=None, log=None,
               runner=None) -> "Tracer":
        """Install this tracer as the observer of the given components."""
        if world is not None:
            world.observer = self
        if controller is not None:
            controller.observer = self
        if log is not None:
            log.observer = self
        if runner is not None:
            runner.observer = self
        return self

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def begin_step(self, world) -> None:
        self._phase_seconds.clear()
        self._step_start = time.perf_counter()

    def phase_done(self, name: str, seconds: float) -> None:
        self._phase_seconds[name] = \
            self._phase_seconds.get(name, 0.0) + seconds

    def _census_delta(self, ctx) -> Dict[str, int]:
        total = trivial = memo_hits = lut_hits = 0
        prev = self._census_prev
        for key, counter in ctx.stats.items():
            now = (counter.total, counter.extended_trivial,
                   counter.memo_hits)
            before = prev.get(key, (0, 0, 0))
            d_total = now[0] - before[0]
            d_trivial = now[1] - before[1]
            total += d_total
            trivial += d_trivial
            memo_hits += now[2] - before[2]
            phase, op = key
            if (op in _LUT_OPS
                    and ctx.precision_for(phase) < self.lut_precision_limit):
                # Below the LUT coverage width every non-trivial add/mul
                # is table-satisfied ("100% of operations sent to the
                # look-up table will be satisfied").
                lut_hits += d_total - d_trivial
            prev[key] = now
        return {
            "total": total,
            "trivial": trivial,
            "memo_hits": memo_hits,
            "lut_hits": lut_hits,
            "nontrivial": total - trivial,
        }

    def end_step(self, world, record) -> None:
        wall = (time.perf_counter() - self._step_start
                if self._step_start is not None else 0.0)
        self._step_start = None
        ctx = world.ctx
        delta_rel = world.monitor.relative_step_difference()
        violation = delta_rel is not None and delta_rel > self.threshold
        phases = {
            name: {"seconds": round(seconds, 6),
                   "bits": ctx.precision_for(name)}
            for name, seconds in self._phase_seconds.items()
        }
        census = self._census_delta(ctx)
        event = {
            "kind": "step",
            "step": world.step_count - 1,
            "wall": round(wall, 6),
            "phases": phases,
            "energy": {
                "total": round(float(record.total), 6),
                "delta_rel": (round(float(delta_rel), 8)
                              if delta_rel is not None else None),
                "violation": violation,
            },
            "census": census,
            "contacts": int(world.last_contact_count),
            "islands": int(world.island_count),
        }
        self.emit(event)

        self._m_steps.inc()
        self._m_step_hist.observe(wall)
        for name, phase in phases.items():
            handles = self._m_phase.get(name)
            if handles is None:
                handles = self._m_phase[name] = (
                    self.registry.histogram("phase.seconds", phase=name),
                    self.registry.gauge("phase.bits", phase=name))
            handles[0].observe(phase["seconds"])
            handles[1].set(phase["bits"])
        for field, counter in self._m_census.items():
            counter.inc(census[field])
        if violation:
            self._m_violations.inc()

    # ------------------------------------------------------------------
    # Controller hook
    # ------------------------------------------------------------------
    def controller_event(self, step: int, action: str, violation: bool,
                         reexecuted: bool,
                         precisions: Dict[str, int]) -> None:
        self.emit({
            "kind": "controller",
            "step": step,
            "action": action,
            "violation": violation,
            "reexecuted": reexecuted,
            "precisions": dict(precisions),
        })
        self.registry.counter("controller.actions", action=action).inc()
        if reexecuted:
            self.registry.counter("controller.reexecutions").inc()

    # ------------------------------------------------------------------
    # Incident hook (detections + recovery-ladder transitions)
    # ------------------------------------------------------------------
    def incident(self, incident) -> None:
        if incident.kind == "detection":
            self.emit({
                "kind": "detection",
                "step": incident.step,
                "phase": incident.phase,
                "detail": incident.detail,
            })
            self.registry.counter("recovery.detections").inc()
        else:  # "recovery" | "abort"
            self.emit({
                "kind": "recovery",
                "step": incident.step,
                "rung": incident.rung,
                "action": incident.action,
                "outcome": incident.outcome,
                "detail": incident.detail,
                "islands": list(incident.islands),
            })
            self.registry.counter("recovery.actions",
                                  outcome=incident.outcome).inc()

    # ------------------------------------------------------------------
    # Serving-layer hooks (repro.serve)
    # ------------------------------------------------------------------
    def serve_request(self, op: str, session: Optional[str], ok: bool,
                      wall: float, error: Optional[str] = None) -> None:
        """One wire-protocol request outcome (schema v2)."""
        event = {
            "kind": "serve.request",
            "op": op,
            "session": session,
            "ok": ok,
            "wall": round(wall, 6),
        }
        if error:
            event["error"] = error
        self.emit(event)
        self.registry.counter("serve.requests", op=op).inc()
        if not ok:
            self.registry.counter("serve.rejections").inc()

    def serve_batch(self, batch: int, sessions: int, steps: int,
                    wall: float) -> None:
        """One fixed-tick batch dispatched by the scheduler."""
        self.emit({
            "kind": "serve.batch",
            "batch": batch,
            "sessions": sessions,
            "steps": steps,
            "wall": round(wall, 6),
        })
        self.registry.counter("serve.batches").inc()
        self.registry.counter("serve.steps").inc(steps)
        self.registry.histogram("serve.batch.seconds").observe(wall)

    def serve_evict(self, session: str, reason: str, step: int) -> None:
        """A session removed by admission control (not a clean close)."""
        self.emit({
            "kind": "serve.evict",
            "session": session,
            "reason": reason,
            "step": step,
        })
        self.registry.counter("serve.evictions", reason=reason).inc()

    def serve_recover(self, session: str, rung: int, outcome: str,
                      reason: str, wall: float, step: int) -> None:
        """One recovery-ladder transition for a served session
        (schema v3): rung 0 = full-precision re-execution, rung 1 =
        rollback/respawn from the journal, rung 2 = quarantine."""
        self.emit({
            "kind": "serve.recover",
            "session": session,
            "rung": rung,
            "outcome": outcome,
            "reason": reason,
            "wall": round(wall, 6),
            "step": step,
        })
        self.registry.counter("serve.recoveries", outcome=outcome).inc()
        self.registry.histogram("serve.recovery.seconds").observe(wall)

    def serve_drain(self, sessions: int, journaled: int,
                    completed: bool, wall: float) -> None:
        """One graceful shutdown (schema v3)."""
        self.emit({
            "kind": "serve.drain",
            "sessions": sessions,
            "journaled": journaled,
            "completed": completed,
            "wall": round(wall, 6),
        })
        self.registry.counter("serve.drains").inc()

    def serve_route(self, session: str, shard: int, reason: str) -> None:
        """A session pinned to a shard by the gateway (schema v4):
        at create, after crash recovery, or when a migration repoints
        its routing entry."""
        self.emit({
            "kind": "serve.route",
            "session": session,
            "shard": shard,
            "reason": reason,
        })
        self.registry.counter("serve.routes", reason=reason).inc()

    def serve_migrate(self, session: str, source: int, target: int,
                      step: int, ok: bool, wall: float) -> None:
        """One live-migration attempt between shards (schema v4)."""
        self.emit({
            "kind": "serve.migrate",
            "session": session,
            "source": source,
            "target": target,
            "step": step,
            "ok": ok,
            "wall": round(wall, 6),
        })
        self.registry.counter(
            "serve.migrations", outcome="ok" if ok else "failed").inc()
        self.registry.histogram("serve.migration.seconds").observe(wall)

    def serve_design(self, query: str, cached: bool, ok: bool,
                     front: int, wall: float) -> None:
        """One served design-space query (schema v6): the canonical
        query key, whether the server-side cache answered it, the front
        size and the wall cost (near zero on a cache hit)."""
        self.emit({
            "kind": "serve.design",
            "query": query,
            "cached": cached,
            "ok": ok,
            "front": front,
            "wall": round(wall, 6),
        })
        self.registry.counter(
            "serve.designs",
            source="cache" if cached else "search").inc()
        if not cached:
            self.registry.histogram("serve.design.seconds").observe(wall)

    # ------------------------------------------------------------------
    # Sweep hooks
    # ------------------------------------------------------------------
    def sweep_result(self, result) -> None:
        key = [k if isinstance(k, (str, int, float, bool)) else str(k)
               for k in result.key]
        self.emit({
            "kind": "sweep_job",
            "key": key,
            "wall": round(result.wall_time, 6),
            "ops": int(result.ops),
            "ok": result.ok,
        })
        self.registry.counter("sweep.jobs").inc()
        if not result.ok:
            self.registry.counter("sweep.failures").inc()

    def sweep_metrics(self, metrics) -> None:
        self.emit({
            "kind": "sweep",
            "jobs": metrics.jobs,
            "workers": metrics.workers,
            "elapsed": round(metrics.elapsed, 6),
            "busy": round(metrics.busy_time, 6),
            "ops": metrics.ops,
        })
        self.registry.counter("sweep.runs").inc()
