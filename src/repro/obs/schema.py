"""Trace event schema (version 6) and its validator.

Every JSONL line is one event; ``kind`` discriminates.  The step record
carries the four signal families the paper's argument is built on:

* per-phase **precision** bits (the control-register state that actually
  executed — Section 4.2);
* the per-step **energy delta** against the 10 % believability
  threshold (Section 4.1);
* the trivialization/memoization **census totals** (Table 4);
* wall-clock **timing** per phase.

Controller, detection/recovery, and sweep events share the stream so a
single timeline answers "what did the controller do when the energy
spiked at step 41, and what did recovery cost?".

Version 2 adds the serving layer's ``serve.*`` kinds (per-request
outcome, per-batch dispatch, session eviction) so a service trace and a
simulation trace interleave in one file.  Version 3 adds the
resilience kinds: ``serve.recover`` (one event per recovery-ladder
transition — rung, outcome, rollback step, wall cost) and
``serve.drain`` (one event per graceful shutdown).  Version 4 adds the
sharded-topology kinds emitted by the gateway (``repro.serve.shard``):
``serve.route`` (a session pinned to a shard — at create, crash
recovery, or after a migration repoints it) and ``serve.migrate`` (one
event per live migration attempt with source/target shard, the step the
snapshot moved at, digest verdict and wall cost).  Version 5 adds the
``recover`` controller action (the stable-path upward clamp back to the
register floor — feed-forward surrogate control made states below the
floor reachable, and the controller now repairs them instead of holding
there).  Version 6 adds the design-space-optimizer kind:
``serve.design`` (one event per served design query — canonical query
key, whether the server-side cache answered it, front size, outcome and
wall cost) plus the ``design`` serve op.  Older streams stay valid:
``meta.schema`` may carry any version in
:data:`SUPPORTED_SCHEMA_VERSIONS`, and earlier kinds are unchanged.

The validator is deliberately structural (required keys + coarse
types), not exhaustive: the trace must stay writable from hot paths and
checkable in CI without a JSON-schema dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["SCHEMA_VERSION", "SUPPORTED_SCHEMA_VERSIONS", "EVENT_KINDS",
           "SERVE_OPS", "V2_KINDS", "V3_KINDS", "V4_KINDS", "V6_KINDS",
           "validate_event", "validate_events"]

SCHEMA_VERSION = 6

#: Versions the validator accepts in ``meta.schema`` — a v1 trace (no
#: ``serve.*`` events), v2 trace (no resilience events), v3 trace (no
#: shard events), v4 trace (no ``recover`` controller actions) or v5
#: trace (no ``serve.design`` events) must keep validating after the
#: v6 bump.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6)

_NUM = (int, float)

#: kind -> {field: required python type(s)}
EVENT_KINDS: Dict[str, Dict[str, tuple]] = {
    "meta": {
        "schema": (int,),
        "scenario": (str,),
        "steps": (int,),
        "precision": (dict,),
        "mode": (str,),
        "census": (bool,),
    },
    "step": {
        "step": (int,),
        "wall": _NUM,
        "phases": (dict,),     # name -> {"seconds": float, "bits": int}
        "energy": (dict,),     # {"total", "delta_rel", "violation"}
        "census": (dict,),     # {"total", "trivial", "memo_hits",
                               #  "lut_hits", "nontrivial"}
        "contacts": (int,),
        "islands": (int,),
    },
    "controller": {
        "step": (int,),
        "action": (str,),      # "throttle" | "decay" | "hold" | "recover"
        "violation": (bool,),
        "reexecuted": (bool,),
        "precisions": (dict,),
    },
    "detection": {
        "step": (int,),
        "phase": (str,),
        "detail": (str,),
    },
    "recovery": {
        "step": (int,),
        "rung": (int,),
        "action": (str,),
        "outcome": (str,),
        "detail": (str,),
        "islands": (list,),
    },
    "sweep_job": {
        "key": (list,),
        "wall": _NUM,
        "ops": (int,),
        "ok": (bool,),
    },
    "sweep": {
        "jobs": (int,),
        "workers": (int,),
        "elapsed": _NUM,
        "busy": _NUM,
        "ops": (int,),
    },
    # --- schema v2: serving-layer events (repro.serve) ---
    "serve.request": {
        "op": (str,),
        "session": (str, type(None)),   # None before a session exists
        "ok": (bool,),
        "wall": _NUM,
    },
    "serve.batch": {
        "batch": (int,),
        "sessions": (int,),
        "steps": (int,),
        "wall": _NUM,
    },
    "serve.evict": {
        "session": (str,),
        "reason": (str,),
        "step": (int,),
    },
    # --- schema v3: resilience events (repro.serve.resilience) ---
    "serve.recover": {
        "session": (str,),
        "rung": (int,),        # 0 retry-full-precision, 1 rollback,
                               # 2 quarantine
        "outcome": (str,),     # "recovered" | "degraded" | "respawned"
                               # | "lost"
        "reason": (str,),
        "wall": _NUM,
        "step": (int,),        # the step the session resumed at
    },
    "serve.drain": {
        "sessions": (int,),
        "journaled": (int,),
        "completed": (bool,),  # False = grace period expired
        "wall": _NUM,
    },
    # --- schema v4: sharded-topology events (repro.serve.shard) ---
    "serve.route": {
        "session": (str,),
        "shard": (int,),
        "reason": (str,),      # "create" | "recover" | "migrate"
    },
    "serve.migrate": {
        "session": (str,),
        "source": (int,),
        "target": (int,),
        "step": (int,),        # step count the snapshot moved at
        "ok": (bool,),         # digest-verified and repointed
        "wall": _NUM,
    },
    # --- schema v6: design-space-optimizer events (repro.design) ---
    "serve.design": {
        "query": (str,),       # canonical query cache key
        "cached": (bool,),     # answered from the server-side cache
        "ok": (bool,),
        "front": (int,),       # front size (0 on failure)
        "wall": _NUM,
    },
}

#: Kinds introduced by schema version 2.
V2_KINDS = ("serve.request", "serve.batch", "serve.evict")

#: Kinds introduced by schema version 3.
V3_KINDS = ("serve.recover", "serve.drain")

#: Kinds introduced by schema version 4.
V4_KINDS = ("serve.route", "serve.migrate")

#: Kinds introduced by schema version 6.
V6_KINDS = ("serve.design",)

_RECOVER_OUTCOMES = ("recovered", "degraded", "respawned", "lost")

_ROUTE_REASONS = ("create", "recover", "migrate")

_CENSUS_FIELDS = ("total", "trivial", "memo_hits", "lut_hits",
                  "nontrivial")
_ENERGY_FIELDS = ("total", "delta_rel", "violation")
# "recover" is new in schema v5: the controller's stable-path clamp
# back up to the register floor.
_CONTROLLER_ACTIONS = ("throttle", "decay", "hold", "recover")

#: Wire-protocol operations (``repro.serve.protocol`` builds on this —
#: defined here so the validator needs no import from the serve layer).
SERVE_OPS = ("ping", "create", "step", "snapshot", "restore", "close",
             "stats",
             # schema v4: gateway admin ops (repro.serve.shard)
             "migrate", "drain_shard", "rebalance", "topology",
             # schema v6: design-space-optimizer queries (repro.design)
             "design")


def validate_event(event: dict) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    errors: List[str] = []
    kind = event.get("kind")
    spec = EVENT_KINDS.get(kind)
    if spec is None:
        return [f"unknown kind: {kind!r}"]
    for field, types in spec.items():
        if field not in event:
            errors.append(f"{kind}: missing field {field!r}")
        elif not isinstance(event[field], types):
            errors.append(
                f"{kind}.{field}: expected {'/'.join(t.__name__ for t in types)},"
                f" got {type(event[field]).__name__}")
    if errors:
        return errors

    if kind == "step":
        census = event["census"]
        for field in _CENSUS_FIELDS:
            if not isinstance(census.get(field), int):
                errors.append(f"step.census.{field}: missing or non-int")
        energy = event["energy"]
        for field in _ENERGY_FIELDS:
            if field not in energy:
                errors.append(f"step.energy.{field}: missing")
        if not isinstance(energy.get("violation"), bool):
            errors.append("step.energy.violation: must be bool")
        for name, phase in event["phases"].items():
            if not isinstance(phase, dict) or \
                    not isinstance(phase.get("seconds"), _NUM) or \
                    not isinstance(phase.get("bits"), int):
                errors.append(f"step.phases[{name}]: needs seconds+bits")
    elif kind == "controller":
        if event["action"] not in _CONTROLLER_ACTIONS:
            errors.append(f"controller.action: {event['action']!r} not in "
                          f"{_CONTROLLER_ACTIONS}")
    elif kind == "meta" and \
            event["schema"] not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(f"meta.schema: {event['schema']} not in "
                      f"{SUPPORTED_SCHEMA_VERSIONS}")
    elif kind == "serve.request" and event["op"] not in SERVE_OPS:
        errors.append(f"serve.request.op: {event['op']!r} not in "
                      f"{SERVE_OPS}")
    elif kind == "serve.recover" and \
            event["outcome"] not in _RECOVER_OUTCOMES:
        errors.append(f"serve.recover.outcome: {event['outcome']!r} "
                      f"not in {_RECOVER_OUTCOMES}")
    elif kind == "serve.route" and event["reason"] not in _ROUTE_REASONS:
        errors.append(f"serve.route.reason: {event['reason']!r} not in "
                      f"{_ROUTE_REASONS}")
    return errors


def validate_events(events: Sequence[dict]) -> Tuple[int, List[str]]:
    """Validate a whole stream; returns ``(invalid_count, first_errors)``.

    ``first_errors`` keeps at most ten messages so a corrupt trace does
    not flood CI logs.
    """
    invalid = 0
    messages: List[str] = []
    for i, event in enumerate(events):
        errors = validate_event(event)
        if errors:
            invalid += 1
            for err in errors:
                if len(messages) < 10:
                    messages.append(f"event {i}: {err}")
    return invalid, messages
