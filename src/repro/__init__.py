"""Reproduction of "The Art of Deception: Adaptive Precision Reduction for
Area Efficient Physics Acceleration" (Yeh et al., MICRO 2007).

Public API highlights
---------------------
- :mod:`repro.fp` -- reduced-precision FP substrate (rounding modes,
  trivialization, the per-phase :class:`~repro.fp.FPContext`).
- :mod:`repro.memo` -- memoization tables and the 2K arithmetic LUT.
- :mod:`repro.physics` -- constraint-based rigid-body engine (the ODE-like
  simulation substrate).
- :mod:`repro.workloads` -- the eight PhysicsBench-equivalent scenarios.
- :mod:`repro.tuning` -- dynamic precision controller and believability
  (minimum-precision) search.
- :mod:`repro.arch` -- ParallAX-style many-core timing / area / energy
  model with hierarchical FPU sharing.
- :mod:`repro.experiments` -- one module per paper table/figure.
- :mod:`repro.obs` -- observability layer: metrics registry, JSONL step
  tracing, and the ``repro trace`` summary reports.
"""

__version__ = "1.0.0"

from .fp import FPContext, RoundingMode

__all__ = ["FPContext", "RoundingMode", "__version__"]
