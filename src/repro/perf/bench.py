"""``python -m repro bench`` — step-loop throughput harness.

Times the census-free (pure round-op-round) and census step loops per
scenario at the tuned preset precisions, plus a kernel microbenchmark
comparing the fused round-a/round-b/op/round-result path against the
legacy three-pass reduction it replaced.  Results land in a
``BENCH_<stamp>.json`` so the repo accumulates a perf trajectory;
per-scenario speedups are reported against a recorded baseline
(``results/BENCH_baseline.json`` by default — numbers are only
meaningful on the machine that recorded the baseline).

Scenario timing jobs run through :class:`~repro.perf.sweep.SweepRunner`
but default to a single worker: concurrent timing on shared cores skews
steps/sec.  Set ``--workers``/``REPRO_WORKERS`` explicitly to trade
accuracy for sweep time.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..experiments.runcache import write_json_atomic
from ..experiments.table1 import PRESET_PRECISIONS
from ..fp.context import FPContext
from ..fp.rounding import RoundingMode, fused_binop, reduce_array_fast
from ..workloads import SCENARIO_NAMES, build
from .sweep import SweepJob, SweepOutcome, SweepRunner

__all__ = ["BenchProtocol", "QUICK_SCENARIOS", "bench_stamp", "run_bench",
           "render_summary"]

#: Monotone per-process suffix so two payloads written in the same
#: process never collide even within one wall-clock second.
_STAMP_COUNTER = itertools.count(1)


def bench_stamp() -> str:
    """Collision-proof payload stamp: wall time + pid + sequence number.

    ``time.strftime`` alone collides when two runs (CI matrix lanes, the
    sharded bench's back-to-back topologies) land in the same second and
    silently overwrite each other's ``BENCH_*.json``.  The stamp stays
    sortable-by-time first, and keeps the ``BENCH_<stamp>[_serve].json``
    naming scheme every baseline-comparison glob relies on.
    """
    return (f"{time.strftime('%Y%m%d_%H%M%S')}"
            f"_p{os.getpid()}n{next(_STAMP_COUNTER)}")

#: Scenario subset for ``--quick`` (CI smoke); always includes the
#: paper's hardest mixed workload.
QUICK_SCENARIOS = ("continuous", "everything", "ragdoll")

DEFAULT_BASELINE = Path("results") / "BENCH_baseline.json"


@dataclass(frozen=True)
class BenchProtocol:
    """Warmup/timed step counts — must match the recorded baseline's
    protocol for speedups to be apples-to-apples."""

    census_free_warmup: int = 5
    census_free_steps: int = 20
    census_warmup: int = 2
    census_steps: int = 8
    # Per-phase wall-time breakdown pass (census-free, observer-timed).
    phase_warmup: int = 2
    phase_steps: int = 10
    kernel_shape: tuple = (4096, 12)
    kernel_iters: int = 50
    kernel_precision: int = 9
    kernel_mode: str = "jam"
    # Metrics-overhead assertion: tracing a census-free step loop must
    # cost less than ``obs_budget_pct`` of its throughput.
    obs_scenario: str = "everything"
    obs_warmup: int = 3
    obs_steps: int = 12
    obs_rounds: int = 3
    obs_budget_pct: float = 10.0


def _time_step_loop(scenario: str, census: bool, warmup: int,
                    steps: int) -> SweepOutcome:
    """Time one scenario's step loop at its tuned preset precisions."""
    ctx = FPContext(dict(PRESET_PRECISIONS[scenario]), census=census)
    world = build(scenario, ctx=ctx)
    for _ in range(warmup):
        world.step()
    start = time.perf_counter()
    for _ in range(steps):
        world.step()
    wall = time.perf_counter() - start
    return SweepOutcome(
        value={
            "steps_per_sec": round(steps / wall, 3) if wall else 0.0,
            "wall": round(wall, 4),
            "steps": steps,
        },
        ops=steps,
    )


class _PhaseAccumulator:
    """Minimal observer: sums the ``phase_done`` wall times per phase.

    No sink, no census deltas — just the hook the step loop already
    calls, so the breakdown pass stays within the metrics budget.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.steps = 0

    def begin_step(self, world) -> None:
        pass

    def phase_done(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def end_step(self, world, record) -> None:
        self.steps += 1


def _phase_breakdown(scenario: str, warmup: int, steps: int) -> dict:
    """Where the census-free step budget goes, phase by phase."""
    ctx = FPContext(dict(PRESET_PRECISIONS[scenario]), census=False)
    world = build(scenario, ctx=ctx)
    for _ in range(warmup):
        world.step()
    acc = _PhaseAccumulator()
    world.observer = acc
    for _ in range(steps):
        world.step()
    world.observer = None
    total = sum(acc.seconds.values())
    return {
        "steps": steps,
        "wall": round(total, 5),
        "phases": {
            name: {
                "wall": round(wall, 5),
                "pct": round(100.0 * wall / total, 1) if total else 0.0,
            }
            for name, wall in sorted(acc.seconds.items(),
                                     key=lambda item: -item[1])
        },
    }


def _legacy_binop(ufunc, a, b, precision, mode, guard_bits=3):
    """The pre-fusion hot path: three separate reduction passes."""
    ra = reduce_array_fast(a, precision, mode, guard_bits)
    rb = reduce_array_fast(b, precision, mode, guard_bits)
    return reduce_array_fast(ufunc(ra, rb), precision, mode, guard_bits)


def _kernel_bench(protocol: BenchProtocol) -> Dict[str, float]:
    """Fused vs legacy reduced binop pair (mul+add), plus fused axpy."""
    rng = np.random.default_rng(7)
    shape = tuple(protocol.kernel_shape)
    a = rng.standard_normal(shape).astype(np.float32)
    b = rng.standard_normal(shape).astype(np.float32)
    c = rng.standard_normal(shape).astype(np.float32)
    mode = RoundingMode.parse(protocol.kernel_mode)
    precision = protocol.kernel_precision
    iters = protocol.kernel_iters

    ctx = FPContext({"lcp": precision}, mode=mode, census=False)
    ctx.phase = "lcp"

    def _rate(fn) -> float:
        for _ in range(max(2, iters // 10)):
            fn()
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        wall = time.perf_counter() - start
        return round(iters / wall, 2) if wall else 0.0

    fused = _rate(lambda: ctx.add(ctx.mul(a, b), c))
    legacy = _rate(lambda: _legacy_binop(
        np.add, _legacy_binop(np.multiply, a, b, precision, mode), c,
        precision, mode))
    axpy = _rate(lambda: ctx.axpy(a, b, c))
    return {
        "binop_pairs_per_sec": fused,
        "legacy_binop_pairs_per_sec": legacy,
        "axpy_per_sec": axpy,
        "fused_speedup_vs_legacy": round(fused / legacy, 3) if legacy else 0.0,
        "elements": int(a.size),
        "iterations": iters,
    }


def _time_obs_loop(scenario: str, warmup: int, steps: int,
                   trace_path: Optional[Path] = None) -> float:
    """Steps/sec of one census-free loop, optionally under a tracer."""
    from ..obs import JsonlWriter, Tracer

    ctx = FPContext(dict(PRESET_PRECISIONS[scenario]), census=False)
    world = build(scenario, ctx=ctx)
    tracer = None
    if trace_path is not None:
        tracer = Tracer(JsonlWriter(trace_path))
        tracer.attach(world=world)
    try:
        for _ in range(warmup):
            world.step()
        start = time.perf_counter()
        for _ in range(steps):
            world.step()
        wall = time.perf_counter() - start
    finally:
        if tracer is not None:
            tracer.close()
    return steps / wall if wall else 0.0


def _obs_overhead(protocol: BenchProtocol) -> dict:
    """Measure the cost of enabling metrics/tracing on the step loop.

    Plain and traced loops run interleaved for ``obs_rounds`` rounds and
    the best rate of each side is compared — best-of-N damps scheduler
    noise, which matters because the real tracer cost (a handful of
    ``perf_counter`` calls and dict updates per millisecond-scale step)
    is far below the failure budget.
    """
    scenario = protocol.obs_scenario
    plain_best = traced_best = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "overhead_trace.jsonl"
        for _ in range(max(1, protocol.obs_rounds)):
            plain_best = max(plain_best, _time_obs_loop(
                scenario, protocol.obs_warmup, protocol.obs_steps))
            traced_best = max(traced_best, _time_obs_loop(
                scenario, protocol.obs_warmup, protocol.obs_steps,
                trace_path))
    if traced_best > 0:
        overhead_pct = (plain_best / traced_best - 1.0) * 100.0
    else:
        overhead_pct = float("inf")
    return {
        "scenario": scenario,
        "steps": protocol.obs_steps,
        "rounds": protocol.obs_rounds,
        "plain_steps_per_sec": round(plain_best, 3),
        "traced_steps_per_sec": round(traced_best, 3),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": protocol.obs_budget_pct,
        "ok": overhead_pct < protocol.obs_budget_pct,
    }


def _load_baseline(path: Optional[Path]) -> Optional[dict]:
    path = Path(path) if path is not None else DEFAULT_BASELINE
    if not path.exists():
        return None
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    payload["_path"] = str(path)
    return payload


def run_bench(
    scenarios: Optional[Iterable[str]] = None,
    quick: bool = False,
    protocol: Optional[BenchProtocol] = None,
    output_dir: str = "results",
    baseline_path: Optional[str] = None,
    workers: Optional[int] = None,
    kernel: bool = True,
    compare: bool = True,
    obs_overhead: bool = True,
) -> dict:
    """Run the benchmark sweep and persist ``BENCH_<stamp>.json``.

    Returns the written payload (its ``"path"`` key holds the file).
    ``compare=False`` suppresses the baseline speedup columns — used when
    a non-default protocol makes them apples-to-oranges.
    ``obs_overhead`` measures the cost of enabling the observability
    tracer on the step loop and asserts it stays under the budget
    (payload key ``obs_overhead``, with an ``ok`` flag CI gates on).
    """
    protocol = protocol or BenchProtocol()
    if scenarios is None:
        scenarios = QUICK_SCENARIOS if quick else SCENARIO_NAMES
    scenarios = list(scenarios)
    unknown = [s for s in scenarios if s not in SCENARIO_NAMES]
    if unknown:
        raise ValueError(f"unknown scenarios: {unknown}")

    # Default to one worker for timing fidelity; REPRO_WORKERS or an
    # explicit --workers opts into concurrent (noisier) timing.
    runner = SweepRunner(workers if workers is not None else
                         int(os.environ.get("REPRO_WORKERS", "1") or 1))
    jobs = []
    for scenario in scenarios:
        jobs.append(SweepJob(
            key=(scenario, "census_free"), fn=_time_step_loop,
            args=(scenario, False, protocol.census_free_warmup,
                  protocol.census_free_steps)))
        jobs.append(SweepJob(
            key=(scenario, "census"), fn=_time_step_loop,
            args=(scenario, True, protocol.census_warmup,
                  protocol.census_steps)))
    results = runner.run(jobs)
    by_key = {r.key: r for r in results}

    scenario_rows: Dict[str, dict] = {}
    for scenario in scenarios:
        free = by_key[(scenario, "census_free")]
        cen = by_key[(scenario, "census")]
        scenario_rows[scenario] = {
            "census_free_steps_per_sec": free.value["steps_per_sec"],
            "census_steps_per_sec": cen.value["steps_per_sec"],
            "census_free_wall": free.value["wall"],
            "census_wall": cen.value["wall"],
        }

    baseline = _load_baseline(
        Path(baseline_path) if baseline_path else None) if compare else None
    speedups: Dict[str, dict] = {}
    warnings: List[str] = []
    if baseline is not None:
        base_scenarios = baseline.get("scenarios", {})
        for scenario, row in scenario_rows.items():
            base = base_scenarios.get(scenario) or {}
            entry = {}
            for loop in ("census_free", "census"):
                ours = row[f"{loop}_steps_per_sec"]
                theirs = base.get(f"{loop}_steps_per_sec")
                # A missing or zero baseline rate yields a null speedup
                # plus a warning — never a crash or a printed `inf`.
                if isinstance(theirs, (int, float)) and theirs > 0:
                    entry[loop] = round(ours / theirs, 3)
                else:
                    entry[loop] = None
                    warnings.append(
                        f"baseline has no usable {loop} rate for "
                        f"'{scenario}'; speedup reported as null")
            speedups[scenario] = entry

    stamp = bench_stamp()
    payload = {
        "kind": "repro-bench",
        "stamp": stamp,
        "quick": quick,
        "protocol": {
            "census_free": {"warmup": protocol.census_free_warmup,
                            "steps": protocol.census_free_steps},
            "census": {"warmup": protocol.census_warmup,
                       "steps": protocol.census_steps},
            "phases": {"warmup": protocol.phase_warmup,
                       "steps": protocol.phase_steps},
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "workers": runner.last_metrics.workers,
        },
        "scenarios": scenario_rows,
        "phase_breakdown": {
            scenario: _phase_breakdown(scenario, protocol.phase_warmup,
                                       protocol.phase_steps)
            for scenario in scenarios
        },
        "sweep": {
            "elapsed": round(runner.last_metrics.elapsed, 3),
            "busy_time": round(runner.last_metrics.busy_time, 3),
            "steps_executed": runner.last_metrics.ops,
        },
    }
    if kernel:
        payload["kernel"] = _kernel_bench(protocol)
        if baseline is not None and "kernel" in baseline:
            base_rate = baseline["kernel"].get("binop_pairs_per_sec")
            if isinstance(base_rate, (int, float)) and base_rate > 0:
                payload["kernel"]["speedup_vs_baseline"] = round(
                    payload["kernel"]["binop_pairs_per_sec"] / base_rate, 3)
            else:
                payload["kernel"]["speedup_vs_baseline"] = None
                warnings.append("baseline kernel rate missing or zero; "
                                "speedup reported as null")
    if obs_overhead:
        payload["obs_overhead"] = _obs_overhead(protocol)
        if not payload["obs_overhead"]["ok"]:
            warnings.append(
                "metrics overhead "
                f"{payload['obs_overhead']['overhead_pct']:.1f}% exceeds "
                f"the {protocol.obs_budget_pct:.0f}% budget")
    if baseline is not None:
        payload["baseline"] = {
            "path": baseline.get("_path"),
            "recorded": baseline.get("recorded") or baseline.get("stamp"),
            "note": baseline.get("note", ""),
        }
        payload["speedup_vs_baseline"] = speedups
    if warnings:
        payload["warnings"] = warnings

    out_dir = Path(output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{stamp}.json"
    write_json_atomic(path, payload)
    payload["path"] = str(path)
    return payload


def _format_speedup(value) -> str:
    """``-`` for null speedups (missing/zero baseline entries)."""
    return f"{value:.2f}x" if isinstance(value, (int, float)) else "-"


def render_summary(payload: dict) -> str:
    """Human-readable bench summary for the CLI."""
    from ..experiments.report import render_table

    headers = ["scenario", "census-free steps/s", "census steps/s"]
    has_speedup = bool(payload.get("speedup_vs_baseline"))
    if has_speedup:
        headers += ["vs baseline (free)", "vs baseline (census)"]
    rows = []
    for scenario, row in payload["scenarios"].items():
        line = [scenario,
                f"{row['census_free_steps_per_sec']:.1f}",
                f"{row['census_steps_per_sec']:.1f}"]
        if has_speedup:
            sp = payload["speedup_vs_baseline"].get(scenario) or {}
            line += [_format_speedup(sp.get("census_free")),
                     _format_speedup(sp.get("census"))]
        rows.append(line)
    out = render_table(headers, rows, title="repro bench — step-loop "
                                            "throughput")
    for scenario, breakdown in payload.get("phase_breakdown",
                                           {}).items():
        parts = ", ".join(f"{name} {entry['pct']:.0f}%"
                          for name, entry in breakdown["phases"].items())
        out += f"\nphases[{scenario}]: {parts}"
    kernel = payload.get("kernel")
    if kernel:
        out += (
            f"\nkernel: fused {kernel['binop_pairs_per_sec']:.0f} pairs/s"
            f" vs legacy {kernel['legacy_binop_pairs_per_sec']:.0f}"
            f" ({kernel['fused_speedup_vs_legacy']:.2f}x), axpy "
            f"{kernel['axpy_per_sec']:.0f}/s")
        if kernel.get("speedup_vs_baseline") is not None:
            out += (f", {kernel['speedup_vs_baseline']:.2f}x vs recorded"
                    f" baseline")
    overhead = payload.get("obs_overhead")
    if overhead:
        out += (
            f"\nmetrics overhead: {overhead['overhead_pct']:.1f}% on "
            f"{overhead['scenario']} (budget "
            f"{overhead['budget_pct']:.0f}%) — "
            + ("OK" if overhead["ok"] else "REGRESSED"))
    for warning in payload.get("warnings", ()):
        out += f"\nwarning: {warning}"
    written = payload.get("path", f"BENCH_{payload['stamp']}.json")
    out += f"\nwritten: {Path(written).name}"
    return out
