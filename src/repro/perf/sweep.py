"""Parallel sweep execution over experiment grids.

Every expensive consumer in this reproduction — the Table 1
minimum-precision search, the Table 4 census runs, the scalability
sweeps, the ``health`` fault campaigns — iterates an embarrassingly
parallel (scenario × rounding-mode × precision) grid.  The
:class:`SweepRunner` fans such grids out over a
:class:`concurrent.futures.ProcessPoolExecutor` with deterministic job
keys and per-job wall-time/op-count metrics, falling back to in-process
serial execution when one worker is requested (or the platform cannot
spawn a pool), so results are identical either way.

Worker count resolution: an explicit ``workers`` argument wins, then the
``REPRO_WORKERS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SweepJob",
    "JobResult",
    "SweepMetrics",
    "SweepOutcome",
    "SweepRunner",
    "resolve_workers",
]

#: Environment variable overriding the auto-detected worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None,
                    jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_WORKERS`` > ``os.cpu_count()``.

    Never exceeds the job count (spawning idle processes is pure cost)
    and never drops below one.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    workers = max(1, int(workers))
    if jobs is not None:
        workers = min(workers, max(1, int(jobs)))
    return workers


@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work.

    ``key`` is a caller-chosen deterministic identifier (e.g.
    ``("ragdoll", "lcp", "jam")``) used to route results back regardless
    of completion order; ``fn`` must be a module-level callable so it
    pickles across the process boundary.
    """

    key: Tuple
    fn: Callable
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """Optional rich return for workers that report an op/work count."""

    value: Any
    ops: int = 0


@dataclass
class JobResult:
    """One job's result with its execution metrics."""

    key: Tuple
    value: Any = None
    wall_time: float = 0.0
    #: job-defined work counter (simulation steps, FP ops, ...)
    ops: int = 0
    error: Optional[str] = None
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepMetrics:
    """Aggregate metrics for one :meth:`SweepRunner.run` call."""

    jobs: int
    workers: int
    elapsed: float
    busy_time: float
    ops: int

    @property
    def speedup(self) -> float:
        """Sum of per-job wall times over the sweep's elapsed time."""
        return self.busy_time / self.elapsed if self.elapsed > 0 else 1.0


def _execute_job(job: SweepJob) -> JobResult:
    """Run one job, timing it and capturing any exception.

    Never raises: errors travel back as data so one bad cell cannot
    take down a whole grid (the runner re-raises by default).
    """
    start = time.perf_counter()
    try:
        value = job.fn(*job.args, **job.kwargs)
        ops = 0
        if isinstance(value, SweepOutcome):
            ops = int(value.ops)
            value = value.value
        return JobResult(job.key, value, time.perf_counter() - start,
                         ops, None, os.getpid())
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return JobResult(job.key, None, time.perf_counter() - start,
                         0, f"{type(exc).__name__}: {exc}", os.getpid())


class SweepRunner:
    """Fan jobs out over worker processes (or run them serially).

    The runner is stateless between calls apart from
    :attr:`last_metrics`; a single instance can execute many sweeps.
    """

    def __init__(self, workers: Optional[int] = None,
                 observer=None) -> None:
        self.requested_workers = workers
        self.last_metrics: Optional[SweepMetrics] = None
        #: optional :class:`~repro.obs.Tracer`; per-job wall/op metrics
        #: and the aggregate sweep record stream through it in the same
        #: JSONL schema the step telemetry uses.
        self.observer = observer

    def resolved_workers(self, jobs: Optional[int] = None) -> int:
        return resolve_workers(self.requested_workers, jobs)

    def run(self, jobs: Iterable[SweepJob],
            reraise: bool = True) -> List[JobResult]:
        """Execute all jobs; results come back in submission order.

        With ``reraise`` (the default) the first failed job raises a
        ``RuntimeError`` naming every failing key; pass ``False`` to
        inspect per-job errors instead.
        """
        jobs = list(jobs)
        workers = self.resolved_workers(len(jobs))
        start = time.perf_counter()
        results: List[JobResult]
        if workers <= 1 or len(jobs) <= 1:
            workers = 1
            results = [_execute_job(job) for job in jobs]
        else:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_execute_job, jobs))
            except Exception:
                # Pool creation (or its IPC) can fail on restricted
                # platforms; the jobs themselves never raise, so this is
                # infrastructure failure — fall back to serial.
                workers = 1
                results = [_execute_job(job) for job in jobs]
        elapsed = time.perf_counter() - start
        self.last_metrics = SweepMetrics(
            jobs=len(jobs),
            workers=workers,
            elapsed=elapsed,
            busy_time=sum(r.wall_time for r in results),
            ops=sum(r.ops for r in results),
        )
        if self.observer is not None:
            for result in results:
                self.observer.sweep_result(result)
            self.observer.sweep_metrics(self.last_metrics)
        if reraise:
            failed = [r for r in results if not r.ok]
            if failed:
                detail = "; ".join(
                    f"{r.key}: {r.error}" for r in failed[:5])
                raise RuntimeError(
                    f"{len(failed)}/{len(results)} sweep jobs failed: "
                    f"{detail}")
        return results

    def map(self, fn: Callable, arg_tuples: Sequence[Tuple],
            keys: Optional[Sequence[Tuple]] = None) -> List[JobResult]:
        """Convenience: one job per positional-args tuple."""
        arg_tuples = list(arg_tuples)
        if keys is None:
            keys = [(i,) + tuple(args) for i, args in enumerate(arg_tuples)]
        jobs = [SweepJob(key=tuple(key), fn=fn, args=tuple(args))
                for key, args in zip(keys, arg_tuples)]
        return self.run(jobs)
