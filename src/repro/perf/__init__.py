"""Performance subsystem: parallel sweeps and the ``repro bench`` harness.

``repro.perf.sweep`` is import-light (stdlib only) so experiment modules
can pull :class:`SweepRunner` without cycles; ``repro.perf.bench`` pulls
in the workloads and is imported on demand by the CLI.
"""

from .sweep import (
    JobResult,
    SweepJob,
    SweepMetrics,
    SweepOutcome,
    SweepRunner,
    resolve_workers,
)

__all__ = [
    "JobResult",
    "SweepJob",
    "SweepMetrics",
    "SweepOutcome",
    "SweepRunner",
    "resolve_workers",
]
