"""The asyncio simulation service: sessions behind an NDJSON socket.

:class:`SimulationService` wires the pieces together — a
:class:`~repro.serve.session.SessionManager` (the session table), an
:class:`~repro.serve.admission.AdmissionController` (bounded queues),
a :class:`~repro.serve.scheduler.BatchScheduler` (fixed-tick dispatch
over a worker pool), and an optional
:class:`~repro.serve.resilience.JournalStore` (crash durability) —
and speaks the :mod:`~repro.serve.protocol` over TCP or a UNIX socket.
Every request is counted through :mod:`repro.obs.metrics` and, when a
tracer is attached, streamed as schema-v3 ``serve.*`` events alongside
the ordinary step telemetry.

Ops that touch a session's world (``step``, ``snapshot``, ``restore``)
are serialized through the scheduler so they always observe a step
boundary; control-plane ops (``create``, ``close``, ``ping``,
``stats``) run directly on the event loop.

Crash safety: with ``journal_dir`` set, :meth:`SimulationService.start`
replays every journal on disk and reinstalls the sessions it finds —
digest-verified, so a recovered world is bit-identical to the one that
was journaled or it is reported as failed.  Mutating requests that
carry a client ``id`` are idempotent: a retry of an already-executed
``(session, id)`` pair replays the recorded response (marked
``"replayed": true``) instead of stepping the world twice — which is
what makes the client's retry-after-reconnect loop safe.

Shutdown is a *drain*, not a teardown: :meth:`SimulationService.drain`
stops accepting connections, answers new work with a retryable
``draining`` error, lets in-flight batches complete, writes a final
journal entry for every live session, and only then stops — so a
SIGTERM'd service restarts with zero session loss.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Set

from ..obs.metrics import MetricsRegistry
from ..robustness.incidents import IncidentLog
from ..workloads import UnknownScenarioError
from .admission import AdmissionController, AdmissionPolicy
from .protocol import (
    GATEWAY_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .resilience import JournalStore
from .scheduler import BatchScheduler
from .session import SessionConfig, SessionManager

__all__ = ["ServiceConfig", "SimulationService", "serve_forever"]

#: Replayable responses retained for idempotent retry, service-wide.
REPLAY_CACHE_SIZE = 1024

#: Served design-query payloads retained, keyed on the canonical query.
DESIGN_CACHE_SIZE = 128


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 7070
    #: serve on a UNIX socket instead of TCP when set
    unix_path: Optional[str] = None
    max_sessions: int = 32
    workers: Optional[int] = None
    batch_window: float = 0.002
    max_pending_per_session: int = 4
    max_queue_depth: int = 256
    step_budget: float = 30.0
    #: optional JSONL trace path for ``serve.*`` + step telemetry
    trace_path: Optional[str] = None
    #: directory for per-session snapshot journals; None disables
    #: durability (sessions die with the process)
    journal_dir: Optional[str] = None
    #: steps a session may advance before its next journal entry
    journal_every: int = 32
    #: seconds the drain path waits for in-flight batches
    drain_grace: float = 10.0
    #: permit fault-drill session fields (inject_rate, chaos_slow_*)
    allow_chaos: bool = False
    #: coalesce compatible same-tick step requests into one vectorized
    #: :class:`~repro.physics.WorldBatch` pass (bit-identical)
    fleet_step: bool = True
    #: optional PR 9 surrogate artifact path warm-starting served
    #: ``design`` queries (cold search when None)
    design_surrogate: Optional[str] = None
    #: served design payloads cached, keyed on the canonical query
    design_cache_size: int = DESIGN_CACHE_SIZE


class SimulationService:
    """Session manager + admission + scheduler behind one socket."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 observer=None) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or (observer.registry if observer
                                     is not None else MetricsRegistry())
        self.observer = observer
        self.incidents = IncidentLog()
        self.journal = (JournalStore(self.config.journal_dir)
                        if self.config.journal_dir else None)
        self.manager = SessionManager(self.config.max_sessions,
                                      registry=self.registry,
                                      observer=observer,
                                      journal=self.journal)
        self.admission = AdmissionController(
            AdmissionPolicy(
                max_sessions=self.config.max_sessions,
                max_pending_per_session=self.config.max_pending_per_session,
                max_queue_depth=self.config.max_queue_depth,
                step_budget=self.config.step_budget,
                tick_period=max(self.config.batch_window, 0.001),
            ),
            registry=self.registry)
        self.scheduler = BatchScheduler(
            self.manager, self.admission, workers=self.config.workers,
            batch_window=self.config.batch_window, observer=observer,
            registry=self.registry, journal=self.journal,
            journal_every=self.config.journal_every,
            incidents=self.incidents,
            fleet_step=self.config.fleet_step)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._replay: "OrderedDict" = OrderedDict()
        #: canonical query key -> design payload (LRU, single-flight)
        self._design_cache: "OrderedDict" = OrderedDict()
        self._design_inflight: dict = {}
        self.designs_total = 0
        self.design_cache_hits = 0
        self._draining = False
        self.started_at = 0.0
        self.requests_total = 0
        #: per-journal recovery summaries from the last :meth:`start`
        self.recovered: List[dict] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover journaled sessions, bind the socket, start ticking."""
        if self.journal is not None:
            self.recovered = self.manager.recover_from(self.journal)
            for entry in self.recovered:
                if not entry.get("ok"):
                    self.incidents.detection(
                        entry.get("step") or 0, "serve",
                        f"journal recovery failed for "
                        f"{entry['session']}: {entry.get('error')}")
        self.scheduler.start()
        # The stream limit must fit a whole frame: restore requests can
        # carry base64 snapshot payloads far beyond the 64 KiB default.
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path,
                limit=MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=MAX_FRAME_BYTES)
        self.started_at = time.time()

    @property
    def address(self):
        """Bound address: ``(host, port)`` for TCP, the path for UNIX."""
        if self.config.unix_path:
            return self.config.unix_path
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def drain(self) -> dict:
        """Graceful shutdown: admission off, batches finish, journals
        flush, then stop.  Returns a summary for the caller to log."""
        if self._draining:
            return {"sessions": len(self.manager), "journaled": 0,
                    "completed": True, "wall": 0.0}
        self._draining = True
        start = time.perf_counter()
        if self._server is not None:
            # No new connections; established ones keep being answered
            # (with ``draining`` errors for new work).
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        completed = await self.scheduler.quiesce(
            timeout=self.config.drain_grace)
        journaled = 0
        for session in self.manager.sessions():
            if session.state != "active":
                continue
            checkpoint, step, state = session.capture_for_journal()
            session.mark_journaled(checkpoint, step, state)
            if self.journal is not None:
                self.journal.append_snapshot(session.id, checkpoint,
                                             step, state)
                journaled += 1
        if self.journal is not None:
            self.journal.flush()
        summary = {
            "sessions": len(self.manager),
            "journaled": journaled,
            "completed": completed,
            "wall": round(time.perf_counter() - start, 6),
        }
        if self.observer is not None:
            self.observer.serve_drain(**summary)
        else:
            self.registry.counter("serve.drains").inc()
        await self.stop()
        return summary

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        await self.scheduler.stop()
        # Journals survive close_all: stopping the service must leave
        # every session recoverable by the next one.
        self.manager.close_all()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    # reset, or a line beyond the stream limit — there
                    # is no way to resync a torn NDJSON stream; drop it.
                    break
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    writer.write(encode_frame(
                        error_response(exc.code, exc.detail)))
                    await writer.drain()
                    continue
                response = await self.handle_request(frame)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def handle_request(self, frame: dict) -> dict:
        """Execute one request frame; always returns a response frame."""
        start = time.perf_counter()
        self.requests_total += 1
        op = frame.get("op") if isinstance(frame.get("op"), str) else None
        session_id = (frame.get("session")
                      if isinstance(frame.get("session"), str) else None)
        try:
            op = parse_request(frame)
            response = await self._execute(op, frame)
            ok, error = True, None
        except ServiceError as exc:
            response = error_response(exc.code, exc.detail, frame,
                                      extra=exc.extra)
            ok, error = False, exc.code
        except UnknownScenarioError as exc:
            response = error_response("bad_request", str(exc), frame)
            ok, error = False, "bad_request"
        except Exception as exc:  # noqa: BLE001 - never kill the server
            # The connection survives, but the failure must not vanish:
            # an unexpected exception here is a server bug by definition.
            self.incidents.detection(
                0, "serve",
                f"internal error on {op or 'invalid'!r}: "
                f"{type(exc).__name__}: {exc}")
            self.registry.counter("serve.internal_errors").inc()
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}", frame)
            ok, error = False, "internal"
        wall = time.perf_counter() - start
        self.registry.counter("serve.requests",
                              op=op or "invalid").inc()
        self.registry.histogram("serve.request.seconds").observe(wall)
        if self.observer is not None:
            self.observer.serve_request(op or "invalid",
                                        response.get("session",
                                                     session_id),
                                        ok, wall, error)
        return response

    # ------------------------------------------------------------------
    def _replay_key(self, op: str, frame: dict):
        """Cache key for idempotent retry, or ``None``.

        Only ops that mutate a session are cached — a replayed ``step``
        must not advance the world a second time.  Reads (``snapshot``,
        ``stats``, ``ping``) are naturally idempotent.
        """
        rid = frame.get("id")
        if rid is None or op not in ("step", "restore", "close"):
            return None
        session = frame.get("session")
        if not isinstance(session, str):
            return None
        return (session, str(rid))

    def _remember(self, key, response: dict) -> None:
        self._replay[key] = dict(response)
        while len(self._replay) > REPLAY_CACHE_SIZE:
            self._replay.popitem(last=False)

    async def _execute(self, op: str, frame: dict) -> dict:
        key = self._replay_key(op, frame)
        if key is not None:
            cached = self._replay.get(key)
            if cached is not None:
                self.registry.counter("serve.replays").inc()
                response = dict(cached)
                response["replayed"] = True
                return response
        if self._draining and op in ("create", "step", "snapshot",
                                     "restore", "design"):
            raise ServiceError(
                "draining", "service is draining; retry after restart",
                extra={"retry_after_ms": 1000})
        response = await self._execute_op(op, frame)
        if key is not None:
            self._remember(key, response)
        return response

    async def _execute_op(self, op: str, frame: dict) -> dict:
        if op == "ping":
            return ok_response(frame, protocol=PROTOCOL_VERSION,
                               server="repro-serve",
                               sessions=len(self.manager),
                               draining=self._draining)
        if op == "create":
            config = SessionConfig.from_frame(
                frame, allow_chaos=self.config.allow_chaos)
            # The sharded gateway assigns globally-unique ids up front
            # so a session keeps its identity across shard migrations.
            session = self.manager.create(config,
                                          session_id=frame.get("session_id"))
            return ok_response(frame, **session.describe())
        if op == "stats":
            return ok_response(frame, **self._stats())
        if op == "design":
            return await self._design(frame)
        if op in GATEWAY_OPS:
            raise ServiceError(
                "bad_request",
                f"op {op!r} is answered by the sharded gateway "
                f"(repro serve --shards N), not a single-process server")

        session = self.manager.get(frame["session"])
        if op == "close":
            closed = self.manager.close(session.id)
            return ok_response(frame, session=closed.id,
                               steps_run=closed.steps_run)
        if op == "step":
            steps = int(frame.get("steps", 1))
            result = await self.scheduler.submit(
                session, lambda: session.step(steps), steps=steps)
            return ok_response(frame, **result)
        if op == "snapshot":
            result = await self.scheduler.submit(session, session.snapshot)
            result = dict(result)
            result["data"] = base64.b64encode(
                result.pop("data")).decode("ascii")
            return ok_response(frame, **result)
        if op == "restore":
            data = frame.get("data")
            if data is not None:
                try:
                    data = base64.b64decode(data, validate=True)
                except (ValueError, TypeError):
                    raise ServiceError(
                        "bad_request",
                        "'data' must be base64 snapshot bytes") from None
            precisions = frame.get("precisions")
            result = await self.scheduler.submit(
                session,
                lambda: session.restore(frame.get("snapshot"), data,
                                        precisions))
            # Re-journal immediately: the previous journal entry
            # describes a pre-restore trajectory, so a crash (or a
            # rung-1 rollback) before the next journaled batch would
            # otherwise resurrect state the client just rewound away.
            # This is also what makes a migrated session durable on its
            # target shard from the first request.
            if self.journal is not None:
                checkpoint, step, state = session.capture_for_journal()
                session.mark_journaled(checkpoint, step, state)
                self.journal.append_snapshot(session.id, checkpoint,
                                             step, state)
            return ok_response(frame, **result)
        raise ServiceError("unknown_op", f"unhandled op {op!r}")

    # ------------------------------------------------------------------
    # Design-space queries (schema v6)
    # ------------------------------------------------------------------
    async def _design(self, frame: dict) -> dict:
        """One design-space query: canonicalize, admit, search, cache.

        The search itself is CPU-bound and runs in a worker thread (its
        sweep fans out over processes), so the event loop keeps
        answering cheap ops.  Results are cached by canonical query key
        — a repeated query is answered without re-searching, and
        concurrent duplicates coalesce onto one in-flight search.
        Invalid queries surface as ``bad_request`` with the same typed
        detail the CLI prints.
        """
        from ..design import DesignQuery, DesignSpaceError, run_search
        from ..design.evaluate import surrogate_identity

        start = time.perf_counter()
        surrogate_path = self.config.design_surrogate
        try:
            sid = (surrogate_identity(surrogate_path)
                   if surrogate_path else None)
            query = DesignQuery.from_mapping(frame["query"],
                                             surrogate_id=sid)
        except DesignSpaceError as exc:
            raise ServiceError(
                "bad_request", f"design query: {exc.detail}") from None
        key = query.cache_key()
        self.designs_total += 1

        def _respond(payload: dict, cached: bool) -> dict:
            wall = time.perf_counter() - start
            if cached:
                self.design_cache_hits += 1
            if self.observer is not None:
                self.observer.serve_design(
                    key, cached, True,
                    payload["result"]["front_size"], wall)
            else:
                self.registry.counter(
                    "serve.designs",
                    source="cache" if cached else "search").inc()
            return ok_response(frame, cached=cached, design=payload)

        cached = self._design_cache.get(key)
        if cached is not None:
            self._design_cache.move_to_end(key)
            return _respond(cached, True)
        inflight = self._design_inflight.get(key)
        if inflight is not None:
            # Coalesce onto the running search; this request triggered
            # no new work, so it counts as cache-served.
            payload = await asyncio.shield(inflight)
            return _respond(payload, True)

        # Admission: design searches share the bounded-queue budget so
        # a burst of distinct queries backpressures with ``busy``
        # instead of buffering unbounded CPU work.
        admit_key = f"design:{key}"
        self.admission.admit(admit_key)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._design_inflight[key] = future
        try:
            result = await loop.run_in_executor(
                None,
                lambda: run_search(query, surrogate_path=surrogate_path,
                                   workers=self.config.workers))
            payload = result.payload()
            self._design_cache[key] = payload
            while len(self._design_cache) > self.config.design_cache_size:
                self._design_cache.popitem(last=False)
            future.set_result(payload)
        except BaseException as exc:
            future.set_exception(exc)
            # Coalesced waiters got the exception; nobody else will.
            if not future.cancelled():
                with contextlib.suppress(BaseException):
                    future.exception()
            if self.observer is not None:
                self.observer.serve_design(
                    key, False, False, 0,
                    time.perf_counter() - start)
            raise
        finally:
            self._design_inflight.pop(key, None)
            self.admission.release(admit_key)
        return _respond(payload, False)

    def _stats(self) -> dict:
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "sessions": [s.describe() for s in self.manager.sessions()],
            "active_sessions": len(self.manager),
            "created_total": self.manager.created_total,
            "evicted_total": self.manager.evicted_total,
            "respawned_total": self.manager.respawned_total,
            "recovered_total": self.manager.recovered_total,
            "recoveries": self.scheduler.recoveries_total,
            "journal_writes": self.scheduler.journal_writes,
            "incidents": len(self.incidents.records),
            "draining": self._draining,
            "requests_total": self.requests_total,
            "designs_total": self.designs_total,
            "design_cache_hits": self.design_cache_hits,
            "design_cache_size": len(self._design_cache),
            "queue_depth": self.admission.queue_depth,
            "rejected_total": self.admission.rejected_total,
            "batches": self.scheduler.batches_dispatched,
            "steps_dispatched": self.scheduler.steps_dispatched,
            "fleet_batches": self.scheduler.fleet_batches,
            "fleet_sessions": self.scheduler.fleet_sessions,
            "workers": self.scheduler.workers,
            "metrics": self.registry.snapshot(),
        }


async def serve_forever(config: ServiceConfig, observer=None,
                        ready_callback=None) -> None:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    This is the CLI entry point.  Signal handlers are installed on the
    running loop when possible (main thread); elsewhere — e.g. the
    in-thread test harness — the caller cancels the coroutine instead
    and the ``finally`` still stops the service cleanly.
    """
    service = SimulationService(config, observer=observer)
    await service.start()
    address = service.address
    where = (address if isinstance(address, str)
             else f"{address[0]}:{address[1]}")
    print(f"repro-serve: listening on {where} "
          f"(max {config.max_sessions} sessions, "
          f"{service.scheduler.workers} workers)")
    recovered_ok = [r for r in service.recovered if r.get("ok")]
    if service.recovered:
        failed = len(service.recovered) - len(recovered_ok)
        print(f"repro-serve: recovered {len(recovered_ok)} session(s) "
              f"from {config.journal_dir}"
              + (f" ({failed} failed digest/rebuild)" if failed else ""))
    if ready_callback is not None:
        ready_callback(service)

    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, drain_requested.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # Not the main thread (tests) or unsupported platform:
            # fall back to cancellation-driven shutdown.
            pass
    try:
        if installed:
            server = service._server
            wait = loop.create_task(drain_requested.wait())
            forever = loop.create_task(server.serve_forever())
            await asyncio.wait({wait, forever},
                               return_when=asyncio.FIRST_COMPLETED)
            for task in (wait, forever):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            if drain_requested.is_set():
                print("repro-serve: shutdown signal received; draining")
                summary = await service.drain()
                print(f"repro-serve: drained "
                      f"({summary['sessions']} session(s) journaled, "
                      f"{summary['wall']:.2f}s)")
        else:
            await service._server.serve_forever()
    finally:
        for sig in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(sig)
        await service.stop()
