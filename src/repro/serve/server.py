"""The asyncio simulation service: sessions behind an NDJSON socket.

:class:`SimulationService` wires the pieces together — a
:class:`~repro.serve.session.SessionManager` (the session table), an
:class:`~repro.serve.admission.AdmissionController` (bounded queues),
and a :class:`~repro.serve.scheduler.BatchScheduler` (fixed-tick
dispatch over a worker pool) — and speaks the
:mod:`~repro.serve.protocol` over TCP or a UNIX socket.  Every request
is counted through :mod:`repro.obs.metrics` and, when a tracer is
attached, streamed as schema-v2 ``serve.*`` events alongside the
ordinary step telemetry.

Ops that touch a session's world (``step``, ``snapshot``, ``restore``)
are serialized through the scheduler so they always observe a step
boundary; control-plane ops (``create``, ``close``, ``ping``,
``stats``) run directly on the event loop.
"""

from __future__ import annotations

import asyncio
import base64
import time
from dataclasses import dataclass
from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..workloads import UnknownScenarioError
from .admission import AdmissionController, AdmissionPolicy
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .scheduler import BatchScheduler
from .session import SessionConfig, SessionManager

__all__ = ["ServiceConfig", "SimulationService", "serve_forever"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 7070
    #: serve on a UNIX socket instead of TCP when set
    unix_path: Optional[str] = None
    max_sessions: int = 32
    workers: Optional[int] = None
    batch_window: float = 0.002
    max_pending_per_session: int = 4
    max_queue_depth: int = 256
    step_budget: float = 30.0
    #: optional JSONL trace path for ``serve.*`` + step telemetry
    trace_path: Optional[str] = None


class SimulationService:
    """Session manager + admission + scheduler behind one socket."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 observer=None) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or (observer.registry if observer
                                     is not None else MetricsRegistry())
        self.observer = observer
        self.manager = SessionManager(self.config.max_sessions,
                                      registry=self.registry,
                                      observer=observer)
        self.admission = AdmissionController(
            AdmissionPolicy(
                max_sessions=self.config.max_sessions,
                max_pending_per_session=self.config.max_pending_per_session,
                max_queue_depth=self.config.max_queue_depth,
                step_budget=self.config.step_budget,
            ),
            registry=self.registry)
        self.scheduler = BatchScheduler(
            self.manager, self.admission, workers=self.config.workers,
            batch_window=self.config.batch_window, observer=observer,
            registry=self.registry)
        self._server: Optional[asyncio.AbstractServer] = None
        self.started_at = 0.0
        self.requests_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the scheduler tick loop."""
        self.scheduler.start()
        # The stream limit must fit a whole frame: restore requests can
        # carry base64 snapshot payloads far beyond the 64 KiB default.
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path,
                limit=MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=MAX_FRAME_BYTES)
        self.started_at = time.time()

    @property
    def address(self):
        """Bound address: ``(host, port)`` for TCP, the path for UNIX."""
        if self.config.unix_path:
            return self.config.unix_path
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        self.manager.close_all()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    # reset, or a line beyond the stream limit — there
                    # is no way to resync a torn NDJSON stream; drop it.
                    break
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    writer.write(encode_frame(
                        error_response(exc.code, exc.detail)))
                    await writer.drain()
                    continue
                response = await self.handle_request(frame)
                writer.write(encode_frame(response))
                await writer.drain()
        except ConnectionResetError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def handle_request(self, frame: dict) -> dict:
        """Execute one request frame; always returns a response frame."""
        start = time.perf_counter()
        self.requests_total += 1
        op = frame.get("op") if isinstance(frame.get("op"), str) else None
        session_id = (frame.get("session")
                      if isinstance(frame.get("session"), str) else None)
        try:
            op = parse_request(frame)
            response = await self._execute(op, frame)
            ok, error = True, None
        except ServiceError as exc:
            response = error_response(exc.code, exc.detail, frame)
            ok, error = False, exc.code
        except UnknownScenarioError as exc:
            response = error_response("bad_request", str(exc), frame)
            ok, error = False, "bad_request"
        except Exception as exc:  # noqa: BLE001 - never kill the server
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}", frame)
            ok, error = False, "internal"
        wall = time.perf_counter() - start
        self.registry.counter("serve.requests",
                              op=op or "invalid").inc()
        self.registry.histogram("serve.request.seconds").observe(wall)
        if self.observer is not None:
            self.observer.serve_request(op or "invalid",
                                        response.get("session",
                                                     session_id),
                                        ok, wall, error)
        return response

    async def _execute(self, op: str, frame: dict) -> dict:
        if op == "ping":
            return ok_response(frame, protocol=PROTOCOL_VERSION,
                               server="repro-serve",
                               sessions=len(self.manager))
        if op == "create":
            config = SessionConfig.from_frame(frame)
            session = self.manager.create(config)
            return ok_response(frame, **session.describe())
        if op == "stats":
            return ok_response(frame, **self._stats())

        session = self.manager.get(frame["session"])
        if op == "close":
            closed = self.manager.close(session.id)
            return ok_response(frame, session=closed.id,
                               steps_run=closed.steps_run)
        if op == "step":
            steps = int(frame.get("steps", 1))
            result = await self.scheduler.submit(
                session, lambda: session.step(steps), steps=steps)
            return ok_response(frame, **result)
        if op == "snapshot":
            result = await self.scheduler.submit(session, session.snapshot)
            result = dict(result)
            result["data"] = base64.b64encode(
                result.pop("data")).decode("ascii")
            return ok_response(frame, **result)
        if op == "restore":
            data = frame.get("data")
            if data is not None:
                try:
                    data = base64.b64decode(data, validate=True)
                except (ValueError, TypeError):
                    raise ServiceError(
                        "bad_request",
                        "'data' must be base64 snapshot bytes") from None
            precisions = frame.get("precisions")
            result = await self.scheduler.submit(
                session,
                lambda: session.restore(frame.get("snapshot"), data,
                                        precisions))
            return ok_response(frame, **result)
        raise ServiceError("unknown_op", f"unhandled op {op!r}")

    def _stats(self) -> dict:
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "sessions": [s.describe() for s in self.manager.sessions()],
            "active_sessions": len(self.manager),
            "created_total": self.manager.created_total,
            "evicted_total": self.manager.evicted_total,
            "requests_total": self.requests_total,
            "queue_depth": self.admission.queue_depth,
            "rejected_total": self.admission.rejected_total,
            "batches": self.scheduler.batches_dispatched,
            "steps_dispatched": self.scheduler.steps_dispatched,
            "workers": self.scheduler.workers,
            "metrics": self.registry.snapshot(),
        }


async def serve_forever(config: ServiceConfig, observer=None,
                        ready_callback=None) -> None:
    """Run the service until cancelled (the CLI entry point)."""
    service = SimulationService(config, observer=observer)
    await service.start()
    address = service.address
    where = (address if isinstance(address, str)
             else f"{address[0]}:{address[1]}")
    print(f"repro-serve: listening on {where} "
          f"(max {config.max_sessions} sessions, "
          f"{service.scheduler.workers} workers)")
    if ready_callback is not None:
        ready_callback(service)
    try:
        await service._server.serve_forever()
    finally:
        await service.stop()
