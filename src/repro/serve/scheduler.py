"""Fixed-tick batch dispatch of session work over a worker pool.

Concurrent clients produce a stream of step/snapshot/restore requests.
Dispatching each one the moment it arrives would interleave worlds
arbitrarily and thrash the pool; instead the scheduler runs a **tick
loop**: it sleeps until work exists, waits one ``batch_window`` for
stragglers to coalesce, then dispatches one batch — at most one request
per session, fanned across a thread pool sized by the same
``workers``/``REPRO_WORKERS`` resolution the sweep engine uses
(:func:`repro.perf.sweep.resolve_workers`).  The batch is a barrier:
the next tick starts when every member resolved, which keeps
per-session request order trivially correct (a session's second queued
request can only run in a later tick) and makes the ``serve.batch``
trace event a meaningful unit of service time.

Threads, not processes: worlds are live object graphs that do not cross
a pickle boundary, and the step loop spends its time in numpy kernels
that release the GIL.

A request that exceeds its admission budget is abandoned — its future
fails with ``budget_exceeded``.  When the session has a journal mark
the scheduler *respawns* it (fresh world rewound to the last journaled
checkpoint, digest-verified) so a single stuck step does not lose the
session; otherwise it is evicted.  Either way the worker thread
finishes the orphaned step in the background (Python cannot interrupt
it), which transiently occupies one pool slot.

Durability rides the tick loop: after each batch barrier the scheduler
journals every batched session that has advanced ``journal_every``
steps since its last entry — checkpoint capture happens here on the
event loop (the session is guaranteed idle at the barrier and captures
are deep copies), while serialization and the disk append run on the
journal store's writer thread, off the hot path.  Recovery-ladder
events recorded by sessions on worker threads are drained here too and
emitted as ``serve.recover`` trace events, keeping all observer calls
on the loop thread.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..perf.sweep import resolve_workers
from .protocol import ServiceError

__all__ = ["BatchScheduler", "WorkItem"]


def _fleet_step_fn(sessions, steps: int):
    """Advance a compatible session group on one worker thread.

    Builds a :class:`~repro.physics.WorldBatch` over the member worlds
    and steps the fleet in lockstep — bit-identical to per-session
    stepping, but each phase runs as one stacked-array pass.  Should
    the worlds turn out incompatible after all (a config drifted
    between planning and execution), falls back to sequential
    per-session stepping on the same thread.
    """
    from ..physics.batch import BatchIncompatible, WorldBatch

    try:
        fleet = WorldBatch([session.world for session in sessions])
    except BatchIncompatible:
        return [session.step(steps) for session in sessions]
    for _ in range(steps):
        fleet.step()
    results = []
    for session in sessions:
        session.fleet_step(steps)
        results.append(session.describe())
    return results


@dataclass
class WorkItem:
    """One queued unit of session work."""

    session: object
    fn: Callable[[], object]
    #: simulation steps this item advances (0 for snapshot/restore)
    steps: int
    budget: float
    future: "asyncio.Future" = field(repr=False, default=None)
    enqueued_at: float = 0.0


class BatchScheduler:
    """Coalesces queued work into per-tick batches."""

    def __init__(self, manager, admission, workers: Optional[int] = None,
                 batch_window: float = 0.002, observer=None,
                 registry=None, journal=None,
                 journal_every: int = 32, incidents=None,
                 fleet_step: bool = True) -> None:
        self.manager = manager
        self.admission = admission
        #: coalesce compatible same-tick step requests into one
        #: vectorized :class:`~repro.physics.WorldBatch` pass
        self.fleet_step = fleet_step
        #: optional :class:`~repro.robustness.IncidentLog`
        self.incidents = incidents
        self.workers = resolve_workers(workers)
        self.batch_window = batch_window
        self.observer = observer
        self.registry = registry
        #: optional :class:`~repro.serve.resilience.JournalStore`
        self.journal = journal
        #: steps a session may advance before its next journal entry
        self.journal_every = max(1, journal_every)
        self._queue: List[WorkItem] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-serve")
        self._task: Optional[asyncio.Task] = None
        self._in_flight = 0
        self._idle: Optional[asyncio.Event] = None
        self.batches_dispatched = 0
        self.steps_dispatched = 0
        self.journal_writes = 0
        self.recoveries_total = 0
        self.fleet_batches = 0
        self.fleet_sessions = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the tick loop on the running event loop."""
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-scheduler")

    async def quiesce(self, timeout: float = 30.0) -> bool:
        """Wait until the queue is empty and no batch is in flight.

        The drain path calls this after admission has been shut off, so
        the backlog is finite.  Returns ``False`` on timeout.
        """
        deadline = time.perf_counter() + timeout
        while self._queue or self._in_flight:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       timeout=min(remaining, 0.05))
            except asyncio.TimeoutError:
                pass
        return True

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for item in self._queue:
            if not item.future.done():
                # "draining" (not "session_closed"): the session still
                # exists and is journaled — a resilient client should
                # retry against the restarted service.
                item.future.set_exception(
                    ServiceError("draining", "service stopping"))
            self.admission.release(item.session.id)
        self._queue.clear()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    async def submit(self, session, fn: Callable[[], object],
                     steps: int = 0):
        """Queue one unit of work for a session and await its result.

        Admission control runs *here*, before anything is queued — a
        ``busy`` rejection therefore never consumes queue space.
        """
        self.admission.admit(session.id)
        item = WorkItem(
            session=session, fn=fn, steps=steps,
            budget=self.admission.budget_for(session),
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=time.perf_counter())
        self._queue.append(item)
        self._wakeup.set()
        return await item.future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            # Let one window of stragglers coalesce into this tick.
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch = self._take_batch()
            if batch:
                await self._dispatch(batch)
            if self._queue:
                # Leftovers (second requests for batched sessions, or
                # arrivals during dispatch) seed the next tick.
                self._wakeup.set()

    def _take_batch(self) -> List[WorkItem]:
        """At most one queued item per session, preserving FIFO order."""
        batch: List[WorkItem] = []
        seen: set = set()
        remaining: List[WorkItem] = []
        for item in self._queue:
            if item.session.id in seen:
                remaining.append(item)
            else:
                seen.add(item.session.id)
                batch.append(item)
        self._queue = remaining
        return batch

    def _plan_fleets(self, batch: List[WorkItem]):
        """Split a tick's batch into fleet groups and singleton items.

        Step requests whose sessions share a :meth:`fleet_key` and step
        count coalesce into one :class:`~repro.physics.WorldBatch`
        executor task; everything else (snapshots, restores, guarded or
        otherwise ineligible sessions, groups of one) dispatches on the
        per-item path unchanged.
        """
        if not self.fleet_step:
            return [], batch
        groups: Dict[tuple, List[WorkItem]] = {}
        singles: List[WorkItem] = []
        for item in batch:
            key = item.session.fleet_key() if item.steps > 0 else None
            if key is None:
                singles.append(item)
            else:
                groups.setdefault((key, item.steps), []).append(item)
        fleets = []
        for members in groups.values():
            if len(members) >= 2:
                fleets.append(members)
            else:
                singles.extend(members)
        return fleets, singles

    async def _dispatch(self, batch: List[WorkItem]) -> None:
        start = time.perf_counter()
        self._in_flight = len(batch)
        self._idle.clear()
        try:
            fleets, singles = self._plan_fleets(batch)
            await asyncio.gather(
                *(self._run_item(item) for item in singles),
                *(self._run_fleet(group) for group in fleets))
        finally:
            self._in_flight = 0
            self._idle.set()
        wall = time.perf_counter() - start
        self.batches_dispatched += 1
        steps = sum(item.steps for item in batch)
        self.steps_dispatched += steps
        if self.observer is not None:
            self.observer.serve_batch(
                batch=self.batches_dispatched, sessions=len(batch),
                steps=steps, wall=wall)
        elif self.registry is not None:
            self.registry.counter("serve.batches").inc()
            self.registry.counter("serve.steps").inc(steps)
            self.registry.histogram("serve.batch.seconds").observe(wall)
        self._after_batch(batch)

    def _after_batch(self, batch: List[WorkItem]) -> None:
        """Post-barrier housekeeping: recovery events and journaling.

        Runs on the event loop while every batched session is idle —
        the only point where a session's world can be captured and its
        worker-thread recovery records read without a lock.
        """
        for item in batch:
            # The table entry may be a respawned replacement; events
            # and journal marks belong to whatever is live now.
            session = self.manager._sessions.get(item.session.id,
                                                 item.session)
            for event in session.drain_recovery_events():
                self._emit_recovery(event)
            if item.session is not session:
                for event in item.session.drain_recovery_events():
                    self._emit_recovery(event)
            if session.state != "active" or item.steps <= 0:
                continue
            if session.steps_since_journal >= self.journal_every or \
                    session.last_journal is None:
                checkpoint, step, state = session.capture_for_journal()
                session.mark_journaled(checkpoint, step, state)
                if self.journal is not None:
                    self.journal.append_snapshot(session.id, checkpoint,
                                                 step, state)
                    self.journal_writes += 1

    def _emit_recovery(self, event: dict) -> None:
        self.recoveries_total += 1
        if self.incidents is not None:
            self.incidents.recovery(
                event["step"], event["rung"], event["outcome"],
                f"session {event['session']}: {event['reason']}")
        if self.observer is not None:
            self.observer.serve_recover(**event)
        elif self.registry is not None:
            self.registry.counter("serve.recoveries",
                                  outcome=event["outcome"]).inc()
            self.registry.histogram(
                "serve.recovery.seconds").observe(event["wall"])

    async def _run_item(self, item: WorkItem) -> None:
        loop = asyncio.get_running_loop()
        try:
            if item.session.state != "active":
                raise ServiceError(
                    "session_closed",
                    f"session {item.session.id} is {item.session.state}")
            result = await asyncio.wait_for(
                loop.run_in_executor(self._executor, item.fn),
                timeout=item.budget)
            if not item.future.done():
                item.future.set_result(result)
        except asyncio.TimeoutError:
            outcome = self._respawn_or_evict(
                item, f"step budget of {item.budget:.3f}s exceeded")
            if not item.future.done():
                item.future.set_exception(ServiceError(
                    "budget_exceeded",
                    f"step budget of {item.budget:.3f}s exceeded; "
                    f"session {item.session.id} {outcome}"))
        except ServiceError as exc:
            if not item.future.done():
                item.future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 - marshal to the client
            detail = f"{type(exc).__name__}: {exc}"
            outcome = self._respawn_or_evict(item, detail)
            if not item.future.done():
                if outcome.startswith("respawned"):
                    session = self.manager._sessions[item.session.id]
                    item.future.set_exception(ServiceError(
                        "session_degraded",
                        f"step failed ({detail}); session respawned at "
                        f"journaled step {session.world.step_count}",
                        extra={"session": item.session.id,
                               "step": session.world.step_count}))
                else:
                    item.future.set_exception(ServiceError(
                        "internal", f"{detail}; session "
                                    f"{item.session.id} evicted"))
        finally:
            self.admission.release(item.session.id)

    async def _run_fleet(self, group: List[WorkItem]) -> None:
        """Step a compatible session group as one vectorized batch.

        Failure semantics match the per-item path, applied to every
        member: a fleet task that times out or raises leaves its worlds
        mid-step, so each member session is respawned from its journal
        (or evicted) exactly as a failed solo step would be.
        """
        if any(item.session.state != "active" for item in group):
            await asyncio.gather(*(self._run_item(item)
                                   for item in group))
            return
        loop = asyncio.get_running_loop()
        sessions = [item.session for item in group]
        steps = group[0].steps
        budget = max(item.budget for item in group)
        try:
            results = await asyncio.wait_for(
                loop.run_in_executor(self._executor, _fleet_step_fn,
                                     sessions, steps),
                timeout=budget)
            self.fleet_batches += 1
            self.fleet_sessions += len(group)
            if self.registry is not None:
                self.registry.counter("serve.fleet.batches").inc()
                self.registry.counter(
                    "serve.fleet.sessions").inc(len(group))
            for item, result in zip(group, results):
                if not item.future.done():
                    item.future.set_result(result)
        except asyncio.TimeoutError:
            for item in group:
                outcome = self._respawn_or_evict(
                    item, f"fleet step budget of {budget:.3f}s exceeded")
                if not item.future.done():
                    item.future.set_exception(ServiceError(
                        "budget_exceeded",
                        f"fleet step budget of {budget:.3f}s exceeded; "
                        f"session {item.session.id} {outcome}"))
        except Exception as exc:  # noqa: BLE001 - marshal to the clients
            detail = f"{type(exc).__name__}: {exc}"
            for item in group:
                outcome = self._respawn_or_evict(item, detail)
                if not item.future.done():
                    if outcome.startswith("respawned"):
                        session = self.manager._sessions[item.session.id]
                        item.future.set_exception(ServiceError(
                            "session_degraded",
                            f"fleet step failed ({detail}); session "
                            f"respawned at journaled step "
                            f"{session.world.step_count}",
                            extra={"session": item.session.id,
                                   "step": session.world.step_count}))
                    else:
                        item.future.set_exception(ServiceError(
                            "internal", f"{detail}; session "
                                        f"{item.session.id} evicted"))
        finally:
            for item in group:
                self.admission.release(item.session.id)

    def _respawn_or_evict(self, item: WorkItem, reason: str) -> str:
        """Recover a failed/stuck session from its journal, or evict.

        Returns a short outcome string for the client-facing detail.
        The respawn leaves the wedged world to its orphaned worker
        thread and installs a digest-verified replacement rewound to
        the last journal entry.
        """
        start = time.perf_counter()
        fresh = self.manager.respawn(item.session.id)
        if fresh is None:
            self.manager.evict(item.session.id, "error")
            return "evicted"
        self._emit_recovery({
            "session": item.session.id,
            "rung": 1,
            "outcome": "respawned",
            "reason": reason,
            "wall": time.perf_counter() - start,
            "step": fresh.world.step_count,
        })
        return f"respawned at step {fresh.world.step_count}"
