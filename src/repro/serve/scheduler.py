"""Fixed-tick batch dispatch of session work over a worker pool.

Concurrent clients produce a stream of step/snapshot/restore requests.
Dispatching each one the moment it arrives would interleave worlds
arbitrarily and thrash the pool; instead the scheduler runs a **tick
loop**: it sleeps until work exists, waits one ``batch_window`` for
stragglers to coalesce, then dispatches one batch — at most one request
per session, fanned across a thread pool sized by the same
``workers``/``REPRO_WORKERS`` resolution the sweep engine uses
(:func:`repro.perf.sweep.resolve_workers`).  The batch is a barrier:
the next tick starts when every member resolved, which keeps
per-session request order trivially correct (a session's second queued
request can only run in a later tick) and makes the ``serve.batch``
trace event a meaningful unit of service time.

Threads, not processes: worlds are live object graphs that do not cross
a pickle boundary, and the step loop spends its time in numpy kernels
that release the GIL.

A request that exceeds its admission budget is abandoned — its future
fails with ``budget_exceeded`` and the session is evicted.  The worker
thread finishes the orphaned step in the background (Python cannot
interrupt it), which transiently occupies one pool slot; the eviction
guarantees it can happen at most once per session.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..perf.sweep import resolve_workers
from .protocol import ServiceError

__all__ = ["BatchScheduler", "WorkItem"]


@dataclass
class WorkItem:
    """One queued unit of session work."""

    session: object
    fn: Callable[[], object]
    #: simulation steps this item advances (0 for snapshot/restore)
    steps: int
    budget: float
    future: "asyncio.Future" = field(repr=False, default=None)
    enqueued_at: float = 0.0


class BatchScheduler:
    """Coalesces queued work into per-tick batches."""

    def __init__(self, manager, admission, workers: Optional[int] = None,
                 batch_window: float = 0.002, observer=None,
                 registry=None) -> None:
        self.manager = manager
        self.admission = admission
        self.workers = resolve_workers(workers)
        self.batch_window = batch_window
        self.observer = observer
        self.registry = registry
        self._queue: List[WorkItem] = []
        self._wakeup: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-serve")
        self._task: Optional[asyncio.Task] = None
        self.batches_dispatched = 0
        self.steps_dispatched = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the tick loop on the running event loop."""
        self._wakeup = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-serve-scheduler")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for item in self._queue:
            if not item.future.done():
                item.future.set_exception(
                    ServiceError("session_closed", "service stopping"))
            self.admission.release(item.session.id)
        self._queue.clear()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    async def submit(self, session, fn: Callable[[], object],
                     steps: int = 0):
        """Queue one unit of work for a session and await its result.

        Admission control runs *here*, before anything is queued — a
        ``busy`` rejection therefore never consumes queue space.
        """
        self.admission.admit(session.id)
        item = WorkItem(
            session=session, fn=fn, steps=steps,
            budget=self.admission.budget_for(session),
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=time.perf_counter())
        self._queue.append(item)
        self._wakeup.set()
        return await item.future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            # Let one window of stragglers coalesce into this tick.
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch = self._take_batch()
            if batch:
                await self._dispatch(batch)
            if self._queue:
                # Leftovers (second requests for batched sessions, or
                # arrivals during dispatch) seed the next tick.
                self._wakeup.set()

    def _take_batch(self) -> List[WorkItem]:
        """At most one queued item per session, preserving FIFO order."""
        batch: List[WorkItem] = []
        seen: set = set()
        remaining: List[WorkItem] = []
        for item in self._queue:
            if item.session.id in seen:
                remaining.append(item)
            else:
                seen.add(item.session.id)
                batch.append(item)
        self._queue = remaining
        return batch

    async def _dispatch(self, batch: List[WorkItem]) -> None:
        start = time.perf_counter()
        await asyncio.gather(*(self._run_item(item) for item in batch))
        wall = time.perf_counter() - start
        self.batches_dispatched += 1
        steps = sum(item.steps for item in batch)
        self.steps_dispatched += steps
        if self.observer is not None:
            self.observer.serve_batch(
                batch=self.batches_dispatched, sessions=len(batch),
                steps=steps, wall=wall)
        elif self.registry is not None:
            self.registry.counter("serve.batches").inc()
            self.registry.counter("serve.steps").inc(steps)
            self.registry.histogram("serve.batch.seconds").observe(wall)

    async def _run_item(self, item: WorkItem) -> None:
        loop = asyncio.get_running_loop()
        try:
            if item.session.state != "active":
                raise ServiceError(
                    "session_closed",
                    f"session {item.session.id} is {item.session.state}")
            result = await asyncio.wait_for(
                loop.run_in_executor(self._executor, item.fn),
                timeout=item.budget)
            if not item.future.done():
                item.future.set_result(result)
        except asyncio.TimeoutError:
            self.manager.evict(item.session.id, "budget_exceeded")
            if not item.future.done():
                item.future.set_exception(ServiceError(
                    "budget_exceeded",
                    f"step budget of {item.budget:.3f}s exceeded; "
                    f"session {item.session.id} evicted"))
        except ServiceError as exc:
            if not item.future.done():
                item.future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 - marshal to the client
            self.manager.evict(item.session.id, "error")
            if not item.future.done():
                item.future.set_exception(ServiceError(
                    "internal", f"{type(exc).__name__}: {exc}"))
        finally:
            self.admission.release(item.session.id)
