"""Clients for the simulation service: a thin one and a resilient one.

:class:`Client` is deliberately dumb: one socket, one request on the
wire at a time, blocking reads.  It does distinguish the three ways a
request can fail, because conflating them makes retry logic impossible
to write correctly:

* :class:`ServeClientError` — the server answered ``ok: false``; the
  request *was* processed (or refused) and the error code says how.
* :class:`ClientTimeoutError` — the socket timed out; the request may
  or may not have executed.  It carries the pending request ``id`` so
  a caller can retry idempotently.
* :class:`ConnectionLost` — the connection died (reset, broken pipe,
  server hangup); same ambiguity, same remedy.

Every request is stamped with a client-unique ``id`` (unless the
caller set one), which the server uses both for correlation and for
idempotent replay — retrying a timed-out ``step`` with the same id
returns the recorded response instead of stepping the world twice.

:class:`ResilientClient` layers policy on top: bounded retry with
exponential backoff + jitter on ``busy``/``draining``, automatic
reconnect through a caller-supplied address provider (so a restarted
server on a new port is transparent), and resume-from-last-acked-step
— if the server came back from its journal slightly behind, the client
replays the gap so the caller-observed step counter never goes
backwards.

:func:`start_in_thread` runs a full :class:`SimulationService` on a
background event-loop thread and returns a handle with the bound
address — the serve-bench harness, the tests, and the CI smoke job all
drive a real socket through it.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from .protocol import decode_frame, encode_frame
from .server import ServiceConfig, SimulationService

__all__ = ["ServeClientError", "ClientTimeoutError", "ConnectionLost",
           "Client", "RetryPolicy", "ResilientClient", "ServerHandle",
           "start_in_thread"]


class ServeClientError(RuntimeError):
    """A request the server answered with ``ok: false``."""

    def __init__(self, response: dict) -> None:
        self.code = response.get("error", "internal")
        self.detail = response.get("detail", "")
        self.response = response
        super().__init__(f"{self.code}: {self.detail}")


class ClientTimeoutError(TimeoutError):
    """The socket timed out waiting for a response.

    Distinct from :class:`ServeClientError`: the server said nothing —
    the request identified by ``request_id`` may or may not have
    executed, so the safe remedy is an idempotent retry with the same
    id, not a blind re-issue.
    """

    def __init__(self, request_id, timeout: float) -> None:
        self.request_id = request_id
        self.timeout = timeout
        super().__init__(
            f"no response within {timeout:.1f}s "
            f"(pending request id {request_id!r})")


class ConnectionLost(ConnectionError):
    """The transport died mid-conversation (reset, hangup, broken pipe)."""


class Client:
    """Blocking NDJSON client over TCP or a UNIX socket."""

    _seq = itertools.count(1)  # next() is atomic; no lock needed

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self._timeout = timeout
        if unix_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port or 7070), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    @classmethod
    def _next_id(cls) -> str:
        return f"c{next(cls._seq)}"

    # ------------------------------------------------------------------
    def request(self, frame: dict) -> dict:
        """Send one frame, block for its response.

        A missing ``id`` is filled in automatically.  Responses whose
        ``id`` does not match are stale leftovers from a previously
        timed-out request on this socket and are skipped — the caller
        always gets the answer to *this* request.

        Raises :class:`ServeClientError` on an error response,
        :class:`ClientTimeoutError` on socket timeout, and
        :class:`ConnectionLost` when the transport dies.
        """
        if "id" not in frame:
            frame = dict(frame)
            frame["id"] = self._next_id()
        rid = frame["id"]
        try:
            self._file.write(encode_frame(frame))
            self._file.flush()
            while True:
                line = self._file.readline()
                if not line:
                    raise ConnectionLost("server closed the connection")
                response = decode_frame(line)
                if "id" in response and response["id"] != rid:
                    continue
                break
        except socket.timeout:
            # A timed-out buffered reader refuses all further reads;
            # rebuild it so the connection stays usable (the stale
            # response, once it lands, is skipped by the id check).
            self._file = self._sock.makefile("rwb")
            raise ClientTimeoutError(rid, self._timeout) from None
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionLost(str(exc)) from None
        if not response.get("ok"):
            raise ServeClientError(response)
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (one per protocol op)
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def create(self, scenario: str, **options) -> str:
        """Create a session; returns its id."""
        frame = {"op": "create", "scenario": scenario}
        frame.update(options)
        return self.request(frame)["session"]

    def step(self, session: str, steps: int = 1) -> dict:
        return self.request({"op": "step", "session": session,
                             "steps": steps})

    def snapshot(self, session: str, decode: bool = True) -> dict:
        """Snapshot a session; ``data`` is bytes when ``decode``."""
        response = self.request({"op": "snapshot", "session": session})
        if decode:
            response["data"] = base64.b64decode(response["data"])
        return response

    def restore(self, session: str, snapshot: Optional[str] = None,
                data: Optional[bytes] = None,
                precisions: Optional[Dict[str, int]] = None) -> dict:
        frame = {"op": "restore", "session": session}
        if snapshot is not None:
            frame["snapshot"] = snapshot
        if data is not None:
            frame["data"] = base64.b64encode(data).decode("ascii")
        if precisions is not None:
            frame["precisions"] = dict(precisions)
        return self.request(frame)

    def close_session(self, session: str) -> dict:
        return self.request({"op": "close", "session": session})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def design(self, query: dict, timeout: Optional[float] = None) -> dict:
        """One design-space query; returns the full response (the
        ``design`` field holds the versioned front payload, ``cached``
        says whether the server-side cache answered it).  Searches can
        far outlast the default socket timeout, so this op takes its
        own."""
        if timeout is not None:
            previous = self._sock.gettimeout()
            self._sock.settimeout(timeout)
            try:
                return self.request({"op": "design", "query": query})
            finally:
                self._sock.settimeout(previous)
        return self.request({"op": "design", "query": query})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def kill(self) -> None:
        """Abort the connection without the courtesy of a FIN drain.

        Chaos-harness hook: ``SO_LINGER 0`` makes the close an RST, so
        the server sees a genuine reset mid-conversation rather than a
        clean EOF.
        """
        try:
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``retry_codes`` are the server responses worth waiting out —
    ``busy`` (backpressure), ``draining`` (restart imminent) and
    ``shard_down`` (the gateway is recovering a crashed shard); every
    other error code is a real answer and is raised immediately.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: multiplicative jitter: the delay is scaled by 1..(1+jitter)
    jitter: float = 0.5
    retry_codes: tuple = ("busy", "draining", "shard_down")

    def delay(self, attempt: int, rng: random.Random,
              hint_s: Optional[float] = None) -> float:
        base = hint_s if hint_s else min(
            self.max_delay, self.base_delay * (2 ** attempt))
        return min(self.max_delay,
                   base * (1.0 + self.jitter * rng.random()))


#: Accepted address forms: ``(host, port)``, a UNIX socket path, or a
#: kwargs dict for :class:`Client` — or a zero-arg callable returning
#: any of those (re-resolved on every reconnect, so a restarted server
#: on a fresh port is found automatically).
AddressLike = Union[tuple, str, dict, Callable[[], Union[tuple, str,
                                                         dict]]]


class ResilientClient:
    """A :class:`Client` wrapper that survives the server's bad days.

    * transparently reconnects (through the address provider) on
      :class:`ConnectionLost`/:class:`ClientTimeoutError`/refusal;
    * retries ``busy``/``draining`` with backoff + jitter, honouring
      the server's ``retry_after_ms`` hint;
    * stamps every logical request with one idempotency id that is
      *reused* across retries, so a step never executes twice;
    * tracks the last acked step per session and, when a recovered
      server comes back slightly behind its journal, replays the gap —
      including turning a ``session_degraded`` rollback into the steps
      needed to reach the caller's target.
    """

    def __init__(self, address: AddressLike,
                 policy: Optional[RetryPolicy] = None,
                 timeout: float = 60.0,
                 seed: Optional[int] = None) -> None:
        self._address = address
        self.policy = policy or RetryPolicy()
        self._timeout = timeout
        self._rng = random.Random(seed)
        self._client: Optional[Client] = None
        self._acked: Dict[str, int] = {}
        self.retries = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    def _resolve(self) -> dict:
        address = self._address() if callable(self._address) \
            else self._address
        if isinstance(address, dict):
            return dict(address)
        if isinstance(address, str):
            return {"unix_path": address}
        host, port = address
        return {"host": host, "port": port}

    def _connect(self) -> Client:
        if self._client is None:
            self._client = Client(timeout=self._timeout,
                                  **self._resolve())
            self.reconnects += 1
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def call(self, frame: dict) -> dict:
        """One logical request: retry/reconnect until answered or out
        of attempts.  The idempotency id survives every retry."""
        if "id" not in frame:
            frame = dict(frame)
            frame["id"] = Client._next_id()
        last_exc: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            try:
                return self._connect().request(frame)
            except ServeClientError as exc:
                if exc.code not in self.policy.retry_codes:
                    raise
                last_exc = exc
                hint = exc.response.get("retry_after_ms")
                hint_s = hint / 1000.0 if hint else None
                time.sleep(self.policy.delay(attempt, self._rng,
                                             hint_s))
            except (ClientTimeoutError, ConnectionError,
                    OSError) as exc:
                last_exc = exc
                self._drop()
                time.sleep(self.policy.delay(attempt, self._rng))
            self.retries += 1
        raise last_exc

    # ------------------------------------------------------------------
    # Session ops with acked-step tracking
    # ------------------------------------------------------------------
    def create(self, scenario: str, **options) -> str:
        response = self.call(dict({"op": "create",
                                   "scenario": scenario}, **options))
        self._acked[response["session"]] = response["step"]
        return response["session"]

    def step(self, session: str, steps: int = 1) -> dict:
        """Advance ``steps`` past the last *acked* step, replaying any
        gap a server-side rollback or journal recovery opened."""
        acked = self._acked.get(session)
        target = None if acked is None else acked + steps
        response = self._step_once(session, steps)
        now = response.get("step")
        # Top up: a degraded/recovered session resumed behind target.
        guard = self.policy.max_attempts
        while target is not None and now is not None and now < target \
                and guard > 0:
            guard -= 1
            response = self._step_once(session, target - now)
            now = response.get("step")
        if now is not None:
            self._acked[session] = now
        return response

    def _step_once(self, session: str, steps: int) -> dict:
        try:
            return self.call({"op": "step", "session": session,
                              "steps": steps})
        except ServeClientError as exc:
            if exc.code != "session_degraded" or \
                    exc.response.get("step") is None:
                raise
            # The rollback frame tells us where the session resumed;
            # report it as a zero-progress response so the caller's
            # top-up loop replays the lost steps.
            return {"ok": True, "session": session,
                    "step": exc.response["step"], "degraded": True}

    def snapshot(self, session: str, decode: bool = True) -> dict:
        response = self.call({"op": "snapshot", "session": session})
        if decode:
            response["data"] = base64.b64decode(response["data"])
        return response

    def close_session(self, session: str) -> dict:
        response = self.call({"op": "close", "session": session})
        self._acked.pop(session, None)
        return response

    def stats(self) -> dict:
        return self.call({"op": "stats"})

    def ping(self) -> dict:
        return self.call({"op": "ping"})

    def acked_step(self, session: str) -> Optional[int]:
        return self._acked.get(session)

    def kill_connection(self) -> None:
        """Chaos hook: RST the live connection; the next call reconnects."""
        if self._client is not None:
            self._client.kill()
            self._client = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServerHandle:
    """A service running on a background event-loop thread."""

    def __init__(self, service: SimulationService,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread
        address = service.address
        if isinstance(address, str):
            self.unix_path: Optional[str] = address
            self.host = self.port = None
        else:
            self.unix_path = None
            self.host, self.port = address

    def connect(self, timeout: float = 60.0) -> Client:
        return Client(host=self.host, port=self.port,
                      unix_path=self.unix_path, timeout=timeout)

    def address(self) -> dict:
        """Kwargs for :class:`Client`/:class:`ResilientClient`."""
        if self.unix_path:
            return {"unix_path": self.unix_path}
        return {"host": self.host, "port": self.port}

    def drain(self, timeout: float = 30.0) -> dict:
        """Graceful shutdown: journals flushed, batches completed."""
        summary = asyncio.run_coroutine_threadsafe(
            self.service.drain(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        return summary

    def stop(self, timeout: float = 10.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def start_in_thread(config: Optional[ServiceConfig] = None,
                    observer=None,
                    timeout: float = 30.0) -> ServerHandle:
    """Start a service on its own thread; returns once it is bound.

    Pass ``port=0`` (the default via ``ServiceConfig``) to bind an
    ephemeral TCP port, or ``unix_path`` for a socket file.
    """
    config = config or ServiceConfig(port=0)
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = SimulationService(config, observer=observer)

        async def _start() -> None:
            await service.start()

        try:
            loop.run_until_complete(_start())
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            ready.set()
            loop.close()
            return
        box["service"] = service
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve-loop",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("service did not start in time")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["service"], box["loop"], thread)
