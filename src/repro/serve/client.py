"""Thin synchronous client for the simulation service.

The client is deliberately dumb: one socket, one request on the wire at
a time, blocking reads.  Anything smarter (pipelining, reconnects,
retry-on-busy policies) belongs to the application.  ``busy`` and
``server_full`` responses surface as :class:`ServeClientError` with the
error code attached, so a caller's backoff loop is one ``except``.

:func:`start_in_thread` runs a full :class:`SimulationService` on a
background event-loop thread and returns a handle with the bound
address — the serve-bench harness, the tests, and the CI smoke job all
drive a real socket through it.
"""

from __future__ import annotations

import asyncio
import base64
import socket
import threading
from typing import Dict, Optional

from .protocol import decode_frame, encode_frame
from .server import ServiceConfig, SimulationService

__all__ = ["ServeClientError", "Client", "ServerHandle",
           "start_in_thread"]


class ServeClientError(RuntimeError):
    """A request the server answered with ``ok: false``."""

    def __init__(self, response: dict) -> None:
        self.code = response.get("error", "internal")
        self.detail = response.get("detail", "")
        self.response = response
        super().__init__(f"{self.code}: {self.detail}")


class Client:
    """Blocking NDJSON client over TCP or a UNIX socket."""

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        if unix_path:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection(
                (host or "127.0.0.1", port or 7070), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def request(self, frame: dict) -> dict:
        """Send one frame, block for its response.

        Raises :class:`ServeClientError` on an error response and
        ``ConnectionError`` when the server hangs up.
        """
        self._file.write(encode_frame(frame))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_frame(line)
        if not response.get("ok"):
            raise ServeClientError(response)
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers (one per protocol op)
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def create(self, scenario: str, **options) -> str:
        """Create a session; returns its id."""
        frame = {"op": "create", "scenario": scenario}
        frame.update(options)
        return self.request(frame)["session"]

    def step(self, session: str, steps: int = 1) -> dict:
        return self.request({"op": "step", "session": session,
                             "steps": steps})

    def snapshot(self, session: str, decode: bool = True) -> dict:
        """Snapshot a session; ``data`` is bytes when ``decode``."""
        response = self.request({"op": "snapshot", "session": session})
        if decode:
            response["data"] = base64.b64decode(response["data"])
        return response

    def restore(self, session: str, snapshot: Optional[str] = None,
                data: Optional[bytes] = None,
                precisions: Optional[Dict[str, int]] = None) -> dict:
        frame = {"op": "restore", "session": session}
        if snapshot is not None:
            frame["snapshot"] = snapshot
        if data is not None:
            frame["data"] = base64.b64encode(data).decode("ascii")
        if precisions is not None:
            frame["precisions"] = dict(precisions)
        return self.request(frame)

    def close_session(self, session: str) -> dict:
        return self.request({"op": "close", "session": session})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ServerHandle:
    """A service running on a background event-loop thread."""

    def __init__(self, service: SimulationService,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread
        address = service.address
        if isinstance(address, str):
            self.unix_path: Optional[str] = address
            self.host = self.port = None
        else:
            self.unix_path = None
            self.host, self.port = address

    def connect(self, timeout: float = 60.0) -> Client:
        return Client(host=self.host, port=self.port,
                      unix_path=self.unix_path, timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def start_in_thread(config: Optional[ServiceConfig] = None,
                    observer=None,
                    timeout: float = 30.0) -> ServerHandle:
    """Start a service on its own thread; returns once it is bound.

    Pass ``port=0`` (the default via ``ServiceConfig``) to bind an
    ephemeral TCP port, or ``unix_path`` for a socket file.
    """
    config = config or ServiceConfig(port=0)
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = SimulationService(config, observer=observer)

        async def _start() -> None:
            await service.start()

        try:
            loop.run_until_complete(_start())
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            ready.set()
            loop.close()
            return
        box["service"] = service
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve-loop",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("service did not start in time")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["service"], box["loop"], thread)
