"""Consistent hashing of session ids onto shard indices.

The gateway must place sessions deterministically: the same session id
lands on the same shard in every process, every run, and after a
gateway restart — Python's builtin ``hash()`` is salted per process, so
placement is built on blake2b instead.  Virtual nodes smooth the
distribution (with only a handful of physical shards, one hash each
would leave the ring badly unbalanced), and consistent hashing keeps
remapping minimal: removing a shard only moves the keys that lived on
it, which is exactly the property crash recovery and ``drain_shard``
rely on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing", "stable_hash"]

#: Virtual nodes per physical shard.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over integer shard indices."""

    def __init__(self, nodes: Iterable[int] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: List[int] = []
        #: sorted (point, node) pairs; parallel arrays for bisect
        self._points: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._nodes))

    # ------------------------------------------------------------------
    def add(self, node: int) -> None:
        node = int(node)
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self.vnodes):
            point = stable_hash(f"shard-{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: int) -> None:
        node = int(node)
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> int:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        if not self._nodes:
            raise LookupError("hash ring has no shards")
        point = stable_hash(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> Dict[int, int]:
        """Key count per shard — bench/telemetry helper."""
        counts: Dict[int, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
