"""Gateway + worker-shard topology for :mod:`repro.serve`.

The single-process service is GIL-bound: no matter how many sessions
connect, aggregate steps/sec plateaus at roughly one core.  This
package multiplies it across processes while keeping the wire protocol
unchanged:

* :mod:`~repro.serve.shard.ring` — deterministic consistent hashing of
  session ids onto shard indices (stable across processes and runs);
* :mod:`~repro.serve.shard.worker` — shard subprocesses, each running
  the existing :class:`~repro.serve.server.SimulationService` stack
  (session manager, batch scheduler, journal) on a per-shard UNIX
  socket with a per-shard journal directory;
* :mod:`~repro.serve.shard.gateway` — the client-facing asyncio server:
  NDJSON in, NDJSON out, sessions routed to shards by consistent hash,
  live migration over PR 5's pickle-free snapshot bytes, and
  journal-based recovery of a crashed shard's sessions onto survivors.
"""

from .gateway import (
    GatewayConfig,
    GatewayHandle,
    ShardGateway,
    gateway_forever,
    start_gateway_in_thread,
)
from .ring import HashRing
from .worker import ShardProcess, ShardSupervisor

__all__ = [
    "GatewayConfig",
    "GatewayHandle",
    "HashRing",
    "ShardGateway",
    "ShardProcess",
    "ShardSupervisor",
    "gateway_forever",
    "start_gateway_in_thread",
]
