"""The client-facing gateway of the sharded topology.

Clients speak the exact same NDJSON protocol they spoke to the
single-process service; the gateway owns *placement*, not simulation:

* ``create`` assigns a globally-unique session id, picks a shard by
  consistent hash (:class:`~repro.serve.shard.ring.HashRing`) and
  forwards the create with the id pinned (``session_id``);
* session ops (``step``/``snapshot``/``restore``/``close``) are
  forwarded over a per-connection upstream socket to the session's
  shard, so per-connection request ordering is preserved end to end;
* ``migrate``/``drain_shard``/``rebalance``/``topology`` are the admin
  plane: live migration quiesces the session's in-flight work, moves
  PR 5's pickle-free snapshot bytes to the target shard, verifies the
  restored :func:`~repro.serve.session.state_digest`, closes the source
  copy and atomically repoints the routing entry — requests arriving
  mid-migration wait on the migration event and land on the new shard;
* a dead shard (crash, OOM-kill) is detected by a health task or a
  failed forward; its sessions are rebuilt from its journal directory
  onto surviving shards (digest-verified, exactly the restart-recovery
  path PR 6 built, but cross-process), the shard is respawned, and any
  session the journal could not recover is reported ``session_lost``.

The gateway holds no simulation state: everything it needs to survive
its own restart is in the shard journals, which it re-reads at start.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set

from ...obs.metrics import MetricsRegistry
from ...robustness.checkpoint import serialize_checkpoint
from ..client import Client
from ..protocol import (
    GATEWAY_OPS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from ..resilience import recover_sessions
from ..server import ServiceConfig
from .ring import HashRing
from .worker import ShardSupervisor

__all__ = ["GatewayConfig", "ShardGateway", "GatewayHandle",
           "gateway_forever", "start_gateway_in_thread"]

#: Fields of a create frame that are routing envelope, not session
#: configuration — everything else is kept for migration re-creates.
_CREATE_ENVELOPE = ("op", "id", "session_id")


@dataclass(frozen=True)
class GatewayConfig:
    """Everything ``python -m repro serve --shards N`` exposes."""

    host: str = "127.0.0.1"
    port: int = 7070
    #: serve the gateway itself on a UNIX socket instead of TCP
    unix_path: Optional[str] = None
    shards: int = 2
    #: shard sockets + per-shard journal dirs live here; a temp dir is
    #: created (and reused across gateway restarts only if passed in)
    runtime_dir: Optional[str] = None
    #: per-shard session capacity (the gateway total is shards ×  this)
    max_sessions: int = 32
    workers: Optional[int] = None
    batch_window: float = 0.002
    step_budget: float = 30.0
    journal_every: int = 32
    drain_grace: float = 10.0
    allow_chaos: bool = False
    #: JSONL trace path for the gateway's serve.* events
    trace_path: Optional[str] = None
    #: seconds between shard liveness checks
    health_interval: float = 0.5
    #: seconds one gateway->shard control request may take
    request_timeout: float = 60.0
    #: seconds a migration may wait for in-flight requests to finish
    migrate_grace: float = 10.0
    vnodes: int = 64
    #: optional surrogate artifact path shards warm-start ``design``
    #: queries with
    design_surrogate: Optional[str] = None

    def shard_service_config(self) -> ServiceConfig:
        """The per-shard ServiceConfig (socket/journal paths added by
        the supervisor)."""
        return ServiceConfig(
            max_sessions=self.max_sessions,
            workers=self.workers,
            batch_window=self.batch_window,
            step_budget=self.step_budget,
            journal_every=self.journal_every,
            drain_grace=self.drain_grace,
            allow_chaos=self.allow_chaos,
            design_surrogate=self.design_surrogate,
        )


class _ShardLink:
    """The gateway's own control connection to one shard.

    Admin traffic (migration, recovery, stats fan-out) must not share a
    socket with forwarded client frames — a lock serializes the
    request/response pairing.
    """

    def __init__(self, socket_path: str) -> None:
        self.socket_path = socket_path
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.lock = asyncio.Lock()

    async def request(self, frame: dict, timeout: float) -> dict:
        async with self.lock:
            if self.writer is None or self.writer.is_closing():
                self.reader, self.writer = await asyncio.wait_for(
                    asyncio.open_unix_connection(
                        self.socket_path, limit=MAX_FRAME_BYTES),
                    timeout)
            self.writer.write(encode_frame(frame))
            await self.writer.drain()
            line = await asyncio.wait_for(self.reader.readline(), timeout)
            if not line:
                raise ConnectionResetError("shard closed control link")
            return decode_frame(line)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


class ShardGateway:
    """Routes NDJSON sessions over N shard subprocesses."""

    def __init__(self, config: Optional[GatewayConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 observer=None) -> None:
        self.config = config or GatewayConfig()
        self.registry = registry or (observer.registry if observer
                                     is not None else MetricsRegistry())
        self.observer = observer
        runtime = self.config.runtime_dir or tempfile.mkdtemp(
            prefix="repro-gateway-")
        self.runtime_dir = Path(runtime)
        self.supervisor = ShardSupervisor(
            self.config.shards, self.runtime_dir,
            self.config.shard_service_config())
        #: shards taking *new* placements (drained shards leave; crashed
        #: shards leave until respawned)
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.active: Set[int] = set()
        #: authoritative session -> shard map (every live session)
        self.routes: Dict[str, int] = {}
        #: create-frame fields per session (migration re-creates)
        self.session_config: Dict[str, dict] = {}
        self._migrating: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, int] = {}
        self._links: Dict[int, _ShardLink] = {}
        self._crash_locks: Dict[int, asyncio.Lock] = {}
        self._seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._health_task: Optional[asyncio.Task] = None
        self._draining = False
        self.started_at = 0.0
        self.requests_total = 0
        self.migrations_total = 0
        self.sessions_lost_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn shards, learn any journal-recovered sessions, bind."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.start_all)
        for shard in self.supervisor:
            self.ring.add(shard.index)
            self.active.add(shard.index)
            self._links[shard.index] = _ShardLink(str(shard.socket_path))
            self._crash_locks[shard.index] = asyncio.Lock()
        await self._learn_routes()
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path,
                limit=MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port, limit=MAX_FRAME_BYTES)
        self._health_task = asyncio.ensure_future(self._health_loop())
        self.started_at = time.time()

    async def _learn_routes(self) -> None:
        """Rebuild the routing table from what the shards recovered.

        Shards replay their journals in :meth:`SimulationService.start`;
        a restarted gateway only has to ask who lives where.
        """
        for shard in self.supervisor:
            stats = await self._control(shard.index, {"op": "stats"})
            for described in stats.get("sessions", ()):
                sid = described.get("session")
                if not sid:
                    continue
                self.routes[sid] = shard.index
                self._bump_seq(sid)
                if self.observer is not None:
                    self.observer.serve_route(sid, shard.index, "recover")

    def _bump_seq(self, sid: str) -> None:
        if sid.startswith("g") and sid[1:].isdigit():
            self._seq = max(self._seq, int(sid[1:]))

    @property
    def address(self):
        if self.config.unix_path:
            return self.config.unix_path
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def drain(self) -> dict:
        """Stop accepting work, SIGTERM the shards (they journal every
        session), then stop."""
        if self._draining:
            return {"sessions": len(self.routes), "journaled": 0,
                    "completed": True, "wall": 0.0}
        self._draining = True
        start = time.perf_counter()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop_all)
        summary = {
            "sessions": len(self.routes),
            "journaled": len(self.routes),
            "completed": True,
            "wall": round(time.perf_counter() - start, 6),
        }
        if self.observer is not None:
            self.observer.serve_drain(**summary)
        await self.stop()
        return summary

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        for link in self._links.values():
            link.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.supervisor.stop_all)

    # ------------------------------------------------------------------
    # Health / crash recovery
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            for index in self.supervisor.dead_shards():
                with contextlib.suppress(Exception):
                    await self._handle_shard_crash(index)

    async def _handle_shard_crash(self, index: int) -> None:
        """Recover a dead shard's sessions onto survivors, respawn it."""
        async with self._crash_locks[index]:
            shard = self.supervisor[index]
            if shard.alive:
                return  # another caller already recovered it
            self.ring.remove(index)
            self.active.discard(index)
            self._links[index].close()
            survivors = sorted(self.active)
            victims = sorted(sid for sid, owner in self.routes.items()
                             if owner == index)
            loop = asyncio.get_running_loop()
            recovered = await loop.run_in_executor(
                None, recover_sessions, shard.journal_dir)
            by_id = {rec.session_id: rec for rec in recovered}
            for sid in victims:
                rec = by_id.get(sid)
                placed = False
                if rec is not None and survivors:
                    target = self.ring.lookup(sid)
                    placed = await self._place_recovered(rec, target)
                if placed:
                    self.routes[sid] = target
                    # The target re-journaled it; drop the stale journal
                    # so the respawned shard does not resurrect a copy.
                    await loop.run_in_executor(
                        None, self._unlink_journal, shard, sid)
                    if self.observer is not None:
                        self.observer.serve_route(sid, target, "recover")
                else:
                    self.routes.pop(sid, None)
                    self.session_config.pop(sid, None)
                    self.sessions_lost_total += 1
                    await loop.run_in_executor(
                        None, self._unlink_journal, shard, sid)
            self.registry.counter("serve.shard_crashes").inc()
            # Respawn with a (now clean) journal dir and rejoin the ring.
            await loop.run_in_executor(None, shard.restart)
            await loop.run_in_executor(None, shard.wait_ready)
            self.ring.add(index)
            self.active.add(index)

    @staticmethod
    def _unlink_journal(shard, sid: str) -> None:
        for suffix in (".journal", ".corrupt"):
            path = shard.journal_dir / f"{sid}{suffix}"
            path.unlink(missing_ok=True)

    async def _place_recovered(self, rec, target: int) -> bool:
        """Create + restore one journal-recovered session on ``target``;
        digest-verified.  Returns False when the session is lost."""
        sid = rec.session_id
        fields = {k: v for k, v in rec.config.items() if v is not None}
        create = dict(fields, op="create", session_id=sid)
        try:
            await self._control(target, create)
            if rec.checkpoint is not None:
                blob = serialize_checkpoint(rec.checkpoint)
                restored = await self._control(target, {
                    "op": "restore", "session": sid,
                    "data": base64.b64encode(blob).decode("ascii"),
                })
                if rec.state and restored.get("digest") != rec.state:
                    await self._control_quiet(
                        target, {"op": "close", "session": sid})
                    return False
            self.session_config.setdefault(sid, fields)
            return True
        except (ServiceError, ConnectionError, OSError,
                asyncio.TimeoutError):
            return False

    # ------------------------------------------------------------------
    # Shard control requests
    # ------------------------------------------------------------------
    async def _control(self, index: int, frame: dict) -> dict:
        """One admin request to a shard over the gateway's own link."""
        if "id" not in frame:
            frame = dict(frame, id=f"gw{index}-{time.monotonic_ns()}")
        link = self._links[index]
        response = await link.request(frame, self.config.request_timeout)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "internal"),
                               response.get("detail", ""),
                               extra={k: v for k, v in response.items()
                                      if k not in ("ok", "error",
                                                   "detail", "id")})
        return response

    async def _control_quiet(self, index: int, frame: dict) -> None:
        with contextlib.suppress(ServiceError, ConnectionError, OSError,
                                 asyncio.TimeoutError):
            await self._control(index, frame)

    # ------------------------------------------------------------------
    # Connection handling (client side of the gateway)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        upstreams: Dict[int, tuple] = {}
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    break
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    writer.write(encode_frame(
                        error_response(exc.code, exc.detail)))
                    await writer.drain()
                    continue
                response = await self.handle_request(frame, upstreams)
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            for _, up_writer in upstreams.values():
                up_writer.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def handle_request(self, frame: dict,
                             upstreams: Optional[Dict[int, tuple]] = None
                             ) -> dict:
        """Execute one frame; always answers.  ``upstreams`` is the
        calling connection's shard-socket pool (None = one-shot)."""
        start = time.perf_counter()
        self.requests_total += 1
        upstreams = upstreams if upstreams is not None else {}
        op = frame.get("op") if isinstance(frame.get("op"), str) else None
        session_id = (frame.get("session")
                      if isinstance(frame.get("session"), str) else None)
        try:
            op = parse_request(frame)
            response = await self._execute(op, frame, upstreams)
            ok, error = True, None
        except ServiceError as exc:
            response = error_response(exc.code, exc.detail, frame,
                                      extra=exc.extra)
            ok, error = False, exc.code
        except Exception as exc:  # noqa: BLE001 - gateway must survive
            self.registry.counter("serve.internal_errors").inc()
            response = error_response(
                "internal", f"{type(exc).__name__}: {exc}", frame)
            ok, error = False, "internal"
        wall = time.perf_counter() - start
        self.registry.counter("serve.requests",
                              op=op or "invalid").inc()
        self.registry.histogram("serve.request.seconds").observe(wall)
        if self.observer is not None:
            self.observer.serve_request(
                op or "invalid", response.get("session", session_id),
                ok, wall, error)
        return response

    async def _execute(self, op: str, frame: dict,
                       upstreams: Dict[int, tuple]) -> dict:
        if self._draining and op not in ("ping", "topology", "stats"):
            raise ServiceError(
                "draining", "gateway is draining; retry after restart",
                extra={"retry_after_ms": 1000})
        if op == "ping":
            return ok_response(frame, protocol=PROTOCOL_VERSION,
                               server="repro-serve-gateway",
                               shards=len(self.supervisor),
                               sessions=len(self.routes),
                               draining=self._draining)
        if op == "topology":
            return ok_response(frame, **self._topology())
        if op == "stats":
            return ok_response(frame, **await self._stats())
        if op == "migrate":
            target = frame.get("target")
            result = await self.migrate(frame["session"], target)
            return ok_response(frame, **result)
        if op == "drain_shard":
            result = await self.drain_shard(int(frame["shard"]))
            return ok_response(frame, **result)
        if op == "rebalance":
            result = await self.rebalance()
            return ok_response(frame, **result)
        if op == "create":
            return await self._create(frame, upstreams)
        if op == "design":
            return await self._design(frame, upstreams)
        # step / snapshot / restore / close — forward to the owner.
        return await self._forward_session_op(op, frame, upstreams)

    # ------------------------------------------------------------------
    # Create + forwarding
    # ------------------------------------------------------------------
    async def _design(self, frame: dict,
                      upstreams: Dict[int, tuple]) -> dict:
        """Route a design query to the shard that owns its canonical
        key, so repeats of the same query always hit the same shard's
        server-side cache.  Invalid queries are refused here — the
        gateway gives the same ``bad_request`` a shard would, without
        burning a forward."""
        from ...design import DesignQuery, DesignSpaceError

        try:
            key = DesignQuery.from_mapping(frame["query"]).cache_key()
        except DesignSpaceError as exc:
            raise ServiceError(
                "bad_request", f"design query: {exc.detail}") from None
        if not self.active:
            raise ServiceError(
                "shard_down", "no shard accepts design queries",
                extra={"retry_after_ms": 1000})
        shard = self.ring.lookup(f"design:{key}")
        # Stateless + cached server-side, so the crash-retry loop in
        # _forward is safe: a re-sent query just re-hits the cache.
        return await self._forward(shard, frame, upstreams)


    async def _create(self, frame: dict,
                      upstreams: Dict[int, tuple]) -> dict:
        if not self.active:
            raise ServiceError("shard_down", "no shard accepts sessions",
                               extra={"retry_after_ms": 1000})
        self._seq += 1
        sid = f"g{self._seq}"
        shard = self.ring.lookup(sid)
        forwarded = dict(frame, session_id=sid)
        response = await self._forward(shard, forwarded, upstreams,
                                       session=sid)
        if response.get("ok"):
            self.routes[sid] = shard
            self.session_config[sid] = {
                k: v for k, v in frame.items()
                if k not in _CREATE_ENVELOPE}
            if self.observer is not None:
                self.observer.serve_route(sid, shard, "create")
        return response

    async def _forward_session_op(self, op: str, frame: dict,
                                  upstreams: Dict[int, tuple]) -> dict:
        sid = frame["session"]
        await self._await_migration(sid)
        shard = self.routes.get(sid)
        if shard is None:
            # Unknown to the gateway: let the ring owner answer with a
            # deterministic unknown_session.
            shard = self.ring.lookup(sid) if self.active else None
            if shard is None:
                raise ServiceError("unknown_session",
                                   f"no session {sid!r}")
        response = await self._forward(shard, frame, upstreams,
                                       session=sid)
        if op == "close" and response.get("ok"):
            self.routes.pop(sid, None)
            self.session_config.pop(sid, None)
        return response

    async def _await_migration(self, sid: str) -> None:
        while True:
            event = self._migrating.get(sid)
            if event is None:
                return
            await event.wait()

    async def _upstream(self, shard: int,
                        upstreams: Dict[int, tuple]) -> tuple:
        pair = upstreams.get(shard)
        if pair is None or pair[1].is_closing():
            pair = await asyncio.wait_for(
                asyncio.open_unix_connection(
                    str(self.supervisor[shard].socket_path),
                    limit=MAX_FRAME_BYTES),
                self.config.request_timeout)
            upstreams[shard] = pair
        return pair

    async def _forward(self, shard: int, frame: dict,
                       upstreams: Dict[int, tuple],
                       session: Optional[str] = None) -> dict:
        """Forward one frame; survives a stale socket or a shard crash.

        After a crash the session may have been journal-recovered onto
        another shard — the route is re-resolved and the forward retried
        once, so a client request that raced the crash still lands.
        """
        for attempt in range(3):
            if session is not None:
                await self._await_migration(session)
                shard = self.routes.get(session, shard)
            try:
                reader, writer = await self._upstream(shard, upstreams)
                if session is not None:
                    if session in self._migrating:
                        continue  # migration started while connecting
                    self._inflight[session] = \
                        self._inflight.get(session, 0) + 1
                try:
                    writer.write(encode_frame(frame))
                    await writer.drain()
                    line = await reader.readline()
                finally:
                    if session is not None:
                        self._inflight[session] -= 1
                        if not self._inflight[session]:
                            self._inflight.pop(session, None)
                if not line:
                    raise ConnectionResetError("shard hung up")
                return decode_frame(line)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pair = upstreams.pop(shard, None)
                if pair is not None:
                    pair[1].close()
                if not self.supervisor[shard].alive:
                    await self._handle_shard_crash(shard)
                # else: stale socket from an earlier respawn — retry.
        raise ServiceError(
            "shard_down", f"shard {shard} unreachable",
            extra={"retry_after_ms": 500, "shard": shard})

    # ------------------------------------------------------------------
    # Admin plane
    # ------------------------------------------------------------------
    async def migrate(self, sid: str,
                      target: Optional[int] = None) -> dict:
        """Live-migrate ``sid`` to ``target`` (or the best other shard)."""
        source = self.routes.get(sid)
        if source is None:
            raise ServiceError("unknown_session", f"no session {sid!r}")
        if target is None:
            target = self._pick_target(exclude=source)
        if not 0 <= target < len(self.supervisor):
            raise ServiceError("bad_request",
                               f"no shard {target} (0.."
                               f"{len(self.supervisor) - 1})")
        if target == source:
            return {"session": sid, "source": source, "target": target,
                    "moved": False, "detail": "already on target"}
        if not self.supervisor[target].alive:
            raise ServiceError("shard_down",
                               f"target shard {target} is down")
        start = time.perf_counter()
        event = asyncio.Event()
        self._migrating[sid] = event
        step = -1
        try:
            await self._quiesce(sid)
            # Snapshot at a step boundary, then read the digest the
            # restored copy must reproduce (steps=0 is a pure describe).
            snap = await self._control(
                source, {"op": "snapshot", "session": sid})
            probe = await self._control(
                source, {"op": "step", "session": sid, "steps": 0})
            step = int(probe.get("step", -1))
            fields = await self._create_fields(sid, source)
            await self._control(
                target, dict(fields, op="create", session_id=sid))
            restore = {"op": "restore", "session": sid,
                       "data": snap["data"]}
            if snap.get("precisions"):
                restore["precisions"] = snap["precisions"]
            try:
                restored = await self._control(target, restore)
            except (ServiceError, ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                await self._control_quiet(
                    target, {"op": "close", "session": sid})
                raise ServiceError(
                    "internal",
                    f"migration restore failed on shard {target}: "
                    f"{exc}") from exc
            if restored.get("digest") != probe.get("digest"):
                # The source copy is untouched; abandon the target copy.
                await self._control_quiet(
                    target, {"op": "close", "session": sid})
                self._observe_migration(sid, source, target, step,
                                        False, start)
                raise ServiceError(
                    "internal",
                    f"migration digest mismatch for {sid} "
                    f"({source} -> {target}); session kept on source")
            await self._control_quiet(
                source, {"op": "close", "session": sid})
            self.routes[sid] = target
            self.session_config.setdefault(sid, fields)
            self.migrations_total += 1
            self._observe_migration(sid, source, target, step, True,
                                    start)
            if self.observer is not None:
                self.observer.serve_route(sid, target, "migrate")
            return {"session": sid, "source": source, "target": target,
                    "step": step, "digest": restored.get("digest"),
                    "moved": True,
                    "wall": round(time.perf_counter() - start, 6)}
        finally:
            event.set()
            self._migrating.pop(sid, None)

    def _observe_migration(self, sid: str, source: int, target: int,
                           step: int, ok: bool, start: float) -> None:
        if self.observer is not None:
            self.observer.serve_migrate(
                sid, source, target, step, ok,
                time.perf_counter() - start)
        else:
            self.registry.counter(
                "serve.migrations",
                outcome="ok" if ok else "failed").inc()

    async def _quiesce(self, sid: str) -> None:
        """Wait out in-flight forwards for ``sid`` (new ones are already
        gated on the migration event)."""
        deadline = time.monotonic() + self.config.migrate_grace
        while self._inflight.get(sid, 0):
            if time.monotonic() > deadline:
                raise ServiceError(
                    "busy", f"session {sid} would not quiesce for "
                            f"migration", extra={"retry_after_ms": 500})
            await asyncio.sleep(0.005)

    async def _create_fields(self, sid: str, source: int) -> dict:
        """The create-frame fields for ``sid`` — cached, or read back
        from the source shard's journal (gateway restarts drop the
        cache; the journal always has the config record)."""
        fields = self.session_config.get(sid)
        if fields is not None:
            return fields
        loop = asyncio.get_running_loop()
        recovered = await loop.run_in_executor(
            None, recover_sessions, self.supervisor[source].journal_dir)
        for rec in recovered:
            if rec.session_id == sid:
                return {k: v for k, v in rec.config.items()
                        if v is not None}
        raise ServiceError(
            "internal", f"no config on record for session {sid!r}")

    def _pick_target(self, exclude: int) -> int:
        """Least-loaded live shard other than ``exclude``."""
        counts: Dict[int, int] = {
            index: 0 for index in self.active if index != exclude}
        if not counts:
            raise ServiceError("bad_request",
                               "no other shard to migrate to")
        for owner in self.routes.values():
            if owner in counts:
                counts[owner] += 1
        return min(sorted(counts), key=counts.get)

    async def drain_shard(self, index: int) -> dict:
        """Move every session off shard ``index`` and stop routing new
        sessions to it (the process stays up, empty)."""
        if not 0 <= index < len(self.supervisor):
            raise ServiceError("bad_request", f"no shard {index}")
        self.ring.remove(index)
        self.active.discard(index)
        if not self.active:
            # Undo: a topology with zero placeable shards is worse.
            self.ring.add(index)
            self.active.add(index)
            raise ServiceError("bad_request",
                               "cannot drain the last active shard")
        victims = sorted(sid for sid, owner in self.routes.items()
                         if owner == index)
        moved, failed = 0, []
        for sid in victims:
            try:
                await self.migrate(sid, self.ring.lookup(sid))
                moved += 1
            except ServiceError as exc:
                failed.append({"session": sid, "error": exc.code,
                               "detail": exc.detail})
        return {"shard": index, "moved": moved, "failed": failed,
                "remaining": sum(1 for owner in self.routes.values()
                                 if owner == index)}

    async def rebalance(self) -> dict:
        """Repoint every session to its ring-preferred shard.

        After a crash piles sessions onto survivors, this walks them
        back to the consistent-hash placement.
        """
        moved, failed, checked = 0, [], 0
        for sid in sorted(self.routes):
            owner = self.routes.get(sid)
            if owner is None:
                continue
            checked += 1
            want = self.ring.lookup(sid)
            if want == owner:
                continue
            try:
                await self.migrate(sid, want)
                moved += 1
            except ServiceError as exc:
                failed.append({"session": sid, "error": exc.code,
                               "detail": exc.detail})
        return {"sessions": checked, "moved": moved, "failed": failed}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _topology(self) -> dict:
        per_shard: Dict[int, int] = {
            shard.index: 0 for shard in self.supervisor}
        for owner in self.routes.values():
            per_shard[owner] = per_shard.get(owner, 0) + 1
        return {
            "shards": [
                {
                    "shard": shard.index,
                    "alive": shard.alive,
                    "active": shard.index in self.active,
                    "sessions": per_shard.get(shard.index, 0),
                    "restarts": shard.restarts,
                    "pid": shard.pid,
                    "socket": str(shard.socket_path),
                }
                for shard in self.supervisor
            ],
            "routes": dict(self.routes),
            "sessions": len(self.routes),
            "migrations": self.migrations_total,
            "sessions_lost": self.sessions_lost_total,
        }

    async def _stats(self) -> dict:
        shards: Dict[str, dict] = {}
        sessions: List[dict] = []
        for shard in self.supervisor:
            if not shard.alive:
                shards[str(shard.index)] = {"alive": False}
                continue
            try:
                stats = await self._control(shard.index, {"op": "stats"})
            except (ServiceError, ConnectionError, OSError,
                    asyncio.TimeoutError) as exc:
                shards[str(shard.index)] = {"alive": True,
                                            "error": str(exc)}
                continue
            stats.pop("ok", None)
            stats.pop("id", None)
            shards[str(shard.index)] = stats
            sessions.extend(stats.get("sessions", ()))
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "gateway": self._topology(),
            "sessions": sessions,
            "active_sessions": len(self.routes),
            "requests_total": self.requests_total,
            "draining": self._draining,
            "shards": shards,
            "metrics": self.registry.snapshot(),
        }


# ----------------------------------------------------------------------
# CLI + harness entry points (mirrors repro.serve.server/client)
# ----------------------------------------------------------------------
async def gateway_forever(config: GatewayConfig, observer=None,
                          ready_callback=None) -> None:
    """Run the gateway until SIGTERM/SIGINT, then drain gracefully."""
    gateway = ShardGateway(config, observer=observer)
    await gateway.start()
    address = gateway.address
    where = (address if isinstance(address, str)
             else f"{address[0]}:{address[1]}")
    print(f"repro-serve: gateway on {where} "
          f"({config.shards} shards under {gateway.runtime_dir}, "
          f"max {config.max_sessions} sessions/shard)")
    if gateway.routes:
        print(f"repro-serve: re-learned {len(gateway.routes)} "
              f"session route(s) from shard journals")
    if ready_callback is not None:
        ready_callback(gateway)

    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, drain_requested.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        if installed:
            server = gateway._server
            wait = loop.create_task(drain_requested.wait())
            forever = loop.create_task(server.serve_forever())
            await asyncio.wait({wait, forever},
                               return_when=asyncio.FIRST_COMPLETED)
            for task in (wait, forever):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            if drain_requested.is_set():
                print("repro-serve: shutdown signal received; "
                      "draining shards")
                summary = await gateway.drain()
                print(f"repro-serve: drained "
                      f"({summary['sessions']} session(s) journaled, "
                      f"{summary['wall']:.2f}s)")
        else:
            await gateway._server.serve_forever()
    finally:
        for sig in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(sig)
        await gateway.stop()


class GatewayHandle:
    """A gateway (plus its shards) on a background event-loop thread."""

    def __init__(self, gateway: ShardGateway,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.gateway = gateway
        self._loop = loop
        self._thread = thread
        address = gateway.address
        if isinstance(address, str):
            self.unix_path: Optional[str] = address
            self.host = self.port = None
        else:
            self.unix_path = None
            self.host, self.port = address

    def connect(self, timeout: float = 60.0) -> Client:
        return Client(host=self.host, port=self.port,
                      unix_path=self.unix_path, timeout=timeout)

    def address(self) -> dict:
        if self.unix_path:
            return {"unix_path": self.unix_path}
        return {"host": self.host, "port": self.port}

    def kill_shard(self, index: int) -> None:
        """Chaos hook: SIGKILL one shard process (no drain, no warning).

        Safe from any thread — the gateway's health loop (or the next
        failed forward) notices and runs journal recovery.
        """
        self.gateway.supervisor[index].kill()

    def run(self, coro, timeout: float = 120.0):
        """Run a gateway coroutine on the gateway loop (admin helpers)."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(timeout)

    def stop(self, timeout: float = 60.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def start_gateway_in_thread(config: Optional[GatewayConfig] = None,
                            observer=None,
                            timeout: float = 120.0) -> GatewayHandle:
    """Start a gateway + shards on a background thread; returns once
    every shard socket accepts and the gateway is bound."""
    config = config or GatewayConfig(port=0)
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        gateway = ShardGateway(config, observer=observer)
        try:
            loop.run_until_complete(gateway.start())
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            box["error"] = exc
            ready.set()
            with contextlib.suppress(Exception):
                loop.run_until_complete(gateway.stop())
            loop.close()
            return
        box["gateway"] = gateway
        box["loop"] = loop
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-gateway-loop",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("gateway did not start in time")
    if "error" in box:
        raise box["error"]
    return GatewayHandle(box["gateway"], box["loop"], thread)
