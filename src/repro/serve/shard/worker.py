"""Shard worker processes and their supervisor.

Each shard is a separate OS process — that is the whole point: the
single-process service batches steps over a thread pool and the GIL
caps it at roughly one core.  A shard runs the *unchanged*
:class:`~repro.serve.server.SimulationService` stack (session manager,
batch scheduler, admission, journal) on a per-shard UNIX socket with a
per-shard journal directory, so everything PR 5/6 guarantees — digest
verified snapshots, crash recovery, drain — holds per shard.

Workers are spawned (not forked): the gateway's asyncio loop and
threads must not leak into children, and a spawned child re-imports
``repro`` cleanly.  SIGTERM asks a shard to drain (final journal entry
per session, exit 0); SIGKILL is the crash the gateway's recovery path
exists for.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import socket
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..server import ServiceConfig, serve_forever

__all__ = ["ShardProcess", "ShardSupervisor", "shard_entry"]

#: Seconds a freshly spawned shard gets to bind its socket (spawn
#: re-imports numpy; cold starts on busy CI runners are slow).
DEFAULT_READY_TIMEOUT = 60.0


def shard_entry(config_fields: Dict) -> None:
    """Subprocess entry point: run one shard until SIGTERM.

    ``config_fields`` are :class:`ServiceConfig` kwargs (a plain dict so
    the spawn pickling surface stays trivial).
    """
    import asyncio

    asyncio.run(serve_forever(ServiceConfig(**config_fields)))


class ShardProcess:
    """One shard subprocess: socket path, journal dir, process handle."""

    def __init__(self, index: int, runtime_dir: Path,
                 config: ServiceConfig) -> None:
        self.index = index
        self.runtime_dir = Path(runtime_dir)
        self.socket_path = self.runtime_dir / f"shard-{index}.sock"
        self.journal_dir = self.runtime_dir / f"journal-{index}"
        self.config = dataclasses.replace(
            config, unix_path=str(self.socket_path),
            journal_dir=str(self.journal_dir))
        self._process: Optional[multiprocessing.Process] = None
        self.restarts = 0

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def start(self) -> None:
        if self.alive:
            raise RuntimeError(f"shard {self.index} is already running")
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        # A stale socket file from a killed shard blocks the re-bind.
        self.socket_path.unlink(missing_ok=True)
        ctx = multiprocessing.get_context("spawn")
        self._process = ctx.Process(
            target=shard_entry, args=(dataclasses.asdict(self.config),),
            name=f"repro-shard-{self.index}", daemon=True)
        self._process.start()

    def wait_ready(self, timeout: float = DEFAULT_READY_TIMEOUT) -> None:
        """Block until the shard's socket accepts connections."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.alive:
                raise RuntimeError(
                    f"shard {self.index} exited during startup "
                    f"(exitcode {self._process.exitcode})")
            try:
                with socket.socket(socket.AF_UNIX,
                                   socket.SOCK_STREAM) as probe:
                    probe.settimeout(1.0)
                    probe.connect(str(self.socket_path))
                return
            except OSError:
                time.sleep(0.05)
        raise TimeoutError(
            f"shard {self.index} did not become ready in {timeout:.0f}s")

    # ------------------------------------------------------------------
    def terminate(self, grace: float = 15.0) -> None:
        """SIGTERM (drain) then SIGKILL if the grace period expires."""
        process = self._process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(grace)
            if process.is_alive():
                process.kill()
                process.join(5.0)
        self._process = None

    def kill(self) -> None:
        """SIGKILL — the crash-simulation path (no drain, no journal)."""
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
            process.join(5.0)

    def restart(self) -> None:
        """Replace a dead (or killed) process with a fresh one.

        The journal directory is left in place on purpose: the new
        process recovers whatever sessions the gateway did not already
        migrate off it.
        """
        if self.alive:
            raise RuntimeError(f"shard {self.index} is still alive")
        self._process = None
        self.restarts += 1
        self.start()


class ShardSupervisor:
    """Owns the N shard processes of one gateway."""

    def __init__(self, shards: int, runtime_dir: Path,
                 config: ServiceConfig) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.runtime_dir = Path(runtime_dir)
        self.shards: List[ShardProcess] = [
            ShardProcess(index, self.runtime_dir, config)
            for index in range(shards)]

    def __iter__(self):
        return iter(self.shards)

    def __getitem__(self, index: int) -> ShardProcess:
        return self.shards[index]

    def __len__(self) -> int:
        return len(self.shards)

    def start_all(self, timeout: float = DEFAULT_READY_TIMEOUT) -> None:
        """Spawn every shard, then wait until all sockets accept."""
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        for shard in self.shards:
            shard.start()
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            shard.wait_ready(max(1.0, deadline - time.monotonic()))

    def stop_all(self, grace: float = 15.0) -> None:
        for shard in self.shards:
            shard.terminate(grace)

    def dead_shards(self) -> List[int]:
        return [shard.index for shard in self.shards if not shard.alive]
