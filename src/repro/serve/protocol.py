"""Newline-delimited JSON wire protocol for the simulation service.

One request is one JSON object on one line; one response is one JSON
object on one line.  The framing is deliberately the same as the
observability trace (:mod:`repro.obs.trace`): self-contained lines that
survive torn connections, are greppable, and need no length-prefix
state machine.  Binary payloads (session snapshots from
:func:`repro.robustness.serialize_checkpoint`) travel base64-encoded in
the ``data`` field.

Requests
--------
Every request carries ``op`` (one of :data:`OPS`) plus op-specific
fields; an optional client-chosen ``id`` is echoed back verbatim so a
pipelining client can correlate responses.

====================  =================================================
``ping``              liveness + protocol version
``create``            new session: ``scenario`` (required), ``scale``,
                      ``seed``, ``precision`` (phase → mantissa bits),
                      ``mode``, ``adaptive``, ``step_budget``
``step``              advance: ``session``, ``steps`` (default 1)
``snapshot``          capture: ``session`` → snapshot id + base64 bytes
``restore``           rewind: ``session`` plus ``snapshot`` (a
                      server-held id) or ``data`` (base64 bytes, e.g.
                      into a freshly created session)
``close``             end a session cleanly
``stats``             service totals + per-session summaries
``design``            design-space query: ``query`` (an object of
                      ``repro.design`` search parameters — budgets,
                      generations, seed, ...) → the verified Pareto
                      front; results are cached server-side keyed on
                      the canonicalized query
``topology``          gateway only: shard processes + routing table
``migrate``           gateway only: move ``session`` to ``target`` shard
``drain_shard``       gateway only: move every session off ``shard``
``rebalance``         gateway only: repoint sessions to ring placement
====================  =================================================

The four gateway admin ops are answered by the sharded gateway
(:mod:`repro.serve.shard`); a single-process server refuses them with
``bad_request`` so a client never mistakes one topology for the other.

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": <code>, "detail": <text>}`` with ``error`` one
of :data:`ERROR_CODES`.  ``busy`` and ``server_full`` are the
backpressure signals: the request was *not* queued and the client
should retry later or give up.
"""

from __future__ import annotations

import json
from typing import Optional

from ..obs.schema import SERVE_OPS

__all__ = ["PROTOCOL_VERSION", "OPS", "GATEWAY_OPS", "ERROR_CODES",
           "MAX_FRAME_BYTES", "ProtocolError", "ServiceError",
           "encode_frame", "decode_frame", "parse_request",
           "ok_response", "error_response"]

PROTOCOL_VERSION = 1

#: Operations a client may request (shared with the trace schema so
#: ``serve.request`` events validate against the same list).
OPS = SERVE_OPS

#: Hard cap on one frame; snapshots of benchmark-scale worlds are tens
#: of kilobytes, so this bounds a hostile or confused peer, not a real
#: payload.
MAX_FRAME_BYTES = 8 * 1024 * 1024

ERROR_CODES = (
    "bad_frame",        # not JSON, not an object, or oversized
    "bad_request",      # well-formed JSON but invalid fields
    "unknown_op",
    "unknown_session",
    "unknown_snapshot",
    "server_full",      # admission: session table at capacity
    "busy",             # admission: queue bounds hit — backpressure
    "session_closed",
    "budget_exceeded",  # step budget blown; session evicted
    "session_degraded",  # recovered by rolling back to the last journal
                         # entry; response carries the step it resumed at
    "session_lost",     # the recovery ladder ran out — session quarantined
    "draining",         # server shutting down gracefully; retry elsewhere
    "shard_down",       # gateway: shard unreachable, recovery running —
                        # retryable, sessions journal-restore elsewhere
    "internal",
)

#: Ops only the sharded gateway answers (subset of :data:`OPS`).
GATEWAY_OPS = ("migrate", "drain_shard", "rebalance", "topology")


class ProtocolError(ValueError):
    """A malformed frame (transport-level failure)."""

    def __init__(self, detail: str, code: str = "bad_frame") -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


class ServiceError(Exception):
    """A request the service refuses; maps onto one error response.

    ``extra`` fields (e.g. ``retry_after_ms`` on ``busy``/``draining``,
    or ``step`` on ``session_degraded``) are merged into the error
    response so structured hints reach the client without a second
    round-trip.
    """

    def __init__(self, code: str, detail: str = "",
                 extra: Optional[dict] = None) -> None:
        assert code in ERROR_CODES, code
        super().__init__(detail or code)
        self.code = code
        self.detail = detail
        self.extra = dict(extra) if extra else {}


def encode_frame(obj: dict) -> bytes:
    """One frame: compact JSON plus the terminating newline."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_frame(line) -> dict:
    """Parse one received line into a frame dict.

    Accepts ``bytes`` or ``str``; raises :class:`ProtocolError` for
    anything that is not a single JSON object.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame exceeds {MAX_FRAME_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    return frame


def parse_request(frame: dict) -> str:
    """Validate the request envelope; returns the ``op``.

    Raises :class:`ServiceError` (not :class:`ProtocolError`): the frame
    itself was well-formed, so the connection survives and the client
    gets a structured error response.
    """
    op = frame.get("op")
    if not isinstance(op, str):
        raise ServiceError("bad_request", "request needs a string 'op'")
    if op not in OPS:
        raise ServiceError(
            "unknown_op", f"unknown op {op!r}; valid ops: {', '.join(OPS)}")
    session = frame.get("session")
    if session is not None and not isinstance(session, str):
        raise ServiceError("bad_request", "'session' must be a string")
    if op in ("step", "snapshot", "restore", "close", "migrate") \
            and session is None:
        raise ServiceError("bad_request", f"op {op!r} needs a 'session'")
    steps = frame.get("steps", 1)
    if not isinstance(steps, int) or steps < 0:
        raise ServiceError(
            "bad_request", "'steps' must be a non-negative integer")
    session_id = frame.get("session_id")
    if session_id is not None and not isinstance(session_id, str):
        raise ServiceError("bad_request", "'session_id' must be a string")
    for field in ("shard", "target"):
        value = frame.get(field)
        if value is not None and not isinstance(value, int):
            raise ServiceError(
                "bad_request", f"{field!r} must be an integer shard index")
    if op == "drain_shard" and frame.get("shard") is None:
        raise ServiceError(
            "bad_request", "op 'drain_shard' needs a 'shard' index")
    if op == "design":
        query = frame.get("query")
        if not isinstance(query, dict):
            raise ServiceError(
                "bad_request",
                "op 'design' needs a 'query' object of search "
                "parameters")
    return op


def ok_response(request: Optional[dict] = None, **fields) -> dict:
    """A success response, echoing the request's correlation ``id``."""
    response = {"ok": True}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response


def error_response(code: str, detail: str = "",
                   request: Optional[dict] = None,
                   extra: Optional[dict] = None) -> dict:
    assert code in ERROR_CODES, code
    response = {"ok": False, "error": code, "detail": detail}
    if extra:
        response.update(extra)
    if request is not None and isinstance(request, dict) \
            and "id" in request:
        response["id"] = request["id"]
    return response
