"""Sessions: one independently-tuned simulation per client.

A :class:`Session` owns a :class:`~repro.physics.World` plus the
per-session precision machinery the paper argues for — its own
:class:`~repro.fp.FPContext` control register and (opt-in) its own
:class:`~repro.tuning.PrecisionController` or guarded-recovery ladder.
The :class:`SessionManager` is the service's session table: create /
step / snapshot / restore / close, with snapshots stored as
:func:`~repro.robustness.serialize_checkpoint` bytes so the same blob
that restores in place can travel over the wire and seed a fresh
session bit-identically.

Threading contract: the manager's table is only mutated from the
service event loop; a session's world is only touched by one scheduler
worker at a time (the :class:`~repro.serve.scheduler.BatchScheduler`
serializes per-session work), so sessions need no locks of their own.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fp.context import FPContext
from ..robustness.checkpoint import (
    capture_world,
    deserialize_checkpoint,
    restore_world,
    serialize_checkpoint,
)
from ..workloads import build
from .protocol import ServiceError

__all__ = ["SessionConfig", "Session", "SessionManager", "state_digest"]

#: Snapshots retained per session before the oldest is dropped.
MAX_SNAPSHOTS = 8


def state_digest(world) -> str:
    """Deterministic hex digest of the mutable simulation state.

    Two worlds on the same trajectory produce the same digest; any
    single-bit divergence in body or cloth state changes it.  This is
    the service's bit-identity check for snapshot/restore round-trips.
    """
    bodies = world.bodies
    n = bodies.count
    h = hashlib.sha256()
    h.update(str(world.step_count).encode())
    for name in ("pos", "quat", "linvel", "angvel"):
        h.update(getattr(bodies, name)[:n].tobytes())
    for cloth in world.cloths:
        h.update(cloth.pos.tobytes())
        h.update(cloth.vel.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to (re)build one session's world."""

    scenario: str
    scale: float = 1.0
    seed: Optional[int] = None
    precision: Dict[str, int] = field(default_factory=dict)
    mode: str = "jam"
    #: run the per-session dynamic precision controller
    adaptive: bool = False
    #: per-step wall budget override (None = service default)
    step_budget: Optional[float] = None

    @classmethod
    def from_frame(cls, frame: dict) -> "SessionConfig":
        """Build from a ``create`` request, validating field types."""
        scenario = frame.get("scenario")
        if not isinstance(scenario, str):
            raise ServiceError("bad_request",
                               "'create' needs a string 'scenario'")
        precision = frame.get("precision") or {}
        if not isinstance(precision, dict) or not all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in precision.items()):
            raise ServiceError(
                "bad_request",
                "'precision' must map phase names to integer bits")
        step_budget = frame.get("step_budget")
        if step_budget is not None and not isinstance(
                step_budget, (int, float)):
            raise ServiceError("bad_request",
                               "'step_budget' must be a number")
        try:
            return cls(
                scenario=scenario,
                scale=float(frame.get("scale", 1.0)),
                seed=(int(frame["seed"]) if frame.get("seed") is not None
                      else None),
                precision={k: v for k, v in precision.items() if v < 23},
                mode=str(frame.get("mode", "jam")),
                adaptive=bool(frame.get("adaptive", False)),
                step_budget=(float(step_budget)
                             if step_budget is not None else None),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError("bad_request", str(exc)) from None


class Session:
    """One live simulation: world + per-session precision control."""

    def __init__(self, session_id: str, config: SessionConfig) -> None:
        from ..tuning import ControlledSimulation, PrecisionController

        self.id = session_id
        self.config = config
        ctx = FPContext(dict(config.precision), mode=config.mode,
                        census=False)
        # UnknownScenarioError propagates to the create handler, which
        # maps it onto a bad_request response listing the valid names.
        self.world = build(config.scenario, ctx=ctx, scale=config.scale,
                           seed=config.seed)
        self.controller = None
        self._sim = None
        if config.adaptive and config.precision:
            self.controller = PrecisionController(ctx,
                                                  dict(config.precision))
            self._sim = ControlledSimulation(self.world, self.controller)
        self.state = "active"
        self.steps_run = 0
        self._snapshots: "OrderedDict[str, bytes]" = OrderedDict()
        self._snapshot_seq = 0

    # ------------------------------------------------------------------
    def step(self, steps: int = 1) -> dict:
        """Advance ``steps`` timesteps; runs on a scheduler worker."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        if self._sim is not None:
            self._sim.run(steps)
        else:
            for _ in range(steps):
                self.world.step()
        self.steps_run += steps
        return self.describe()

    def describe(self) -> dict:
        records = self.world.monitor.records
        return {
            "session": self.id,
            "step": self.world.step_count,
            "energy": (round(float(records[-1].total), 6)
                       if records else None),
            "contacts": int(self.world.last_contact_count),
            "digest": state_digest(self.world),
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the current step boundary as wire-ready bytes."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        blob = serialize_checkpoint(capture_world(self.world))
        self._snapshot_seq += 1
        snap_id = f"{self.id}.c{self._snapshot_seq}"
        self._snapshots[snap_id] = blob
        while len(self._snapshots) > MAX_SNAPSHOTS:
            self._snapshots.popitem(last=False)
        return {
            "session": self.id,
            "snapshot": snap_id,
            "step": self.world.step_count,
            "bytes": len(blob),
            "data": blob,
            "precisions": dict(self.world.ctx.phase_precision),
        }

    def restore(self, snapshot_id: Optional[str] = None,
                data: Optional[bytes] = None,
                precisions: Optional[Dict[str, int]] = None) -> dict:
        """Rewind to a held snapshot id, or to caller-supplied bytes."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        if data is None:
            if snapshot_id is None:
                raise ServiceError("bad_request",
                                   "restore needs 'snapshot' or 'data'")
            data = self._snapshots.get(snapshot_id)
            if data is None:
                raise ServiceError("unknown_snapshot",
                                   f"no snapshot {snapshot_id!r} held "
                                   f"for session {self.id}")
        try:
            checkpoint = deserialize_checkpoint(data)
        except ValueError as exc:
            raise ServiceError("bad_request", str(exc)) from None
        n_bodies = len(checkpoint.body_state["pos"])
        if n_bodies != self.world.bodies.count + 1 or \
                len(checkpoint.cloth_state) != len(self.world.cloths):
            raise ServiceError(
                "bad_request",
                "snapshot does not match this session's scenario/scale")
        # A freshly built world may not have materialized the virtual
        # world row the capture included; guarantee the capacity first.
        self.world.bodies.ensure_world_row()
        restore_world(self.world, checkpoint)
        if precisions:
            for phase, bits in precisions.items():
                self.world.ctx.set_precision(phase, int(bits))
        return self.describe()

    def close(self, state: str = "closed") -> None:
        self.state = state
        self._snapshots.clear()


class SessionManager:
    """The session table: lifecycle plus capacity accounting."""

    def __init__(self, max_sessions: int = 32, registry=None,
                 observer=None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.observer = observer
        self._sessions: Dict[str, Session] = {}
        self._seq = 0
        self.created_total = 0
        self.evicted_total = 0
        self._registry = registry
        self._g_active = (registry.gauge("serve.sessions")
                          if registry is not None else None)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def create(self, config: SessionConfig) -> Session:
        if len(self._sessions) >= self.max_sessions:
            raise ServiceError(
                "server_full",
                f"session table full ({self.max_sessions}); close a "
                f"session or raise --max-sessions")
        self._seq += 1
        session = Session(f"s{self._seq}", config)
        self._sessions[session.id] = session
        self.created_total += 1
        self._track()
        return session

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError("unknown_session",
                               f"no session {session_id!r}")
        return session

    def close(self, session_id: str) -> Session:
        session = self.get(session_id)
        del self._sessions[session_id]
        session.close()
        self._track()
        return session

    def evict(self, session_id: str, reason: str) -> None:
        """Forcibly remove a session (budget blown, step crashed)."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        session.close(state="evicted")
        self.evicted_total += 1
        self._track()
        if self.observer is not None:
            self.observer.serve_evict(session_id, reason,
                                      session.world.step_count)

    def close_all(self) -> None:
        for session_id in list(self._sessions):
            self.close(session_id)

    def _track(self) -> None:
        if self._g_active is not None:
            self._g_active.set(len(self._sessions))
