"""Sessions: one independently-tuned simulation per client.

A :class:`Session` owns a :class:`~repro.physics.World` plus the
per-session precision machinery the paper argues for — its own
:class:`~repro.fp.FPContext` control register and (opt-in) its own
:class:`~repro.tuning.PrecisionController` or guarded-recovery ladder.
The :class:`SessionManager` is the service's session table: create /
step / snapshot / restore / close, with snapshots stored as
:func:`~repro.robustness.serialize_checkpoint` bytes so the same blob
that restores in place can travel over the wire and seed a fresh
session bit-identically.

Resilience (this is where the paper's deception-needs-detection
argument meets the service): a ``guarded`` session steps under the
phase-boundary invariant guards with a **server-side recovery
ladder** — a step that raises, trips a guard, or blows its soft
deadline is (0) re-executed at full precision from the pre-step
checkpoint, then (1) rolled back to the session's last journal entry
(the client gets a structured ``session_degraded`` response carrying
the step it resumed at), then (2) quarantined with a ``session_lost``
response — instead of poisoning the batch or tearing down the
connection.  The :class:`SessionManager` pairs with a
:class:`~repro.serve.resilience.JournalStore` so every session is
reconstructible after a crash, and can *respawn* a session whose
worker thread is stuck from its last journaled checkpoint.

Threading contract: the manager's table is only mutated from the
service event loop; a session's world is only touched by one scheduler
worker at a time (the :class:`~repro.serve.scheduler.BatchScheduler`
serializes per-session work), so sessions need no locks of their own.
Recovery events recorded on a worker thread are drained by the
scheduler after the batch barrier, on the event loop.
"""

from __future__ import annotations

import hashlib
import re
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fp.context import FPContext
from ..robustness.checkpoint import (
    CheckpointRing,
    capture_world,
    deserialize_checkpoint,
    restore_world,
    serialize_checkpoint,
)
from ..robustness.recovery import _full_precision
from ..workloads import build
from .protocol import ServiceError
from .resilience import SessionDegraded, SessionLost, recover_sessions

__all__ = ["SessionConfig", "Session", "SessionManager", "state_digest"]

#: Snapshots retained per session before the oldest is dropped.
MAX_SNAPSHOTS = 8

#: Full-precision cool-down steps after a rung-r recovery: (r+1) times.
LADDER_BACKOFF_STEPS = 5

_SESSION_ID = re.compile(r"^s(\d+)$")


def state_digest(world) -> str:
    """Deterministic hex digest of the mutable simulation state.

    Two worlds on the same trajectory produce the same digest; any
    single-bit divergence in body or cloth state changes it.  This is
    the service's bit-identity check for snapshot/restore round-trips
    and for journal recovery after a restart.
    """
    bodies = world.bodies
    n = bodies.count
    h = hashlib.sha256()
    h.update(str(world.step_count).encode())
    for name in ("pos", "quat", "linvel", "angvel"):
        h.update(getattr(bodies, name)[:n].tobytes())
    for cloth in world.cloths:
        h.update(cloth.pos.tobytes())
        h.update(cloth.vel.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class SessionConfig:
    """Everything needed to (re)build one session's world."""

    scenario: str
    scale: float = 1.0
    seed: Optional[int] = None
    precision: Dict[str, int] = field(default_factory=dict)
    mode: str = "jam"
    #: run the per-session dynamic precision controller
    adaptive: bool = False
    #: per-step wall budget override (None = service default)
    step_budget: Optional[float] = None
    #: step under phase guards with the server-side recovery ladder
    guarded: bool = False
    #: soft per-step deadline (seconds); a slower step triggers the
    #: ladder (distinct from ``step_budget``, which evicts/respawns)
    step_deadline: Optional[float] = None
    #: seeded soft-error injection rate (fault drills; requires the
    #: service's ``allow_chaos``)
    inject_rate: float = 0.0
    #: chaos drill: sleep ``chaos_slow_s`` before every Nth step
    chaos_slow_every: int = 0
    chaos_slow_s: float = 0.0

    @classmethod
    def from_frame(cls, frame: dict,
                   allow_chaos: bool = False) -> "SessionConfig":
        """Build from a ``create`` request, validating field types."""
        scenario = frame.get("scenario")
        if not isinstance(scenario, str):
            raise ServiceError("bad_request",
                               "'create' needs a string 'scenario'")
        precision = frame.get("precision") or {}
        if not isinstance(precision, dict) or not all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in precision.items()):
            raise ServiceError(
                "bad_request",
                "'precision' must map phase names to integer bits")
        for name in ("step_budget", "step_deadline", "inject_rate",
                     "chaos_slow_s"):
            value = frame.get(name)
            if value is not None and not isinstance(value, (int, float)):
                raise ServiceError("bad_request",
                                   f"'{name}' must be a number")
        if not allow_chaos and (frame.get("inject_rate")
                                or frame.get("chaos_slow_every")):
            raise ServiceError(
                "bad_request",
                "fault-drill fields (inject_rate, chaos_slow_every) "
                "need the service started with --allow-chaos")
        try:
            step_budget = frame.get("step_budget")
            step_deadline = frame.get("step_deadline")
            return cls(
                scenario=scenario,
                scale=float(frame.get("scale", 1.0)),
                seed=(int(frame["seed"]) if frame.get("seed") is not None
                      else None),
                precision={k: v for k, v in precision.items() if v < 23},
                mode=str(frame.get("mode", "jam")),
                adaptive=bool(frame.get("adaptive", False)),
                step_budget=(float(step_budget)
                             if step_budget is not None else None),
                guarded=bool(frame.get("guarded", False)),
                step_deadline=(float(step_deadline)
                               if step_deadline is not None else None),
                inject_rate=float(frame.get("inject_rate", 0.0) or 0.0),
                chaos_slow_every=int(frame.get("chaos_slow_every", 0)
                                     or 0),
                chaos_slow_s=float(frame.get("chaos_slow_s", 0.0)
                                   or 0.0),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError("bad_request", str(exc)) from None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form for the journal's config record."""
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "precision": dict(self.precision),
            "mode": self.mode,
            "adaptive": self.adaptive,
            "step_budget": self.step_budget,
            "guarded": self.guarded,
            "step_deadline": self.step_deadline,
            "inject_rate": self.inject_rate,
            "chaos_slow_every": self.chaos_slow_every,
            "chaos_slow_s": self.chaos_slow_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        """Rebuild from a journal config record (unknown keys ignored)."""
        fields = {f: data[f] for f in cls.__dataclass_fields__
                  if f in data}
        precision = fields.get("precision") or {}
        fields["precision"] = {str(k): int(v)
                               for k, v in precision.items()}
        return cls(**fields)


class Session:
    """One live simulation: world + per-session precision control."""

    def __init__(self, session_id: str, config: SessionConfig) -> None:
        from ..tuning import ControlledSimulation, PrecisionController

        self.id = session_id
        self.config = config
        ctx = FPContext(dict(config.precision), mode=config.mode,
                        census=False)
        # UnknownScenarioError propagates to the create handler, which
        # maps it onto a bad_request response listing the valid names.
        self.world = build(config.scenario, ctx=ctx, scale=config.scale,
                           seed=config.seed)
        self.controller = None
        self._sim = None
        if config.adaptive and config.precision:
            self.controller = PrecisionController(ctx,
                                                  dict(config.precision))
            self._sim = ControlledSimulation(self.world, self.controller)
        self.guards = None
        self.injector = None
        self.ring: Optional[CheckpointRing] = None
        if config.guarded or config.inject_rate > 0:
            from ..robustness.guards import PhaseGuards
            from ..robustness.injector import FaultInjector

            self.guards = PhaseGuards()
            self.world.guards = self.guards
            if config.inject_rate > 0:
                self.injector = FaultInjector(rate=config.inject_rate,
                                              seed=config.seed or 0)
                self.world.ctx.injector = self.injector
            # Depth 2: rung 0 only needs the pre-step boundary; deeper
            # history lives in the journal.
            self.ring = CheckpointRing(2)
        self.state = "active"
        self.steps_run = 0
        self._snapshots: "OrderedDict[str, bytes]" = OrderedDict()
        self._snapshot_seq = 0
        #: (WorldCheckpoint, step, state_digest) of the last journal
        #: entry — the rung-1 rollback target and the respawn substrate.
        self._last_journal: Optional[Tuple] = None
        self.steps_since_journal = 0
        self.recovery_count = 0
        self._recovery_events: List[dict] = []
        self._cooldown = 0
        self._chaos_counter = 0

    # ------------------------------------------------------------------
    def step(self, steps: int = 1) -> dict:
        """Advance ``steps`` timesteps; runs on a scheduler worker."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        if self.guards is not None:
            for _ in range(steps):
                self._guarded_step()
                self.steps_run += 1
                self.steps_since_journal += 1
        elif self._sim is not None:
            self._sim.run(steps)
            self.steps_run += steps
            self.steps_since_journal += steps
        else:
            for _ in range(steps):
                self.world.step()
            self.steps_run += steps
            self.steps_since_journal += steps
        return self.describe()

    def fleet_key(self) -> Optional[Tuple]:
        """Coalescing key for fleet-batched stepping (None = ineligible).

        Sessions sharing a key run their queued steps as one
        :class:`~repro.physics.WorldBatch` — a single vectorized pass
        over every member world.  Anything stateful beyond the plain
        step loop (guards, adaptive control, fault drills) opts out, as
        does any world the batch layer itself cannot take
        (:func:`~repro.physics.fleet_ineligibility`).
        """
        config = self.config
        if (self.state != "active" or config.adaptive or config.guarded
                or config.inject_rate > 0 or config.chaos_slow_every > 0):
            return None
        from ..physics.batch import fleet_ineligibility

        if fleet_ineligibility(self.world) is not None:
            return None
        return (config.scenario, config.scale, config.mode,
                tuple(sorted(config.precision.items())))

    def fleet_step(self, steps: int) -> None:
        """Bookkeeping for steps advanced by a fleet batch."""
        self.steps_run += steps
        self.steps_since_journal += steps

    def describe(self) -> dict:
        records = self.world.monitor.records
        return {
            "session": self.id,
            "step": self.world.step_count,
            "energy": (round(float(records[-1].total), 6)
                       if records else None),
            "contacts": int(self.world.last_contact_count),
            "digest": state_digest(self.world),
            "state": self.state,
        }

    # ------------------------------------------------------------------
    # The server-side recovery ladder (guarded sessions)
    # ------------------------------------------------------------------
    def _guarded_step(self) -> None:
        """One guarded timestep: checkpoint, attempt, ladder on failure."""
        world = self.world
        self.ring.push(capture_world(world))
        if self.injector is not None:
            self.injector.step = world.step_count
        in_cooldown = self._cooldown > 0
        if in_cooldown:
            self._cooldown -= 1
        failure = self._attempt(full_precision=in_cooldown,
                                inject=not in_cooldown, primary=True)
        if failure is None:
            self._observe(reexecuted=False)
            return

        start = time.perf_counter()
        failed_step = self.ring.latest().step_count
        # Rung 0: the paper's fail-safe — re-execute at full precision
        # from the pre-step checkpoint, injection suppressed.
        restore_world(world, self.ring.latest())
        retry = self._attempt(full_precision=True, inject=False,
                              primary=False)
        if retry is None:
            self._recovered(0, "recovered", failure, start, failed_step)
            self._observe(reexecuted=True)
            return

        # Rung 1: roll back to the last journal entry; the client is
        # told the step it resumed at and owns the replay.
        if self._last_journal is not None:
            checkpoint, journal_step, state = self._last_journal
            world.bodies.ensure_world_row()
            restore_world(world, checkpoint)
            self.ring = CheckpointRing(2)
            self._recovered(1, "degraded", retry, start, journal_step)
            raise SessionDegraded(
                self.id, journal_step,
                f"rolled back to journaled step {journal_step} "
                f"after: {retry}")

        # Rung 2: quarantine the session instead of poisoning the batch.
        self.state = "quarantined"
        self._recovered(2, "lost", retry, start, failed_step)
        raise SessionLost(self.id, f"ladder exhausted: {retry}")

    def _attempt(self, full_precision: bool, inject: bool,
                 primary: bool) -> Optional[str]:
        """Execute one step; return a failure description or ``None``.

        ``primary`` distinguishes the first attempt (chaos delays apply,
        the soft deadline is enforced) from ladder retries (neither —
        a retry must be able to make progress).
        """
        world = self.world
        if self.injector is not None:
            self.injector.enabled = inject
        start = time.perf_counter()
        if primary and self.config.chaos_slow_every > 0:
            self._chaos_counter += 1
            if self._chaos_counter % self.config.chaos_slow_every == 0:
                time.sleep(self.config.chaos_slow_s)
        try:
            # Injected NaN/Inf propagating through numpy is expected —
            # the guards catch it at the phase boundary.
            with np.errstate(invalid="ignore", over="ignore",
                             divide="ignore"):
                if full_precision:
                    with _full_precision(world.ctx):
                        world.step()
                else:
                    world.step()
        except Exception as exc:  # noqa: BLE001 - a crash is a symptom
            self.guards._report(world.step_count, "step", "exception",
                                f"{type(exc).__name__}: {exc}")
        finally:
            if self.injector is not None:
                self.injector.enabled = True
        elapsed = time.perf_counter() - start
        violations = self.guards.drain()
        if violations:
            head = violations[0].describe()
            extra = len(violations) - 1
            return head if not extra else f"{head} (+{extra} more)"
        deadline = self.config.step_deadline
        if primary and deadline is not None and elapsed > deadline:
            return (f"step deadline exceeded "
                    f"({elapsed:.4f}s > {deadline:.4f}s)")
        return None

    def _observe(self, reexecuted: bool) -> None:
        if self.controller is None:
            return
        diff = self.world.monitor.relative_step_difference()
        self.controller.observe(diff, self.world.step_count - 1,
                                reexecuted)
        if reexecuted:
            self.controller.reexecutions += 1

    def _recovered(self, rung: int, outcome: str, reason: str,
                   start: float, step: int) -> None:
        self.recovery_count += 1
        self._cooldown = max(self._cooldown,
                             LADDER_BACKOFF_STEPS * (rung + 1))
        self._recovery_events.append({
            "session": self.id,
            "rung": rung,
            "outcome": outcome,
            "reason": reason,
            "wall": time.perf_counter() - start,
            "step": step,
        })

    def drain_recovery_events(self) -> List[dict]:
        """Hand recorded ladder transitions to the scheduler (post-batch,
        on the event loop) for tracing/metrics."""
        events, self._recovery_events = self._recovery_events, []
        return events

    # ------------------------------------------------------------------
    # Journal integration
    # ------------------------------------------------------------------
    def capture_for_journal(self) -> Tuple:
        """``(checkpoint, step, state_digest)`` at the current boundary."""
        checkpoint = capture_world(self.world)
        return checkpoint, self.world.step_count, state_digest(self.world)

    def mark_journaled(self, checkpoint, step: int, state: str) -> None:
        """Record the checkpoint that now backs rung-1 rollback/respawn."""
        self._last_journal = (checkpoint, step, state)
        self.steps_since_journal = 0

    @property
    def last_journal(self) -> Optional[Tuple]:
        return self._last_journal

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the current step boundary as wire-ready bytes."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        blob = serialize_checkpoint(capture_world(self.world))
        self._snapshot_seq += 1
        snap_id = f"{self.id}.c{self._snapshot_seq}"
        self._snapshots[snap_id] = blob
        while len(self._snapshots) > MAX_SNAPSHOTS:
            self._snapshots.popitem(last=False)
        return {
            "session": self.id,
            "snapshot": snap_id,
            "step": self.world.step_count,
            "bytes": len(blob),
            "data": blob,
            "precisions": dict(self.world.ctx.phase_precision),
        }

    def restore(self, snapshot_id: Optional[str] = None,
                data: Optional[bytes] = None,
                precisions: Optional[Dict[str, int]] = None) -> dict:
        """Rewind to a held snapshot id, or to caller-supplied bytes."""
        if self.state != "active":
            raise ServiceError("session_closed",
                               f"session {self.id} is {self.state}")
        if data is None:
            if snapshot_id is None:
                raise ServiceError("bad_request",
                                   "restore needs 'snapshot' or 'data'")
            data = self._snapshots.get(snapshot_id)
            if data is None:
                raise ServiceError("unknown_snapshot",
                                   f"no snapshot {snapshot_id!r} held "
                                   f"for session {self.id}")
        try:
            checkpoint = deserialize_checkpoint(data)
        except ValueError as exc:
            raise ServiceError("bad_request", str(exc)) from None
        n_bodies = len(checkpoint.body_state["pos"])
        if n_bodies != self.world.bodies.count + 1 or \
                len(checkpoint.cloth_state) != len(self.world.cloths):
            raise ServiceError(
                "bad_request",
                "snapshot does not match this session's scenario/scale")
        # A freshly built world may not have materialized the virtual
        # world row the capture included; guarantee the capacity first.
        self.world.bodies.ensure_world_row()
        restore_world(self.world, checkpoint)
        if precisions:
            for phase, bits in precisions.items():
                self.world.ctx.set_precision(phase, int(bits))
        return self.describe()

    def close(self, state: str = "closed") -> None:
        self.state = state
        self._snapshots.clear()


class SessionManager:
    """The session table: lifecycle, capacity, journals, recovery."""

    def __init__(self, max_sessions: int = 32, registry=None,
                 observer=None, journal=None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.observer = observer
        #: optional :class:`~repro.serve.resilience.JournalStore`
        self.journal = journal
        self._sessions: Dict[str, Session] = {}
        self._seq = 0
        self.created_total = 0
        self.evicted_total = 0
        self.respawned_total = 0
        self.recovered_total = 0
        self._registry = registry
        self._g_active = (registry.gauge("serve.sessions")
                          if registry is not None else None)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def create(self, config: SessionConfig,
               session_id: Optional[str] = None) -> Session:
        if len(self._sessions) >= self.max_sessions:
            raise ServiceError(
                "server_full",
                f"session table full ({self.max_sessions}); close a "
                f"session or raise --max-sessions")
        if session_id is None:
            self._seq += 1
            session_id = f"s{self._seq}"
        elif session_id in self._sessions:
            # Gateway-assigned ids must never silently replace a live
            # session (a routing bug would otherwise corrupt both).
            raise ServiceError(
                "bad_request", f"session id {session_id!r} already exists")
        session = Session(session_id, config)
        self._sessions[session.id] = session
        self.created_total += 1
        self._track()
        # Seed the rollback/respawn substrate: guarded sessions always
        # get an in-memory journal mark; a store makes it durable.
        if self.journal is not None or session.guards is not None:
            checkpoint, step, state = session.capture_for_journal()
            session.mark_journaled(checkpoint, step, state)
            if self.journal is not None:
                self.journal.open_session(
                    session.id,
                    {"session": session.id, "config": config.to_dict()})
                self.journal.append_snapshot(session.id, checkpoint,
                                             step, state)
        return session

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError("unknown_session",
                               f"no session {session_id!r}")
        return session

    def close(self, session_id: str) -> Session:
        session = self.get(session_id)
        del self._sessions[session_id]
        session.close()
        self._track()
        if self.journal is not None:
            # Clean close: nothing left to recover.
            self.journal.discard(session_id)
        return session

    def evict(self, session_id: str, reason: str) -> None:
        """Forcibly remove a session (budget blown, step crashed).

        The journal file is deliberately retained: an evicted session
        is recoverable after a service restart.
        """
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        session.close(state="evicted")
        self.evicted_total += 1
        self._track()
        if self.observer is not None:
            self.observer.serve_evict(session_id, reason,
                                      session.world.step_count)

    def respawn(self, session_id: str) -> Optional[Session]:
        """Replace a wedged session with a fresh world rewound to its
        last journaled checkpoint.

        The stuck worker thread keeps the *old* world (Python cannot
        interrupt it) and finishes into the void; the table entry now
        points at a verified replacement.  Returns ``None`` when there
        is nothing to respawn from (no journal mark, or the restored
        state fails its digest check).
        """
        old = self._sessions.get(session_id)
        if old is None or old.last_journal is None:
            return None
        checkpoint, step, state = old.last_journal
        try:
            fresh = Session(session_id, old.config)
            fresh.world.bodies.ensure_world_row()
            restore_world(fresh.world, checkpoint)
        except Exception:  # noqa: BLE001 - fall back to eviction
            return None
        if state and state_digest(fresh.world) != state:
            return None
        fresh.mark_journaled(checkpoint, step, state)
        fresh.steps_run = old.steps_run
        old.close(state="evicted")
        self._sessions[session_id] = fresh
        self.respawned_total += 1
        return fresh

    def recover_from(self, store) -> List[dict]:
        """Rebuild every journaled session after a restart.

        Each recovered world is verified against the state digest
        recorded at capture time — recovery is bit-identical or it is
        reported as failed (the journal is left on disk for forensics).
        Returns one summary dict per journal file.
        """
        summary: List[dict] = []
        for rec in recover_sessions(store.directory):
            entry = {"session": rec.session_id, "ok": False,
                     "step": rec.step}
            if len(self._sessions) >= self.max_sessions:
                entry["error"] = "session table full"
                summary.append(entry)
                continue
            try:
                config = SessionConfig.from_dict(rec.config)
                session = Session(rec.session_id, config)
                if rec.checkpoint is not None:
                    session.world.bodies.ensure_world_row()
                    restore_world(session.world, rec.checkpoint)
            except Exception as exc:  # noqa: BLE001 - reported per file
                entry["error"] = f"{type(exc).__name__}: {exc}"
                summary.append(entry)
                continue
            digest = state_digest(session.world)
            if rec.state and digest != rec.state:
                entry["error"] = "state digest mismatch"
                summary.append(entry)
                continue
            checkpoint = rec.checkpoint
            if checkpoint is None:
                checkpoint, _, digest = session.capture_for_journal()
            session.mark_journaled(checkpoint,
                                   session.world.step_count, digest)
            self._sessions[session.id] = session
            match = _SESSION_ID.match(session.id)
            if match:
                self._seq = max(self._seq, int(match.group(1)))
            self.recovered_total += 1
            self._track()
            # Compact the recovered journal to config + the verified
            # snapshot so record counts restart from a known state.
            store.compact(session.id,
                          {"session": session.id,
                           "config": config.to_dict()},
                          checkpoint, session.world.step_count, digest)
            entry.update(ok=True, step=session.world.step_count,
                         digest=digest)
            summary.append(entry)
        return summary

    def close_all(self) -> None:
        """Shut every session down — journals are deliberately kept.

        This is the *service* going away, not clients closing cleanly,
        so the on-disk journals must survive for restart recovery.
        """
        for session_id, session in list(self._sessions.items()):
            del self._sessions[session_id]
            session.close()
        self._track()

    def _track(self) -> None:
        if self._g_active is not None:
            self._g_active.set(len(self._sessions))
