"""``python -m repro serve-bench`` — service throughput/latency harness.

Starts a real :class:`~repro.serve.server.SimulationService` on a
background thread, drives it with N concurrent synthetic clients over
the actual socket protocol, and reports:

* per-request step latency percentiles (p50/p95/max, milliseconds);
* aggregate steps/sec across all sessions (the serving-layer figure of
  merit — batching should keep it close to the single-session rate
  times the worker count for independent worlds);
* the drop count (evictions + client-visible errors), which the
  acceptance gate requires to be zero;
* a snapshot → restore → continue fidelity check: the restored
  trajectory must be bit-identical to an unsnapshotted run of the same
  session config (the digest triple in the payload).

The payload lands next to the perf harness's snapshots as
``BENCH_<stamp>_serve.json`` so the CI bench artifact carries both.

Chaos mode (``repro serve-bench --chaos``) is the service-level fault
drill the resilience layer is gated on: guarded sessions run with the
PR 1 soft-error injector enabled, every client periodically RSTs its
own connection, one session runs deliberately slow against a per-step
deadline, and halfway through the run the whole server is stopped
without warning and restarted from its journals.  The gate is zero
unrecovered session loss — every session is journal-recovered
bit-identically (``state_digest`` match), every client reaches its
target step count through reconnect/replay — plus a bounded p95
recovery time, all recorded in the same ``BENCH_<stamp>_serve.json``
payload.

Sharded mode (``repro serve-bench --shards N``) benchmarks the
gateway + worker-shard topology instead: the same client load runs
against an N-shard gateway (and, unless disabled, a 1-shard gateway
baseline for the scaling ratio), with forced live migrations during
the load — the migrated session's next 20 steps must stay
bit-identical to an unmigrated control — and the usual zero-drop and
snapshot-fidelity gates, all through the gateway socket.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..experiments.runcache import write_json_atomic
from ..obs.tracer import Tracer
from ..perf.bench import bench_stamp
from .client import (
    Client,
    ResilientClient,
    RetryPolicy,
    ServeClientError,
    start_in_thread,
)
from .server import ServiceConfig

__all__ = ["ServeBenchConfig", "run_serve_bench", "render_serve_summary"]


@dataclass(frozen=True)
class ServeBenchConfig:
    clients: int = 8
    steps_per_client: int = 30
    scenario: str = "continuous"
    scale: float = 0.5
    seed: int = 7
    workers: Optional[int] = None
    batch_window: float = 0.002
    #: steps on each side of the fidelity snapshot
    fidelity_steps: int = 10
    output_dir: str = "results"
    # --- fleet-batched stepping (WorldBatch coalescing) ---
    #: coalesce compatible same-tick step requests into one vectorized
    #: WorldBatch pass
    fleet_step: bool = True
    #: also run the load with fleet stepping disabled and report the
    #: batched/unbatched speedup ratio
    fleet_compare: bool = False
    #: minimum batched/unbatched steps/sec ratio when comparing
    #: (0 = report, don't gate — shared CI runners make scaling gates
    #: flaky)
    fleet_min_speedup: float = 0.0
    # --- sharded mode (``--shards N``) ---
    #: 0 = single-process service; N >= 1 = gateway over N shards
    shards: int = 0
    #: also run a 1-shard gateway baseline and report the scaling ratio
    shard_baseline: bool = True
    #: minimum N-shard/1-shard steps/sec ratio (0 = report, don't gate —
    #: shared CI runners make scaling gates flaky)
    shard_min_scaling: float = 0.0
    #: forced live migrations while the load is running
    shard_migrations: int = 1
    # --- chaos mode ---
    chaos: bool = False
    #: seeded soft-error rate for the guarded chaos sessions
    chaos_inject_rate: float = 0.02
    #: each client RSTs its own connection every N steps (0 = never)
    chaos_kill_every: int = 10
    #: journal cadence under chaos (tight, so rollbacks stay cheap)
    chaos_journal_every: int = 8
    #: p95 recovery-time gate (seconds) over all ladder transitions
    chaos_recovery_p95_s: float = 5.0


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact order-statistic percentile of a sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _client_load(handle, config: ServeBenchConfig, barrier,
                 latencies: List[float], errors: List[str]) -> None:
    """One synthetic client: create, step N times, close."""
    try:
        with handle.connect() as client:
            session = client.create(config.scenario, scale=config.scale,
                                    seed=config.seed)
            # A client that died before its create() breaks the barrier
            # for everyone (timeout) instead of deadlocking the bench.
            barrier.wait(timeout=60.0)
            for _ in range(config.steps_per_client):
                start = time.perf_counter()
                client.step(session, 1)
                latencies.append(time.perf_counter() - start)
            client.close_session(session)
    except (ServeClientError, ConnectionError, OSError,
            threading.BrokenBarrierError) as exc:
        errors.append(f"{type(exc).__name__}: {exc}")


def _fidelity_check(handle, config: ServeBenchConfig) -> dict:
    """Snapshot → restore → continue must match the straight-line run."""
    k = config.fidelity_steps
    opts = dict(scale=config.scale, seed=config.seed)
    with handle.connect() as client:
        # Straight line: 2k steps, no snapshot anywhere.
        ref = client.create(config.scenario, **opts)
        digest_ref = client.step(ref, 2 * k)["digest"]
        client.close_session(ref)
        # Snapshotted: k steps, snapshot, k more.
        snapped = client.create(config.scenario, **opts)
        client.step(snapped, k)
        snap = client.snapshot(snapped)
        digest_snapped = client.step(snapped, k)["digest"]
        # Restored into a *fresh* session from the wire payload.
        fresh = client.create(config.scenario, **opts)
        client.restore(fresh, data=snap["data"],
                       precisions=snap["precisions"])
        digest_restored = client.step(fresh, k)["digest"]
        # Rewind the snapshotted session via the server-held id too.
        client.restore(snapped, snapshot=snap["snapshot"])
        digest_rewound = client.step(snapped, k)["digest"]
        client.close_session(snapped)
        client.close_session(fresh)
    return {
        "steps_each_side": k,
        "digest_straight": digest_ref,
        "digest_snapshotted": digest_snapped,
        "digest_restored_fresh": digest_restored,
        "digest_rewound": digest_rewound,
        "bit_identical": (digest_ref == digest_snapped
                          == digest_restored == digest_rewound),
    }


class _CaptureSink:
    """Trace sink that keeps events in memory (shared across the
    pre- and post-restart service instances in chaos mode)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


def _chaos_client(provider, config: ServeBenchConfig, index: int,
                  barrier, latencies: List[float], errors: List[str],
                  finished: List[dict]) -> None:
    """One chaos client: guarded + injected session, periodic RSTs.

    Client 0 additionally runs a deliberately slow world against a
    per-step deadline so the deadline rung of the ladder is exercised.
    """
    policy = RetryPolicy(max_attempts=10, base_delay=0.05,
                         max_delay=1.0, jitter=0.5)
    client = ResilientClient(provider, policy=policy, timeout=30.0,
                             seed=index)
    try:
        # Tuned precisions matter: injected faults ride the reduced-
        # precision op path, so an untuned session would see none.
        options = dict(scale=config.scale, seed=config.seed + index,
                       precision={"narrow": 12, "lcp": 12},
                       guarded=True,
                       inject_rate=config.chaos_inject_rate)
        if index == 0:
            options.update(chaos_slow_every=7, chaos_slow_s=0.03,
                           step_deadline=0.02)
        session = client.create(config.scenario, **options)
        barrier.wait(timeout=60.0)
        for i in range(config.steps_per_client):
            start = time.perf_counter()
            client.step(session, 1)
            latencies.append(time.perf_counter() - start)
            if config.chaos_kill_every and \
                    (i + 1) % config.chaos_kill_every == 0:
                client.kill_connection()
        finished.append({"session": session,
                         "final_step": client.acked_step(session),
                         "retries": client.retries,
                         "reconnects": client.reconnects})
    except Exception as exc:  # noqa: BLE001 - any escape fails the gate
        errors.append(f"client {index}: {type(exc).__name__}: {exc}")
    finally:
        client.close()


def _run_chaos_bench(config: ServeBenchConfig) -> dict:
    """The chaos drill: injected faults, killed connections, slow
    steps, and one abrupt mid-run server restart recovered from the
    journals.  Returns the ``chaos`` payload section plus gate fields.
    """
    journal_dir = tempfile.mkdtemp(prefix="repro-serve-journal-")
    sink = _CaptureSink()
    tracer = Tracer(sink=sink)

    def service_config() -> ServiceConfig:
        return ServiceConfig(
            port=0,
            max_sessions=max(32, config.clients + 4),
            workers=config.workers,
            batch_window=config.batch_window,
            journal_dir=journal_dir,
            journal_every=config.chaos_journal_every,
            allow_chaos=True,
            # Generous absolute budget: the slow session must trip its
            # *deadline* (ladder), not the eviction budget.
            step_budget=20.0,
        )

    holder = {"handle": start_in_thread(service_config(),
                                        observer=tracer)}

    def provider() -> dict:
        return holder["handle"].address()

    latencies: List[float] = []
    errors: List[str] = []
    finished: List[dict] = []
    barrier = threading.Barrier(config.clients)
    threads = [
        threading.Thread(
            target=_chaos_client,
            args=(provider, config, i, barrier, latencies, errors,
                  finished),
            name=f"serve-chaos-client-{i}")
        for i in range(config.clients)
    ]
    load_start = time.perf_counter()
    for thread in threads:
        thread.start()

    # Mid-run crash: once half the total steps have been served, stop
    # the server with no drain and restart it from the journals.
    total_expected = config.clients * config.steps_per_client
    deadline = time.perf_counter() + 120.0
    while len(latencies) < total_expected // 2 and \
            any(t.is_alive() for t in threads) and \
            time.perf_counter() < deadline:
        time.sleep(0.01)
    old = holder["handle"]
    sessions_at_crash = len(old.service.manager)
    old.stop()
    restart_start = time.perf_counter()
    new_handle = start_in_thread(service_config(), observer=tracer)
    restart_wall = time.perf_counter() - restart_start
    holder["handle"] = new_handle
    recovered = list(new_handle.service.recovered)

    for thread in threads:
        thread.join(timeout=180.0)
    load_wall = time.perf_counter() - load_start

    try:
        with new_handle.connect() as client:
            stats = client.stats()
    finally:
        new_handle.stop()

    recover_events = [e for e in sink.events
                      if e.get("kind") == "serve.recover"]
    recovery_walls = sorted(e["wall"] for e in recover_events)
    lost = [e for e in recover_events if e["outcome"] == "lost"]
    recovery_failed = [r for r in recovered if not r.get("ok")]
    p95_recovery_s = _percentile(recovery_walls, 0.95)
    unrecovered = len(lost) + len(recovery_failed) + \
        (config.clients - len(finished))
    chaos = {
        "journal_dir": journal_dir,
        "inject_rate": config.chaos_inject_rate,
        "kill_every": config.chaos_kill_every,
        "journal_every": config.chaos_journal_every,
        "sessions_at_crash": sessions_at_crash,
        "restart_recovered_ok": len(recovered) - len(recovery_failed),
        "restart_recovery_failed": [dict(r) for r in recovery_failed],
        "restart_wall_s": round(restart_wall, 4),
        "recover_events": len(recover_events),
        "recoveries_by_outcome": {
            outcome: sum(1 for e in recover_events
                         if e["outcome"] == outcome)
            for outcome in ("recovered", "degraded", "respawned",
                            "lost")
        },
        "p95_recovery_ms": round(p95_recovery_s * 1e3, 3),
        "p95_recovery_budget_ms": round(
            config.chaos_recovery_p95_s * 1e3, 3),
        "client_retries": sum(f["retries"] for f in finished),
        "client_reconnects": sum(f["reconnects"] for f in finished),
        "clients_finished": len(finished),
        "unrecovered_sessions": unrecovered,
        "steps_served": len(latencies),
        "wall": round(load_wall, 4),
        "errors": errors,
        "stats": {k: stats[k] for k in
                  ("recovered_total", "respawned_total", "recoveries",
                   "journal_writes", "evicted_total", "incidents")},
    }
    chaos["ok"] = (unrecovered == 0 and not errors
                   and len(latencies) == total_expected
                   and p95_recovery_s <= config.chaos_recovery_p95_s
                   and all(f["final_step"] is not None
                           for f in finished))
    return chaos


def _run_gateway_load(config: ServeBenchConfig, shards: int,
                      migrations: int = 0) -> dict:
    """Drive the standard client load against a gateway topology.

    With ``migrations > 0`` a probe session pair (migrated vs control,
    identical config) runs *during* the load: the migrated session must
    stay bit-identical to the control for 20 steps after each move —
    the ISSUE's migrate-under-load gate.
    """
    from .shard import GatewayConfig, start_gateway_in_thread

    gateway_config = GatewayConfig(
        port=0,
        shards=shards,
        max_sessions=max(32, config.clients + 8),
        workers=config.workers,
        batch_window=config.batch_window,
    )
    handle = start_gateway_in_thread(gateway_config)
    try:
        latencies: List[float] = []
        errors: List[str] = []
        barrier = threading.Barrier(config.clients + 1)
        threads = [
            threading.Thread(
                target=_client_load,
                args=(handle, config, barrier, latencies, errors),
                name=f"serve-shard-client-{i}")
            for i in range(config.clients)
        ]
        for thread in threads:
            thread.start()
        migration = None
        with handle.connect() as probe:
            mig = probe.create(config.scenario, scale=config.scale,
                               seed=config.seed + 1000)
            ctrl = probe.create(config.scenario, scale=config.scale,
                                seed=config.seed + 1000)
            barrier.wait(timeout=60.0)
            load_start = time.perf_counter()
            # Every client created its session before the barrier, so
            # this snapshot shows the consistent-hash placement.
            placement = {
                str(entry["shard"]): entry["sessions"]
                for entry in probe.request({"op": "topology"})["shards"]}
            if migrations and shards > 1:
                migration = _migration_probe(
                    handle, probe, mig, ctrl, migrations)
            for thread in threads:
                thread.join(timeout=600.0)
            load_wall = time.perf_counter() - load_start
            probe.close_session(mig)
            probe.close_session(ctrl)
            topology = probe.request({"op": "topology"})
        fidelity = (_fidelity_check(handle, config)
                    if migrations else None)
    finally:
        handle.stop()

    total_steps = len(latencies)
    latencies.sort()
    result = {
        "shards": shards,
        "requests_ok": total_steps,
        "steps_per_sec": (round(total_steps / load_wall, 3)
                          if load_wall > 0 else 0.0),
        "wall": round(load_wall, 4),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "max_ms": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        "sessions_per_shard": placement,
        "migrations_total": topology["migrations"],
        "sessions_lost": topology["sessions_lost"],
        "client_errors": errors,
    }
    if migration is not None:
        result["migration"] = migration
    if fidelity is not None:
        result["fidelity"] = fidelity
    return result


def _migration_probe(handle, probe, mig: str, ctrl: str,
                     migrations: int) -> dict:
    """Live-migrate ``mig`` while the load runs; ``ctrl`` never moves.

    After every move both sessions advance 20 steps and their digests
    must stay identical — migration may not perturb a single bit.
    """
    moves = []
    identical = True
    probe.step(mig, 5)
    probe.step(ctrl, 5)
    for _ in range(migrations):
        moved = handle.run(handle.gateway.migrate(mig))
        digest_mig = probe.step(mig, 20)["digest"]
        digest_ctrl = probe.step(ctrl, 20)["digest"]
        identical = identical and digest_mig == digest_ctrl
        moves.append({
            "source": moved["source"],
            "target": moved["target"],
            "step": moved["step"],
            "wall": moved["wall"],
            "digest_migrated": digest_mig,
            "digest_control": digest_ctrl,
        })
    return {
        "moves": moves,
        "steps_after_each_move": 20,
        "bit_identical": identical,
    }


def _run_shard_bench(config: ServeBenchConfig) -> dict:
    """The ``--shards N`` topology benchmark: N-shard gateway load
    (with forced live migration), optional 1-shard baseline, scaling
    ratio, and the fidelity check through the gateway."""
    sharded = _run_gateway_load(config, config.shards,
                                migrations=config.shard_migrations)
    baseline = None
    scaling = None
    if config.shard_baseline and config.shards > 1:
        baseline = _run_gateway_load(config, 1, migrations=0)
        if baseline["steps_per_sec"]:
            scaling = round(sharded["steps_per_sec"]
                            / baseline["steps_per_sec"], 3)
    migration = sharded.get("migration")
    fidelity = sharded.get("fidelity")
    dropped = sharded["sessions_lost"] + len(sharded["client_errors"])
    expected = config.clients * config.steps_per_client
    ok = (dropped == 0
          and sharded["requests_ok"] == expected
          and (migration is None or migration["bit_identical"])
          and (fidelity is None or fidelity["bit_identical"])
          and (scaling is None
               or config.shard_min_scaling <= 0
               or scaling >= config.shard_min_scaling))
    section = {
        "topology": sharded,
        "baseline_1shard": baseline,
        "scaling_x": scaling,
        "min_scaling_gate": config.shard_min_scaling,
        "dropped": dropped,
        "ok": ok,
    }
    return section


def _run_service_load(config: ServeBenchConfig,
                      fleet_step: bool) -> dict:
    """One full client-load pass against a fresh single-process
    service; returns the ``serve_bench`` payload section."""
    service_config = ServiceConfig(
        port=0,
        max_sessions=max(32, config.clients + 4),
        workers=config.workers,
        batch_window=config.batch_window,
        fleet_step=fleet_step,
    )
    handle = start_in_thread(service_config)
    try:
        latencies: List[float] = []
        errors: List[str] = []
        barrier = threading.Barrier(config.clients)
        threads = [
            threading.Thread(
                target=_client_load,
                args=(handle, config, barrier, latencies, errors),
                name=f"serve-bench-client-{i}")
            for i in range(config.clients)
        ]
        load_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        load_wall = time.perf_counter() - load_start

        fidelity = _fidelity_check(handle, config)
        with handle.connect() as client:
            stats = client.stats()
        workers = handle.service.scheduler.workers
    finally:
        handle.stop()

    total_steps = len(latencies)
    latencies.sort()
    dropped = stats["evicted_total"] + len(errors)
    return {
        "clients": config.clients,
        "steps_per_client": config.steps_per_client,
        "scenario": config.scenario,
        "scale": config.scale,
        "workers": workers,
        "batch_window": config.batch_window,
        "fleet_step": fleet_step,
        "requests_ok": total_steps,
        "steps_per_sec": (round(total_steps / load_wall, 3)
                          if load_wall > 0 else 0.0),
        "wall": round(load_wall, 4),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "max_ms": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        "batches": stats["batches"],
        "avg_batch_size": (round(stats["steps_dispatched"]
                                 / stats["batches"], 3)
                           if stats["batches"] else 0.0),
        "fleet_batches": stats["fleet_batches"],
        "fleet_sessions": stats["fleet_sessions"],
        "sessions_created": stats["created_total"],
        "sessions_dropped": dropped,
        "rejected_total": stats["rejected_total"],
        "client_errors": errors,
        "fidelity": fidelity,
    }


def run_serve_bench(config: Optional[ServeBenchConfig] = None) -> dict:
    """Run the serving benchmark; returns the written payload."""
    config = config or ServeBenchConfig()
    if config.shards:
        section = _run_shard_bench(config)
        stamp = bench_stamp()
        payload = {
            "kind": "repro-serve-bench",
            "stamp": stamp,
            "ok": section["ok"],
            "shards": section,
        }
        out_dir = Path(config.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{stamp}_serve.json"
        write_json_atomic(path, payload)
        payload["path"] = str(path)
        return payload
    serve_bench = _run_service_load(config, config.fleet_step)
    dropped = serve_bench["sessions_dropped"]
    errors = serve_bench["client_errors"]
    fidelity = serve_bench["fidelity"]
    total_steps = serve_bench["requests_ok"]
    fleet = None
    if config.fleet_compare and config.fleet_step:
        unbatched = _run_service_load(config, False)
        speedup = (round(serve_bench["steps_per_sec"]
                         / unbatched["steps_per_sec"], 3)
                   if unbatched["steps_per_sec"] else None)
        fleet = {
            "unbatched": unbatched,
            "speedup_x": speedup,
            "min_speedup_gate": config.fleet_min_speedup,
            "ok": (unbatched["sessions_dropped"] == 0
                   and not unbatched["client_errors"]
                   and unbatched["fidelity"]["bit_identical"]
                   and (config.fleet_min_speedup <= 0
                        or (speedup is not None
                            and speedup >= config.fleet_min_speedup))),
        }
    chaos = _run_chaos_bench(config) if config.chaos else None
    ok = (dropped == 0 and not errors
          and total_steps == config.clients * config.steps_per_client
          and fidelity["bit_identical"]
          and (fleet is None or fleet["ok"])
          and (chaos is None or chaos["ok"]))
    stamp = bench_stamp()
    payload = {
        "kind": "repro-serve-bench",
        "stamp": stamp,
        "ok": ok,
        "serve_bench": serve_bench,
    }
    if fleet is not None:
        payload["fleet"] = fleet
    if chaos is not None:
        payload["chaos"] = chaos
    out_dir = Path(config.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{stamp}_serve.json"
    write_json_atomic(path, payload)
    payload["path"] = str(path)
    return payload


def _render_shard_summary(payload: dict) -> str:
    section = payload["shards"]
    topo = section["topology"]
    lines = [
        f"repro serve-bench — gateway over {topo['shards']} shard(s)",
        f"  throughput: {topo['steps_per_sec']:.1f} steps/s aggregate "
        f"over {topo['wall']:.2f}s",
        f"  step latency: p50 {topo['p50_ms']:.2f} ms, "
        f"p95 {topo['p95_ms']:.2f} ms, max {topo['max_ms']:.2f} ms",
        f"  placement: "
        + ", ".join(f"shard {k}: {v}"
                    for k, v in sorted(topo["sessions_per_shard"]
                                       .items())),
    ]
    baseline = section["baseline_1shard"]
    if baseline is not None:
        gate = section["min_scaling_gate"]
        lines.append(
            f"  scaling: {section['scaling_x']}x over the 1-shard "
            f"gateway ({baseline['steps_per_sec']:.1f} steps/s)"
            + (f", gate >= {gate}x" if gate > 0 else ""))
    migration = topo.get("migration")
    if migration is not None:
        walls = ", ".join(f"{m['source']}->{m['target']} "
                          f"{m['wall'] * 1e3:.0f}ms"
                          for m in migration["moves"])
        lines.append(
            f"  live migration under load: {len(migration['moves'])} "
            f"move(s) [{walls}], next "
            f"{migration['steps_after_each_move']} steps "
            + ("bit-identical to the unmigrated control"
               if migration["bit_identical"] else "DIVERGED"))
    fidelity = topo.get("fidelity")
    if fidelity is not None:
        lines.append("  snapshot fidelity (through gateway): "
                     + ("bit-identical" if fidelity["bit_identical"]
                        else "DIVERGED"))
    lines.append(f"  dropped: {section['dropped']} "
                 f"(sessions lost {topo['sessions_lost']}, "
                 f"client errors {len(topo['client_errors'])})")
    for error in topo["client_errors"]:
        lines.append(f"  client error: {error}")
    lines.append(("OK" if payload["ok"] else "FAILED")
                 + f" — written: {Path(payload['path']).name}")
    return "\n".join(lines)


def render_serve_summary(payload: dict) -> str:
    """Human-readable serve-bench report for the CLI."""
    if "shards" in payload:
        return _render_shard_summary(payload)
    bench = payload["serve_bench"]
    fidelity = bench["fidelity"]
    lines = [
        f"repro serve-bench — {bench['clients']} clients x "
        f"{bench['steps_per_client']} steps on '{bench['scenario']}' "
        f"({bench['workers']} workers)",
        f"  throughput: {bench['steps_per_sec']:.1f} steps/s aggregate "
        f"over {bench['wall']:.2f}s",
        f"  step latency: p50 {bench['p50_ms']:.2f} ms, "
        f"p95 {bench['p95_ms']:.2f} ms, max {bench['max_ms']:.2f} ms",
        f"  batching: {bench['batches']} batches, "
        f"{bench['avg_batch_size']:.2f} steps/batch, "
        f"{bench['fleet_batches']} fleet batches covering "
        f"{bench['fleet_sessions']} sessions",
        f"  sessions: {bench['sessions_created']} created, "
        f"{bench['sessions_dropped']} dropped, "
        f"{bench['rejected_total']} rejected",
        f"  snapshot fidelity: "
        + ("bit-identical" if fidelity["bit_identical"]
           else "DIVERGED"),
    ]
    for error in bench["client_errors"]:
        lines.append(f"  client error: {error}")
    fleet = payload.get("fleet")
    if fleet is not None:
        gate = fleet["min_speedup_gate"]
        lines.append(
            f"  fleet stepping: {fleet['speedup_x']}x over the "
            f"unbatched run "
            f"({fleet['unbatched']['steps_per_sec']:.1f} steps/s)"
            + (f", gate >= {gate}x" if gate > 0 else ""))
    chaos = payload.get("chaos")
    if chaos is not None:
        outcomes = chaos["recoveries_by_outcome"]
        lines += [
            f"  chaos drill: {chaos['steps_served']} steps under "
            f"inject_rate={chaos['inject_rate']}, connection kills "
            f"every {chaos['kill_every']} steps, 1 mid-run restart",
            f"    restart: {chaos['restart_recovered_ok']}/"
            f"{chaos['sessions_at_crash']} sessions recovered from "
            f"journal in {chaos['restart_wall_s']:.2f}s",
            f"    ladder: {chaos['recover_events']} recoveries "
            f"(rung0 {outcomes['recovered']}, rollback "
            f"{outcomes['degraded']}, respawn {outcomes['respawned']}, "
            f"lost {outcomes['lost']}), "
            f"p95 {chaos['p95_recovery_ms']:.1f} ms "
            f"(budget {chaos['p95_recovery_budget_ms']:.0f} ms)",
            f"    clients: {chaos['client_reconnects']} reconnects, "
            f"{chaos['client_retries']} retries, "
            f"{chaos['unrecovered_sessions']} unrecovered sessions",
        ]
        for error in chaos["errors"]:
            lines.append(f"    chaos error: {error}")
    lines.append(("OK" if payload["ok"] else "FAILED")
                 + f" — written: {Path(payload['path']).name}")
    return "\n".join(lines)
