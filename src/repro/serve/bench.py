"""``python -m repro serve-bench`` — service throughput/latency harness.

Starts a real :class:`~repro.serve.server.SimulationService` on a
background thread, drives it with N concurrent synthetic clients over
the actual socket protocol, and reports:

* per-request step latency percentiles (p50/p95/max, milliseconds);
* aggregate steps/sec across all sessions (the serving-layer figure of
  merit — batching should keep it close to the single-session rate
  times the worker count for independent worlds);
* the drop count (evictions + client-visible errors), which the
  acceptance gate requires to be zero;
* a snapshot → restore → continue fidelity check: the restored
  trajectory must be bit-identical to an unsnapshotted run of the same
  session config (the digest triple in the payload).

The payload lands next to the perf harness's snapshots as
``BENCH_<stamp>_serve.json`` so the CI bench artifact carries both.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from ..experiments.runcache import write_json_atomic
from .client import Client, ServeClientError, start_in_thread
from .server import ServiceConfig

__all__ = ["ServeBenchConfig", "run_serve_bench", "render_serve_summary"]


@dataclass(frozen=True)
class ServeBenchConfig:
    clients: int = 8
    steps_per_client: int = 30
    scenario: str = "continuous"
    scale: float = 0.5
    seed: int = 7
    workers: Optional[int] = None
    batch_window: float = 0.002
    #: steps on each side of the fidelity snapshot
    fidelity_steps: int = 10
    output_dir: str = "results"


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact order-statistic percentile of a sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _client_load(handle, config: ServeBenchConfig, barrier,
                 latencies: List[float], errors: List[str]) -> None:
    """One synthetic client: create, step N times, close."""
    try:
        with handle.connect() as client:
            session = client.create(config.scenario, scale=config.scale,
                                    seed=config.seed)
            # A client that died before its create() breaks the barrier
            # for everyone (timeout) instead of deadlocking the bench.
            barrier.wait(timeout=60.0)
            for _ in range(config.steps_per_client):
                start = time.perf_counter()
                client.step(session, 1)
                latencies.append(time.perf_counter() - start)
            client.close_session(session)
    except (ServeClientError, ConnectionError, OSError,
            threading.BrokenBarrierError) as exc:
        errors.append(f"{type(exc).__name__}: {exc}")


def _fidelity_check(handle, config: ServeBenchConfig) -> dict:
    """Snapshot → restore → continue must match the straight-line run."""
    k = config.fidelity_steps
    opts = dict(scale=config.scale, seed=config.seed)
    with handle.connect() as client:
        # Straight line: 2k steps, no snapshot anywhere.
        ref = client.create(config.scenario, **opts)
        digest_ref = client.step(ref, 2 * k)["digest"]
        client.close_session(ref)
        # Snapshotted: k steps, snapshot, k more.
        snapped = client.create(config.scenario, **opts)
        client.step(snapped, k)
        snap = client.snapshot(snapped)
        digest_snapped = client.step(snapped, k)["digest"]
        # Restored into a *fresh* session from the wire payload.
        fresh = client.create(config.scenario, **opts)
        client.restore(fresh, data=snap["data"],
                       precisions=snap["precisions"])
        digest_restored = client.step(fresh, k)["digest"]
        # Rewind the snapshotted session via the server-held id too.
        client.restore(snapped, snapshot=snap["snapshot"])
        digest_rewound = client.step(snapped, k)["digest"]
        client.close_session(snapped)
        client.close_session(fresh)
    return {
        "steps_each_side": k,
        "digest_straight": digest_ref,
        "digest_snapshotted": digest_snapped,
        "digest_restored_fresh": digest_restored,
        "digest_rewound": digest_rewound,
        "bit_identical": (digest_ref == digest_snapped
                          == digest_restored == digest_rewound),
    }


def run_serve_bench(config: Optional[ServeBenchConfig] = None) -> dict:
    """Run the serving benchmark; returns the written payload."""
    config = config or ServeBenchConfig()
    service_config = ServiceConfig(
        port=0,
        max_sessions=max(32, config.clients + 4),
        workers=config.workers,
        batch_window=config.batch_window,
    )
    handle = start_in_thread(service_config)
    try:
        latencies: List[float] = []
        errors: List[str] = []
        barrier = threading.Barrier(config.clients)
        threads = [
            threading.Thread(
                target=_client_load,
                args=(handle, config, barrier, latencies, errors),
                name=f"serve-bench-client-{i}")
            for i in range(config.clients)
        ]
        load_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        load_wall = time.perf_counter() - load_start

        fidelity = _fidelity_check(handle, config)
        with handle.connect() as client:
            stats = client.stats()
        workers = handle.service.scheduler.workers
    finally:
        handle.stop()

    total_steps = len(latencies)
    latencies.sort()
    dropped = stats["evicted_total"] + len(errors)
    serve_bench = {
        "clients": config.clients,
        "steps_per_client": config.steps_per_client,
        "scenario": config.scenario,
        "scale": config.scale,
        "workers": workers,
        "batch_window": config.batch_window,
        "requests_ok": total_steps,
        "steps_per_sec": (round(total_steps / load_wall, 3)
                          if load_wall > 0 else 0.0),
        "wall": round(load_wall, 4),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "max_ms": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        "batches": stats["batches"],
        "avg_batch_size": (round(stats["steps_dispatched"]
                                 / stats["batches"], 3)
                           if stats["batches"] else 0.0),
        "sessions_created": stats["created_total"],
        "sessions_dropped": dropped,
        "rejected_total": stats["rejected_total"],
        "client_errors": errors,
        "fidelity": fidelity,
    }
    ok = (dropped == 0 and not errors
          and total_steps == config.clients * config.steps_per_client
          and fidelity["bit_identical"])
    stamp = time.strftime("%Y%m%d_%H%M%S")
    payload = {
        "kind": "repro-serve-bench",
        "stamp": stamp,
        "ok": ok,
        "serve_bench": serve_bench,
    }
    out_dir = Path(config.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{stamp}_serve.json"
    write_json_atomic(path, payload)
    payload["path"] = str(path)
    return payload


def render_serve_summary(payload: dict) -> str:
    """Human-readable serve-bench report for the CLI."""
    bench = payload["serve_bench"]
    fidelity = bench["fidelity"]
    lines = [
        f"repro serve-bench — {bench['clients']} clients x "
        f"{bench['steps_per_client']} steps on '{bench['scenario']}' "
        f"({bench['workers']} workers)",
        f"  throughput: {bench['steps_per_sec']:.1f} steps/s aggregate "
        f"over {bench['wall']:.2f}s",
        f"  step latency: p50 {bench['p50_ms']:.2f} ms, "
        f"p95 {bench['p95_ms']:.2f} ms, max {bench['max_ms']:.2f} ms",
        f"  batching: {bench['batches']} batches, "
        f"{bench['avg_batch_size']:.2f} steps/batch",
        f"  sessions: {bench['sessions_created']} created, "
        f"{bench['sessions_dropped']} dropped, "
        f"{bench['rejected_total']} rejected",
        f"  snapshot fidelity: "
        + ("bit-identical" if fidelity["bit_identical"]
           else "DIVERGED"),
    ]
    for error in bench["client_errors"]:
        lines.append(f"  client error: {error}")
    lines.append(("OK" if payload["ok"] else "FAILED")
                 + f" — written: {Path(payload['path']).name}")
    return "\n".join(lines)
