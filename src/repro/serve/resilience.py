"""Crash-safe sessions: snapshot journals and recovery plumbing.

The service's sessions are long-lived worlds owned by remote clients —
one bad step, stuck batch, or process crash must not lose them.  This
module supplies the durability half of that contract:

* **Journal framing** — an append-only per-session file of the
  pickle-free :func:`~repro.robustness.serialize_checkpoint` blobs.
  Each record is ``magic | header-length | JSON header | payload`` with
  a sha256 digest of the payload in the header, so a reader verifies
  every blob it trusts and a torn tail (the crash case) is simply
  ignored.  The first record is the session's config, so a journal is
  self-contained: a restarted service rebuilds the world from the
  config record and rewinds it to the last verified snapshot.
* :class:`SessionJournal` — one session's file, with **atomic
  rotation**: when the record count exceeds the cap the journal is
  rewritten (config + latest snapshot) to a temp file and
  ``os.replace``d into place, so readers never observe a half-written
  file.
* :class:`JournalStore` — the directory of journals plus a single
  background writer thread, so journal appends happen off the
  scheduler's hot path and stay ordered per session.
* :func:`recover_sessions` / :class:`RecoveredSession` — scan a journal
  directory after a restart and hand back everything needed to
  reconstruct each session bit-identically (the recovered state digest
  is re-verified against the one recorded at capture time).
* :class:`SessionDegraded` / :class:`SessionLost` — the structured
  outcomes of the server-side recovery ladder
  (:meth:`repro.serve.session.Session.step`): a degraded session was
  rolled back to its last journal entry and carries the step it
  resumed at; a lost session exhausted the ladder and was quarantined.

The journaled snapshot bytes are the same blobs the wire protocol
ships, which is deliberate: they are the live-migration primitive the
gateway/worker-shard architecture (ROADMAP item 1) will move between
processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..robustness.checkpoint import (
    WorldCheckpoint,
    deserialize_checkpoint,
    serialize_checkpoint,
)
from .protocol import ServiceError

__all__ = ["SessionDegraded", "SessionLost", "JournalRecord",
           "SessionJournal", "JournalStore", "RecoveredSession",
           "read_journal", "recover_sessions"]

#: Per-record magic; distinct from the checkpoint codec's ``RPROCKPT``
#: so a journal is never mistaken for a bare snapshot blob.
_RECORD_MAGIC = b"RJN1"
_JOURNAL_SUFFIX = ".journal"


class SessionDegraded(ServiceError):
    """The ladder recovered the session by rolling back to its journal.

    The session is still live — the client should resume from
    ``step`` (carried in the response) and replay what it lost.
    """

    def __init__(self, session_id: str, step: int, detail: str) -> None:
        super().__init__("session_degraded", detail,
                         extra={"session": session_id, "step": step})
        self.session_id = session_id
        self.step = step


class SessionLost(ServiceError):
    """The ladder ran out — the session is quarantined, not silently gone.

    Its journal (if any) is retained for post-mortem or manual restart.
    """

    def __init__(self, session_id: str, detail: str) -> None:
        super().__init__("session_lost", detail,
                         extra={"session": session_id})
        self.session_id = session_id


# ----------------------------------------------------------------------
# Record framing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalRecord:
    """One verified journal record (header fields + payload bytes)."""

    kind: str  # "config" | "snapshot"
    step: int
    state: str  # state_digest at capture ("" for config records)
    payload: bytes


def _encode_record(kind: str, payload: bytes, step: int = 0,
                   state: str = "") -> bytes:
    header = {
        "kind": kind,
        "len": len(payload),
        "sha": hashlib.sha256(payload).hexdigest(),
        "step": step,
        "state": state,
    }
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join((_RECORD_MAGIC, struct.pack("<I", len(head)), head,
                     payload))


def _iter_records(data: bytes):
    """Yield verified records; stop silently at the first torn/bad one.

    A crash mid-append leaves a truncated or digest-mismatched tail —
    that is the expected failure mode, not corruption worth raising
    over, so iteration simply ends at the last intact record.
    """
    offset = 0
    magic_len = len(_RECORD_MAGIC)
    while offset + magic_len + 4 <= len(data):
        if data[offset:offset + magic_len] != _RECORD_MAGIC:
            return
        (head_len,) = struct.unpack_from("<I", data, offset + magic_len)
        head_start = offset + magic_len + 4
        head_end = head_start + head_len
        if head_end > len(data):
            return
        try:
            header = json.loads(data[head_start:head_end])
        except (json.JSONDecodeError, UnicodeDecodeError):
            return
        payload_len = int(header.get("len", -1))
        payload_end = head_end + payload_len
        if payload_len < 0 or payload_end > len(data):
            return
        payload = data[head_end:payload_end]
        if hashlib.sha256(payload).hexdigest() != header.get("sha"):
            return
        yield JournalRecord(
            kind=str(header.get("kind", "")),
            step=int(header.get("step", 0)),
            state=str(header.get("state", "")),
            payload=payload,
        )
        offset = payload_end


def read_journal(path) -> tuple:
    """Read one journal file.

    Returns ``(config_dict, last_snapshot_record, record_count)`` —
    ``config_dict`` is ``None`` for a file with no intact config record
    (unrecoverable), ``last_snapshot_record`` is ``None`` when the
    session crashed before its first snapshot (recover at step 0).
    """
    data = Path(path).read_bytes()
    config: Optional[dict] = None
    snapshot: Optional[JournalRecord] = None
    count = 0
    for record in _iter_records(data):
        count += 1
        if record.kind == "config":
            try:
                config = json.loads(record.payload)
            except json.JSONDecodeError:
                continue
        elif record.kind == "snapshot":
            snapshot = record
    return config, snapshot, count


# ----------------------------------------------------------------------
# Per-session journal file
# ----------------------------------------------------------------------
class SessionJournal:
    """Append-only snapshot journal for one session.

    Appends go through :meth:`append_config` / :meth:`append_snapshot`;
    when the record count passes ``max_records`` the file is compacted
    to ``config + latest snapshot`` via write-temp-then-``os.replace``
    (atomic on POSIX), so recovery never reads a half-rotated file.
    """

    def __init__(self, path, max_records: int = 64,
                 fsync: bool = False) -> None:
        self.path = Path(path)
        self.max_records = max(2, max_records)
        self.fsync = fsync
        self.records = 0
        self._config_blob: Optional[bytes] = None
        self._fh = None

    def _open(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def _write(self, blob: bytes) -> None:
        fh = self._open()
        fh.write(blob)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
        self.records += 1

    def append_config(self, config: dict) -> None:
        payload = json.dumps(config, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        self._config_blob = _encode_record("config", payload)
        self._write(self._config_blob)

    def append_snapshot(self, blob: bytes, step: int, state: str) -> None:
        record = _encode_record("snapshot", blob, step=step, state=state)
        if self.records + 1 > self.max_records and \
                self._config_blob is not None:
            self._rotate(record)
        else:
            self._write(record)

    def _rotate(self, latest: bytes) -> None:
        """Compact to config + latest snapshot, atomically."""
        self.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(self._config_blob)
            fh.write(latest)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.records = 2

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Close and delete (clean session close — nothing to recover)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# The journal directory
# ----------------------------------------------------------------------
class JournalStore:
    """All session journals under one directory, one writer thread.

    Appends are scheduled onto a single background thread: the
    scheduler's tick loop never blocks on the filesystem, and a single
    thread keeps every journal's records ordered.  :meth:`flush` is the
    barrier — it returns once everything scheduled so far is on disk.
    """

    def __init__(self, directory, max_records: int = 64,
                 fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_records = max_records
        self.fsync = fsync
        self._journals: Dict[str, SessionJournal] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-journal")
        self.appends_scheduled = 0
        self.append_errors = 0

    # ------------------------------------------------------------------
    def path_for(self, session_id: str) -> Path:
        return self.directory / f"{session_id}{_JOURNAL_SUFFIX}"

    def _journal(self, session_id: str) -> SessionJournal:
        journal = self._journals.get(session_id)
        if journal is None:
            journal = SessionJournal(self.path_for(session_id),
                                     max_records=self.max_records,
                                     fsync=self.fsync)
            self._journals[session_id] = journal
        return journal

    def _submit(self, fn, *args) -> None:
        def _guarded():
            try:
                fn(*args)
            except OSError:
                # Journal durability is best-effort beyond this counter;
                # the session itself keeps running.
                self.append_errors += 1

        self.appends_scheduled += 1
        self._executor.submit(_guarded)

    # ------------------------------------------------------------------
    def open_session(self, session_id: str, config: dict) -> None:
        """Start a journal with the session's config record."""
        self._submit(self._journal(session_id).append_config, config)

    def append_snapshot(self, session_id: str,
                        checkpoint: WorldCheckpoint, step: int,
                        state: str) -> None:
        """Schedule one snapshot append (serialization happens on the
        writer thread, off the scheduler's hot path)."""

        def _append():
            blob = serialize_checkpoint(checkpoint)
            self._journal(session_id).append_snapshot(blob, step, state)

        self._submit(_append)

    def discard(self, session_id: str) -> None:
        """Clean close: delete the journal (nothing left to recover)."""
        journal = self._journals.pop(session_id, None)
        if journal is not None:
            self._submit(journal.discard)
        else:
            path = self.path_for(session_id)
            self._submit(
                lambda: path.unlink(missing_ok=True))

    def compact(self, session_id: str, config: dict,
                checkpoint: WorldCheckpoint, step: int,
                state: str) -> None:
        """Rewrite a journal from scratch (post-recovery compaction)."""
        journal = self._journal(session_id)

        def _rewrite():
            journal.discard()
            journal.records = 0
            journal.append_config(config)
            journal.append_snapshot(serialize_checkpoint(checkpoint),
                                    step, state)

        self._submit(_rewrite)

    # ------------------------------------------------------------------
    def flush(self, timeout: float = 30.0) -> None:
        """Block until every scheduled append has hit the filesystem."""
        self._executor.submit(lambda: None).result(timeout)

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        for journal in self._journals.values():
            journal.close()
        self._journals.clear()


# ----------------------------------------------------------------------
# Restart recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveredSession:
    """Everything a restarted service needs to rebuild one session."""

    session_id: str
    config: dict
    checkpoint: Optional[WorldCheckpoint]
    step: int
    state: str  # digest recorded at capture; "" when checkpoint is None
    journal_records: int


def recover_sessions(directory) -> List[RecoveredSession]:
    """Scan a journal directory into recoverable session records.

    Files without an intact config record are skipped (renamed to
    ``*.corrupt`` for forensics); a verified config with no snapshot
    yields a step-0 recovery.  Results are ordered by session id so
    recovery is deterministic.
    """
    directory = Path(directory)
    recovered: List[RecoveredSession] = []
    if not directory.is_dir():
        return recovered
    for path in sorted(directory.glob(f"*{_JOURNAL_SUFFIX}")):
        config, snapshot, count = read_journal(path)
        if config is None or not isinstance(config, dict) \
                or "session" not in config:
            path.rename(path.with_suffix(".corrupt"))
            continue
        checkpoint = None
        step, state = 0, ""
        if snapshot is not None:
            try:
                checkpoint = deserialize_checkpoint(snapshot.payload)
                step, state = snapshot.step, snapshot.state
            except ValueError:
                checkpoint = None  # torn blob: fall back to step 0
        recovered.append(RecoveredSession(
            session_id=str(config["session"]),
            config=dict(config.get("config", {})),
            checkpoint=checkpoint,
            step=step,
            state=state,
            journal_records=count,
        ))
    return recovered
