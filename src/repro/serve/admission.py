"""Admission control: bounded queues, backpressure, step budgets.

The service must degrade predictably under load, not buffer without
bound.  Three independent limits, each mapping to one wire error code:

* **Session capacity** (``server_full``) — the session table holds at
  most ``max_sessions`` live worlds; further ``create`` requests are
  rejected outright.
* **Queue bounds** (``busy``) — at most ``max_pending_per_session``
  requests may be queued for one session and at most
  ``max_queue_depth`` across the whole service.  A rejected request was
  never queued: the client owns the retry policy (backpressure, not
  buffering).
* **Step budgets** (``budget_exceeded``) — a step request that exceeds
  its wall budget marks the session evicted; the worker thread finishes
  in the background but the session is gone from the table, so a
  runaway world cannot absorb the worker pool forever.

Rejections are counted per reason in the metrics registry so a
dashboard can tell "clients are too eager" from "worlds are too slow".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .protocol import ServiceError

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    max_sessions: int = 32
    max_pending_per_session: int = 4
    max_queue_depth: int = 256
    #: default per-step-request wall budget (seconds); a session's
    #: ``step_budget`` config overrides it.
    step_budget: float = 30.0
    #: expected scheduler tick period (seconds) — only used to derive
    #: the ``retry_after_ms`` hint on ``busy`` rejections.
    tick_period: float = 0.002


class AdmissionController:
    """Tracks in-flight work and refuses what would exceed the bounds."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 registry=None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._pending: Dict[str, int] = {}
        self._depth = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self._registry = registry

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._depth

    def pending_for(self, session_id: str) -> int:
        return self._pending.get(session_id, 0)

    def budget_for(self, session) -> float:
        """The step budget a session runs under."""
        if session.config.step_budget is not None:
            return session.config.step_budget
        return self.policy.step_budget

    def retry_after_ms(self) -> int:
        """How long a rejected client should wait before retrying.

        One scheduler tick drains at most one request per session, so
        the backlog clears in roughly ``queue_depth`` ticks; the hint
        scales with the depth that caused the rejection, floored at one
        tick.  It is advice, not a reservation — the client's retry
        policy still owns jitter and bounds.
        """
        ticks = max(1, self._depth)
        return max(1, int(ticks * self.policy.tick_period * 1000))

    # ------------------------------------------------------------------
    def admit(self, session_id: str) -> None:
        """Reserve one queue slot for ``session_id`` or raise ``busy``.

        The caller must pair every successful ``admit`` with exactly one
        :meth:`release` (the scheduler does this when the request
        resolves, times out, or fails).  ``busy`` rejections carry a
        ``retry_after_ms`` hint derived from queue depth and tick
        period.
        """
        hint = {"retry_after_ms": self.retry_after_ms()}
        if self._depth >= self.policy.max_queue_depth:
            self._reject("queue_full")
            raise ServiceError(
                "busy", f"service queue full "
                        f"({self.policy.max_queue_depth} requests)",
                extra=hint)
        if self._pending.get(session_id, 0) >= \
                self.policy.max_pending_per_session:
            self._reject("session_backlog")
            raise ServiceError(
                "busy", f"session {session_id} already has "
                        f"{self.policy.max_pending_per_session} requests "
                        f"queued", extra=hint)
        self._pending[session_id] = self._pending.get(session_id, 0) + 1
        self._depth += 1
        self.admitted_total += 1
        if self._registry is not None:
            self._registry.counter("serve.admitted").inc()
            self._registry.gauge("serve.queue_depth").set(self._depth)

    def release(self, session_id: str) -> None:
        count = self._pending.get(session_id, 0)
        if count <= 1:
            self._pending.pop(session_id, None)
        else:
            self._pending[session_id] = count - 1
        self._depth = max(0, self._depth - 1)
        if self._registry is not None:
            self._registry.gauge("serve.queue_depth").set(self._depth)

    def _reject(self, reason: str) -> None:
        self.rejected_total += 1
        if self._registry is not None:
            self._registry.counter("serve.rejected", reason=reason).inc()
