"""Multi-session simulation service (the ROADMAP's serving layer).

The paper's dynamic precision tuning is an online, per-application
control loop; this package runs many such loops concurrently as a
long-lived service.  Each client session owns a
:class:`~repro.physics.World` with its own precision control register
(and optionally its own :class:`~repro.tuning.PrecisionController`);
concurrent step requests coalesce into fixed-tick batches dispatched
across a worker pool; admission control bounds every queue and evicts
sessions that blow their step budget; session snapshots are
:func:`~repro.robustness.serialize_checkpoint` bytes, so a restored
session — in place or into a fresh world — continues bit-identically.

Layers:

* :mod:`~repro.serve.protocol` — the NDJSON wire protocol + error codes;
* :mod:`~repro.serve.session` — ``Session`` / ``SessionManager``
  lifecycle (create / step / snapshot / restore / close);
* :mod:`~repro.serve.admission` — bounded queues, backpressure,
  step budgets;
* :mod:`~repro.serve.scheduler` — the fixed-tick ``BatchScheduler``
  over a thread pool;
* :mod:`~repro.serve.resilience` — per-session snapshot journals,
  digest-verified restart recovery, and the degraded/lost outcomes of
  the server-side recovery ladder;
* :mod:`~repro.serve.server` — the asyncio TCP/UNIX service (graceful
  drain, journal recovery on start, idempotent request replay);
* :mod:`~repro.serve.client` — the thin synchronous ``Client``, the
  retrying/reconnecting ``ResilientClient``, and the in-thread server
  harness;
* :mod:`~repro.serve.bench` — the ``repro serve-bench`` load harness
  and its ``--chaos`` fault drill;
* :mod:`~repro.serve.shard` — the scale-out topology: a client-facing
  gateway routing sessions by consistent hash over N worker-shard
  subprocesses, with live digest-verified session migration and
  journal-based recovery of crashed shards.

Everything is observable: requests, batches, evictions, recoveries,
and drains count through :mod:`repro.obs.metrics`, and with a tracer
attached they stream as schema-v3 ``serve.*`` events on the same JSONL
timeline as the step telemetry.
"""

from .admission import AdmissionController, AdmissionPolicy
from .bench import ServeBenchConfig, render_serve_summary, run_serve_bench
from .client import (
    Client,
    ClientTimeoutError,
    ConnectionLost,
    ResilientClient,
    RetryPolicy,
    ServeClientError,
    ServerHandle,
    start_in_thread,
)
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
)
from .resilience import (
    JournalStore,
    RecoveredSession,
    SessionDegraded,
    SessionJournal,
    SessionLost,
    read_journal,
    recover_sessions,
)
from .scheduler import BatchScheduler
from .server import ServiceConfig, SimulationService, serve_forever
from .session import Session, SessionConfig, SessionManager, state_digest
# Imported last: shard modules import from .server/.client above.
from .shard import (
    GatewayConfig,
    GatewayHandle,
    HashRing,
    ShardGateway,
    ShardProcess,
    ShardSupervisor,
    gateway_forever,
    start_gateway_in_thread,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchScheduler",
    "Client",
    "ClientTimeoutError",
    "ConnectionLost",
    "ERROR_CODES",
    "GatewayConfig",
    "GatewayHandle",
    "HashRing",
    "JournalStore",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecoveredSession",
    "ResilientClient",
    "RetryPolicy",
    "ServeBenchConfig",
    "ServeClientError",
    "ServerHandle",
    "ServiceConfig",
    "ServiceError",
    "Session",
    "SessionConfig",
    "SessionDegraded",
    "SessionJournal",
    "SessionLost",
    "SessionManager",
    "ShardGateway",
    "ShardProcess",
    "ShardSupervisor",
    "SimulationService",
    "decode_frame",
    "encode_frame",
    "gateway_forever",
    "read_journal",
    "recover_sessions",
    "render_serve_summary",
    "run_serve_bench",
    "serve_forever",
    "start_gateway_in_thread",
    "start_in_thread",
    "state_digest",
]
