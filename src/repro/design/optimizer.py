"""The closed-loop search: seeded enumeration + evolutionary refinement.

The loop is deliberately boring — the determinism guarantees do the
work:

1. **Seed** the archive with the paper's fixed design points plus a
   seeded random sample (so every front provably covers Table 8).
2. For each generation, **breed** candidates from the current front by
   seeded mutate/crossover and **evaluate** the unseen ones, fanned
   through a :class:`~repro.perf.sweep.SweepRunner`.
3. **Verify** the resulting front: every member's precision policy is
   re-priced with a coupled cold :func:`minimum_precision` search, the
   front re-pruned, and the loop repeated until every member is
   verified (a corrected margin can demote a member and promote an
   estimated one, which then gets verified too).

Evaluations are pure functions of the design point, the breeding RNG is
keyed on ``(seed, generation)`` and draws only from the sorted archive
— never from evaluation completion order — so the emitted front is
bit-identical across worker counts, evaluation shuffles, and reruns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..perf.sweep import SweepJob, SweepRunner
from .evaluate import DesignEval, evaluate_point, load_surrogate
from .pareto import ARTIFACT_VERSION, ParetoFront
from .space import DesignPoint, DesignQuery, DesignSpace

__all__ = ["SearchStats", "DesignResult", "run_search"]

#: hard stop for the verification fixpoint loop (each round verifies at
#: least one new point, so this is a safety net, not a tuning knob)
MAX_VERIFY_ROUNDS = 64

# Surrogate artifacts load once per worker process, not once per job.
_SURROGATE_CACHE: Dict[str, Tuple[object, str]] = {}


def _surrogate_for(path: Optional[str]):
    if path is None:
        return None, None
    if path not in _SURROGATE_CACHE:
        _SURROGATE_CACHE[path] = load_surrogate(path)
    return _SURROGATE_CACHE[path]


def _eval_job(space: DesignSpace, point: DesignPoint,
              surrogate_path: Optional[str], verify: bool,
              use_cache: bool) -> DesignEval:
    """Module-level so it pickles into SweepRunner worker processes."""
    surrogate, sid = (None, None) if verify else _surrogate_for(
        surrogate_path)
    return evaluate_point(space, point, surrogate=surrogate,
                          surrogate_id=sid, verify=verify,
                          use_cache=use_cache)


@dataclass
class SearchStats:
    """Deterministic search accounting (goes into the artifact)."""

    evaluations: int = 0
    verifications: int = 0
    verify_rounds: int = 0
    generations: int = 0


@dataclass
class DesignResult:
    """One finished search: the verified front plus its provenance."""

    query: DesignQuery
    front: ParetoFront
    #: paper fixed points with their front status
    paper: List[dict] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    archive_size: int = 0

    def payload(self) -> dict:
        """The full artifact — deterministic for a canonical query, so
        the served response and the CLI file compare byte-identical.
        Wall-clock and stamps live outside this payload (CLI stdout,
        ``serve.design`` events, the artifact *filename*)."""
        return {
            "version": ARTIFACT_VERSION,
            "query": self.query.canonical(),
            "query_key": self.query.cache_key(),
            "result": {
                "front": self.front.to_payload(),
                "front_size": len(self.front),
                "paper_points": self.paper,
                "workload_digest": self.query.space.workload_digest(),
                "archive_size": self.archive_size,
                "evaluations": self.stats.evaluations,
                "verifications": self.stats.verifications,
                "verify_rounds": self.stats.verify_rounds,
                "generations": self.stats.generations,
            },
        }

    def write_artifact(self, out_dir) -> str:
        """Write ``DESIGN_<stamp>.json`` (collision-proof stamp)."""
        import os

        from ..perf.bench import bench_stamp

        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"DESIGN_{bench_stamp()}.json")
        ParetoFront.write_artifact(path, self.payload())
        return path


def _front_of(archive: Dict[Tuple, DesignEval]) -> ParetoFront:
    """Non-dominated feasible subset of the archive (verified evals
    override estimated ones per point before this is called)."""
    return ParetoFront(e for _, e in sorted(archive.items())
                       if e.feasible)


def run_search(
    query: DesignQuery,
    surrogate_path: Optional[str] = None,
    workers: Optional[int] = None,
    use_cache: bool = True,
    runner: Optional[SweepRunner] = None,
) -> DesignResult:
    """Execute one canonicalized design query end to end."""
    space = query.space
    runner = runner or SweepRunner(workers)
    stats = SearchStats()
    #: point key -> best-known eval (verified wins over estimated)
    archive: Dict[Tuple, DesignEval] = {}

    def evaluate(points: List[DesignPoint], verify: bool) -> None:
        todo = []
        seen = set()
        for point in points:
            key = point.key()
            if key in seen:
                continue
            if key in archive and (archive[key].verified or not verify):
                continue
            seen.add(key)
            todo.append(point)
        if not todo:
            return
        jobs = [SweepJob(
            key=point.key(), fn=_eval_job,
            args=(space, point, None if verify else surrogate_path,
                  verify, use_cache),
        ) for point in todo]
        for result in runner.run(jobs):
            archive[result.key] = result.value
        if verify:
            stats.verifications += len(todo)
        else:
            stats.evaluations += len(todo)

    # Generation 0: the paper's fixed points + a seeded random sample.
    seeds = space.seed_points()
    rng = random.Random(f"design:{query.seed}:init")
    population = seeds + space.sample(
        rng, max(0, query.population - len(seeds)))
    evaluate(population, verify=False)

    for generation in range(1, query.generations + 1):
        stats.generations = generation
        front = _front_of(archive)
        parents = front.members()
        if not parents:
            # Nothing feasible yet: keep exploring from scratch.
            parents = [archive[k] for k in sorted(archive)]
        rng = random.Random(f"design:{query.seed}:gen{generation}")
        children = []
        for _ in range(query.population):
            a = rng.choice(parents).point
            b = rng.choice(parents).point
            child = space.crossover(a, b, rng)
            if rng.random() < 0.75:
                child = space.mutate(child, rng)
            children.append(child)
        evaluate(children, verify=False)

    # Verification fixpoint: the reported front is measured, not
    # predicted.  Corrected margins can reshape the front, so iterate.
    for _ in range(MAX_VERIFY_ROUNDS):
        front = _front_of(archive)
        unverified = [m.point for m in front.members()
                      if not m.verified]
        if not unverified:
            break
        stats.verify_rounds += 1
        evaluate(unverified, verify=True)
    front = _front_of(archive)

    # Paper-point report: each seed point is on the front or dominated
    # by it (or infeasible under the user's budgets).
    paper = []
    for point in seeds:
        entry = archive[point.key()]
        if not entry.feasible:
            status = "infeasible"
        elif point.key() in front:
            status = "on_front"
        elif front.covers(entry.objectives()):
            status = "dominated"
        else:  # pragma: no cover - impossible by construction
            status = "uncovered"
        paper.append({"point": point.to_dict(), "status": status,
                      "objectives": list(entry.objectives()),
                      "verified": entry.verified})

    return DesignResult(query=query, front=front, paper=paper,
                        stats=stats, archive_size=len(archive))
