"""Pareto-front container: dominance pruning + artifact serialization.

The optimizer reports *fronts*, not single winners — the paper's
area/energy trade has no scalar objective.  Every evaluated design
carries an objective tuple (all minimized: per-core area mm², energy
nJ/op, negated throughput, negated believability margin);
:func:`dominates` implements the usual weak/strict rule and
:class:`ParetoFront` keeps the non-dominated set.

Membership depends only on the *set* of evaluations, never on insertion
order, and members are stored sorted by canonical point key — that is
what makes fronts bit-reproducible across worker counts and evaluation
shuffles (a tested invariant).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments.runcache import write_json_atomic

__all__ = ["dominates", "ParetoFront", "ARTIFACT_VERSION"]

ARTIFACT_VERSION = "repro.design.v1"


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b``.

    All objectives are minimized; ``a`` dominates when it is no worse
    everywhere and strictly better somewhere.  Equal vectors do not
    dominate each other (both stay on the front).
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


class ParetoFront:
    """The non-dominated subset of evaluated designs.

    Entries are anything exposing ``.objectives()`` (a minimized tuple)
    and ``.point.key()`` (canonical identity) —
    :class:`repro.design.evaluate.DesignEval` in practice.  Duplicate
    points replace their previous entry, so re-evaluating a design
    (e.g. after cold-search verification) updates the front in place.
    """

    def __init__(self, entries: Iterable = ()) -> None:
        self._by_key: Dict[Tuple, object] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry) -> bool:
        """Insert ``entry``; returns True if it joins the front."""
        self._by_key[entry.point.key()] = entry
        self._prune()
        return entry.point.key() in self._by_key

    def _prune(self) -> None:
        entries = list(self._by_key.values())
        survivors: Dict[Tuple, object] = {}
        for entry in entries:
            obj = entry.objectives()
            if any(dominates(other.objectives(), obj)
                   for other in entries if other is not entry):
                continue
            survivors[entry.point.key()] = entry
        self._by_key = dict(sorted(survivors.items()))

    def members(self) -> List:
        """Front members sorted by canonical point key."""
        return [self._by_key[k] for k in sorted(self._by_key)]

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: Tuple) -> bool:
        return tuple(key) in self._by_key

    def covers(self, objectives: Sequence[float]) -> bool:
        """True when ``objectives`` is on or dominated by the front —
        i.e. no member is dominated by it and it adds nothing strictly
        better than every member."""
        objectives = tuple(objectives)
        if any(dominates(objectives, m.objectives())
               for m in self.members()):
            return False
        return any(m.objectives() == objectives
                   or dominates(m.objectives(), objectives)
                   for m in self.members())

    def validate(self) -> List[str]:
        """Internal-consistency problems (empty when the front is
        valid): mutually dominating members or unsorted storage."""
        problems = []
        members = self.members()
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if dominates(a.objectives(), b.objectives()):
                    problems.append(
                        f"{a.point.key()} dominates front member "
                        f"{b.point.key()}")
                if dominates(b.objectives(), a.objectives()):
                    problems.append(
                        f"{b.point.key()} dominates front member "
                        f"{a.point.key()}")
        keys = [m.point.key() for m in members]
        if keys != sorted(keys):
            problems.append("front members are not in canonical order")
        return problems

    def to_payload(self) -> List[dict]:
        return [m.to_dict() for m in self.members()]

    @staticmethod
    def write_artifact(path, payload: dict) -> None:
        """Persist a full design artifact (front + query + metadata)
        atomically under the versioned envelope."""
        write_json_atomic(path, {"version": ARTIFACT_VERSION, **payload})
