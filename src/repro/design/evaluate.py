"""Evaluating one design point: area, energy, throughput, margin.

Reuses the paper-reproduction models end to end — census runs feed
:class:`~repro.arch.trace.PhaseWorkload`, the cycle simulator
(:func:`~repro.arch.throughput.evaluate_config`) prices throughput, and
:mod:`repro.arch.energy`/:mod:`repro.arch.area` price the physical
objectives.  The believability axis comes from
:func:`~repro.tuning.believability.minimum_precision`:

* during the search, a candidate policy's per-phase minimum believable
  bits are *estimated* — by the PR 9 surrogate when one is supplied,
  otherwise by a cached uncoupled cold search shared across all
  policies of a scenario;
* front members are then *verified*: each phase is cold-searched with
  the other phase pinned at the policy's bits (the paper's
  combined-tuning methodology), so the reported front is measured, not
  predicted.

Every evaluation is a pure function of (point, workload digest,
surrogate id) and is memoized through the process-safe run cache
(:func:`repro.experiments.runcache.cached_json`) — satellite 1 —
so repeated DSE sweeps and served design queries skip re-simulation.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from ..arch.area import per_core_area_mm2
from ..arch.energy import phase_energy
from ..arch.throughput import evaluate_config
from ..arch.trace import PhaseWorkload
from ..experiments.runcache import cached_json, census_stats
from ..fp.rounding import FULL_PRECISION
from ..tuning.believability import PrecisionQuery, minimum_precision
from .space import PHASES, DesignPoint, DesignSpace

__all__ = ["DesignEval", "evaluate_point", "min_bits_for",
           "surrogate_identity", "load_surrogate"]


def surrogate_identity(path) -> str:
    """Content digest of a surrogate artifact — part of every design
    cache key, so retraining the model invalidates predicted evals."""
    blob = Path(path).read_bytes()
    return hashlib.sha1(blob).hexdigest()[:16]


def load_surrogate(path):
    """Load a PR 9 surrogate artifact, returning (model, identity)."""
    if path is None:
        return None, None
    from ..tuning.surrogate import SurrogateModel

    return SurrogateModel.load(path), surrogate_identity(path)


@dataclass(frozen=True)
class DesignEval:
    """One priced design point.

    ``min_bits`` maps each phase to its minimum believable mantissa
    width (estimated or, when ``verified``, cold-search measured with
    the other phase pinned); ``margin`` is the worst-case headroom the
    policy keeps above those minimums — negative means the policy is
    not believable.  ``objectives`` is the minimized tuple dominance
    works on; ``feasible`` additionally applies the space's budgets.
    """

    point: DesignPoint
    area_mm2: float
    energy_nj: float
    #: mean throughput improvement over the 128-private-FPU baseline
    throughput: float
    min_bits: Tuple[Tuple[str, int], ...]
    margin: int
    believable: bool
    verified: bool
    feasible: bool
    #: per-phase detail {phase: {ipc, throughput, improvement, energy_nj}}
    phases: Tuple[Tuple[str, dict], ...] = ()

    def objectives(self) -> Tuple[float, float, float, float]:
        """Minimized: (area, energy, -throughput, -margin)."""
        return (self.area_mm2, self.energy_nj, -self.throughput,
                -float(self.margin))

    def to_dict(self) -> dict:
        return {
            "point": self.point.to_dict(),
            "area_mm2": self.area_mm2,
            "energy_nj": self.energy_nj,
            "throughput": self.throughput,
            "min_bits": dict(self.min_bits),
            "margin": self.margin,
            "believable": self.believable,
            "verified": self.verified,
            "feasible": self.feasible,
            "objectives": list(self.objectives()),
            "phases": dict(self.phases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping,
                  feasible: Optional[bool] = None) -> "DesignEval":
        return cls(
            point=DesignPoint.from_dict(payload["point"]),
            area_mm2=float(payload["area_mm2"]),
            energy_nj=float(payload["energy_nj"]),
            throughput=float(payload["throughput"]),
            min_bits=tuple(sorted(
                (phase, int(bits))
                for phase, bits in payload["min_bits"].items())),
            margin=int(payload["margin"]),
            believable=bool(payload["believable"]),
            verified=bool(payload["verified"]),
            feasible=bool(payload["feasible"] if feasible is None
                          else feasible),
            phases=tuple(sorted(payload.get("phases", {}).items())),
        )


def min_bits_for(
    space: DesignSpace,
    phase: str,
    policy: Mapping[str, int],
    surrogate=None,
    verify: bool = False,
    use_cache: bool = True,
) -> int:
    """Minimum believable mantissa bits for ``phase`` under ``policy``.

    The query always pins the *other* phases at the policy's bits (the
    combined-tuning coupling).  ``verify=True`` forces a cold
    :func:`minimum_precision` search; otherwise a supplied surrogate
    predicts, and the cold fallback drops the pins so one cached search
    serves every candidate policy of the scenario.
    """
    fixed = {p: int(policy[p]) for p in PHASES if p != phase}
    if surrogate is not None and not verify:
        query = PrecisionQuery(
            scenario=space.scenario, phases=(phase,), mode=space.mode,
            steps=space.steps, scale=space.scale, seed=None,
            fixed=tuple(sorted(fixed.items())))
        return min(max(int(surrogate.predict_query(query)), 1),
                   FULL_PRECISION)
    if not verify:
        fixed = {}  # uncoupled estimate: shared across all policies

    def compute() -> dict:
        return {"bits": minimum_precision(
            space.scenario, phases=(phase,), mode=space.mode,
            steps=space.steps, scale=space.scale,
            fixed_precision=fixed or None)}

    result = cached_json(
        "design_minbits",
        {"scenario": space.scenario, "phase": phase, "mode": space.mode,
         "steps": space.steps, "scale": space.scale,
         "fixed": dict(sorted(fixed.items()))},
        compute, use_cache=use_cache)
    return int(result["bits"])


def _phase_workload(space: DesignSpace, policy: Mapping[str, int],
                    phase: str) -> PhaseWorkload:
    full = census_stats(space.scenario, None, space.mode, space.steps,
                        space.scale)
    reduced = census_stats(space.scenario, dict(policy), space.mode,
                           space.steps, space.scale)
    return PhaseWorkload.from_censuses(phase, int(policy[phase]), full,
                                       reduced)


def evaluate_point(
    space: DesignSpace,
    point: DesignPoint,
    surrogate=None,
    surrogate_id: Optional[str] = None,
    verify: bool = False,
    use_cache: bool = True,
) -> DesignEval:
    """Price one design point (pure function, run-cache memoized).

    The cache key is (point, workload digest, surrogate id, verify) —
    budgets deliberately stay out of it, so tightening a budget reuses
    every prior simulation and only re-derives feasibility.
    """
    design = point.l1_design()
    policy = point.policy

    def compute() -> dict:
        # Believability first: estimated (surrogate / uncoupled cold)
        # during search, coupled cold-searched for verification.
        min_bits = {
            phase: min_bits_for(space, phase, policy,
                                surrogate=surrogate, verify=verify,
                                use_cache=use_cache)
            for phase in PHASES}
        margin = min(int(policy[phase]) - min_bits[phase]
                     for phase in PHASES)

        trace_seed = zlib.crc32(space.scenario.encode())
        phases: Dict[str, dict] = {}
        for phase in PHASES:
            workload = _phase_workload(space, policy, phase)
            config = evaluate_config(
                workload, design, space.fpu_area_mm2,
                point.cores_per_fpu, trace_length=space.trace_length,
                seed=trace_seed)
            energy = phase_energy(workload, design)
            phases[phase] = {
                "ipc": config.per_core_ipc,
                "throughput": config.throughput,
                "improvement": config.improvement,
                "energy_nj": energy.total_nj,
            }
        return {
            "area_mm2": per_core_area_mm2(
                space.fpu_area_mm2, point.cores_per_fpu, design),
            "energy_nj": (sum(p["energy_nj"] for p in phases.values())
                          / len(phases)),
            "throughput": (sum(p["improvement"] for p in phases.values())
                           / len(phases)),
            "min_bits": min_bits,
            "margin": margin,
            "believable": margin >= 0,
            "phases": phases,
        }

    sid = surrogate_id if (surrogate is not None and not verify) else None
    payload = cached_json(
        "design_eval",
        {"point": point.to_dict(),
         "workload": space.workload_digest(),
         "surrogate": sid or "cold",
         "verified": verify},
        compute, use_cache=use_cache)
    believable = bool(payload["believable"])
    feasible = believable and space.budgets.admits(
        float(payload["area_mm2"]), float(payload["energy_nj"]))
    return DesignEval.from_dict(
        {**payload, "point": point.to_dict(), "verified": verify,
         "feasible": feasible})
