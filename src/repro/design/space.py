"""The HFPU design space: typed points, budgets, and seeded variation.

The paper evaluates a handful of fixed design points (Table 8: five L1
alternatives at 4 cores per L2 FPU, each at the Table 1 tuned
precisions).  This module turns those axes into a searchable space:

* **sharing degree** — cores per shared L2 FPU, the Figure 5/7 axis
  (:data:`SHARING_DEGREES`, bounded by the paper's interconnect model);
* **L1 FPU design** — :data:`repro.arch.l1fpu.ALL_DESIGNS` plus the
  mini-FPU variants (:data:`DESIGN_CHOICES`);
* **per-phase precision policy** — the mantissa widths the LCP and
  narrow-phase run at, i.e. the Table 1 knob treated as a design axis.

A :class:`DesignPoint` is one coordinate; a :class:`DesignSpace` binds
the axes to a workload (scenario, steps, scale, mode) and to typed
:class:`Budgets`, and owns the seeded enumeration plus the
mutate/crossover operators the evolutionary loop
(:mod:`repro.design.optimizer`) applies.  Everything is deterministic
for a fixed seed and independent of evaluation order, which is what
makes the emitted Pareto fronts bit-reproducible across worker counts.

Validation failures raise :class:`DesignSpaceError` — the CLI maps it
to exit code 2 and the serve layer to a ``bad_request`` response, so
both boundaries reject nonsense budgets with the same typed message.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..arch import params
from ..arch.l1fpu import ALL_DESIGNS, L1Design, mini_fpu
from ..fp.rounding import FULL_PRECISION, RoundingMode
from ..workloads import SCENARIO_NAMES

__all__ = [
    "DesignSpaceError",
    "DESIGN_CHOICES",
    "SHARING_DEGREES",
    "PHASES",
    "design_by_name",
    "DesignPoint",
    "Budgets",
    "DesignSpace",
    "DesignQuery",
    "paper_points",
]

PHASES = ("lcp", "narrow")

#: L2 sharing degrees the interconnect model covers (Table 7).
SHARING_DEGREES: Tuple[int, ...] = tuple(sorted(params.INTERCONNECT_LATENCY))

#: Every searchable L1 alternative by name: the paper's four
#: (:data:`~repro.arch.l1fpu.ALL_DESIGNS`) plus the mini-FPU sharing
#: variants.
DESIGN_CHOICES: Dict[str, L1Design] = {
    **{design.name: design for design in ALL_DESIGNS},
    **{mini_fpu(n).name: mini_fpu(n) for n in (1, 2, 4)},
}


class DesignSpaceError(ValueError):
    """An invalid design-space input (budget, axis, or query field).

    ``field`` names the offending input so boundaries can report it
    structurally; the message is already user-ready.
    """

    def __init__(self, field: str, detail: str) -> None:
        super().__init__(detail)
        self.field = field
        self.detail = detail


def design_by_name(name: str) -> L1Design:
    """Resolve an L1 design name or raise with the valid list."""
    try:
        return DESIGN_CHOICES[name]
    except KeyError:
        raise DesignSpaceError(
            "designs",
            f"unknown L1 design {name!r}; valid designs: "
            f"{', '.join(sorted(DESIGN_CHOICES))}") from None


def _require_number(field_name: str, value, *, positive: bool = True,
                    integer: bool = False, minimum=None):
    """One typed numeric check shared by every boundary."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DesignSpaceError(
            field_name, f"{field_name} must be a number, got {value!r}")
    if integer:
        if float(value) != int(value):
            raise DesignSpaceError(
                field_name, f"{field_name} must be an integer, "
                            f"got {value!r}")
        value = int(value)
    else:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise DesignSpaceError(
                field_name, f"{field_name} must be finite, got {value!r}")
    if positive and value <= 0:
        raise DesignSpaceError(
            field_name, f"{field_name} must be positive, got {value!r}")
    if minimum is not None and value < minimum:
        raise DesignSpaceError(
            field_name, f"{field_name} must be >= {minimum}, "
                        f"got {value!r}")
    return value


@dataclass(frozen=True)
class DesignPoint:
    """One coordinate of the search space.

    ``design`` is an L1 design name (:data:`DESIGN_CHOICES` key) so
    points serialize to JSON and hash across process boundaries;
    :meth:`l1_design` resolves the model object.
    """

    design: str
    cores_per_fpu: int
    lcp_bits: int
    narrow_bits: int

    def l1_design(self) -> L1Design:
        return design_by_name(self.design)

    @property
    def policy(self) -> Dict[str, int]:
        """The per-phase precision policy as ``FPContext`` expects it."""
        return {"lcp": self.lcp_bits, "narrow": self.narrow_bits}

    def key(self) -> Tuple:
        """Canonical identity (sort key, cache key component)."""
        return (self.design, self.cores_per_fpu, self.lcp_bits,
                self.narrow_bits)

    def to_dict(self) -> dict:
        return {"design": self.design, "cores_per_fpu": self.cores_per_fpu,
                "lcp_bits": self.lcp_bits, "narrow_bits": self.narrow_bits}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DesignPoint":
        return cls(design=str(payload["design"]),
                   cores_per_fpu=int(payload["cores_per_fpu"]),
                   lcp_bits=int(payload["lcp_bits"]),
                   narrow_bits=int(payload["narrow_bits"]))


@dataclass(frozen=True)
class Budgets:
    """User-supplied constraints a feasible design must satisfy.

    ``area_mm2`` caps the *per-core* area (core + router + its share of
    the L2 FPU + L1 overhead — the quantity
    :func:`repro.arch.area.per_core_area_mm2` models); ``energy_nj``
    caps the average per-FP-op energy across the studied phases.
    ``None`` leaves a dimension unconstrained.
    """

    area_mm2: Optional[float] = None
    energy_nj: Optional[float] = None

    def validate(self) -> "Budgets":
        area = (None if self.area_mm2 is None
                else _require_number("budget_area", self.area_mm2))
        energy = (None if self.energy_nj is None
                  else _require_number("budget_energy", self.energy_nj))
        return Budgets(area_mm2=area, energy_nj=energy)

    def admits(self, area_mm2: float, energy_nj: float) -> bool:
        if self.area_mm2 is not None and area_mm2 > self.area_mm2:
            return False
        if self.energy_nj is not None and energy_nj > self.energy_nj:
            return False
        return True

    def to_dict(self) -> dict:
        return {"area_mm2": self.area_mm2, "energy_nj": self.energy_nj}


def paper_points(scenario: str,
                 tuned: Optional[Mapping[str, int]] = None
                 ) -> List[DesignPoint]:
    """The paper's fixed design points, as search-space coordinates.

    Table 8 evaluates five L1 alternatives at 4 cores per L2 FPU; each
    runs at the scenario's Table 1 tuned precisions (the
    :data:`~repro.experiments.table1.PRESET_PRECISIONS` this
    reproduction measured).  These seed every search so the emitted
    front provably covers the paper's own configurations.
    """
    if tuned is None:
        from ..experiments.table1 import PRESET_PRECISIONS

        tuned = PRESET_PRECISIONS.get(scenario, {})
    lcp = int(tuned.get("lcp", FULL_PRECISION))
    narrow = int(tuned.get("narrow", FULL_PRECISION))
    names = ("conjoin", "conv_triv", "reduced_triv", "lookup_triv",
             "mini_fpu_1")
    return [DesignPoint(name, 4, lcp, narrow) for name in names]


@dataclass(frozen=True)
class DesignSpace:
    """The search problem: axes x workload x budgets.

    ``steps``/``scale``/``mode`` parameterize the believability runs
    exactly as :func:`repro.tuning.believability.minimum_precision`
    does; ``fpu_area_mm2`` is the full L2 FPU size the area/energy
    models scale from; ``trace_length`` feeds the cycle simulator.
    """

    scenario: str = "continuous"
    steps: int = 30
    scale: float = 1.0
    mode: str = "jam"
    fpu_area_mm2: float = 1.5
    trace_length: int = 4000
    budgets: Budgets = field(default_factory=Budgets)
    designs: Tuple[str, ...] = tuple(sorted(DESIGN_CHOICES))
    sharing: Tuple[int, ...] = SHARING_DEGREES
    bits_lo: int = 1
    bits_hi: int = FULL_PRECISION

    def validate(self) -> "DesignSpace":
        """Normalize and type-check every field; raises
        :class:`DesignSpaceError` with a user-ready message."""
        if self.scenario not in SCENARIO_NAMES:
            raise DesignSpaceError(
                "scenario",
                f"unknown scenario {self.scenario!r}; valid scenarios: "
                f"{', '.join(SCENARIO_NAMES)}")
        steps = _require_number("steps", self.steps, integer=True,
                                minimum=1)
        scale = _require_number("scale", self.scale)
        try:
            mode = RoundingMode.parse(self.mode).value
        except ValueError as exc:
            raise DesignSpaceError("mode", str(exc)) from None
        fpu_area = _require_number("fpu_area", self.fpu_area_mm2)
        trace_length = _require_number("trace_length", self.trace_length,
                                       integer=True, minimum=100)
        budgets = self.budgets.validate()
        if not self.designs:
            raise DesignSpaceError("designs",
                                   "the design axis cannot be empty")
        designs = tuple(sorted(design_by_name(d).name
                               for d in self.designs))
        if not self.sharing:
            raise DesignSpaceError("sharing",
                                   "the sharing axis cannot be empty")
        sharing = []
        for degree in self.sharing:
            degree = _require_number("sharing", degree, integer=True)
            if degree not in SHARING_DEGREES:
                raise DesignSpaceError(
                    "sharing",
                    f"unsupported sharing degree {degree}; the "
                    f"interconnect model covers "
                    f"{', '.join(map(str, SHARING_DEGREES))}")
            sharing.append(degree)
        bits_lo = _require_number("bits_lo", self.bits_lo, integer=True,
                                  minimum=1)
        bits_hi = _require_number("bits_hi", self.bits_hi, integer=True,
                                  minimum=1)
        if bits_lo > bits_hi or bits_hi > FULL_PRECISION:
            raise DesignSpaceError(
                "bits",
                f"precision bounds must satisfy 1 <= lo <= hi <= "
                f"{FULL_PRECISION}, got [{bits_lo}, {bits_hi}]")
        return replace(
            self, steps=steps, scale=scale, mode=mode,
            fpu_area_mm2=fpu_area, trace_length=trace_length,
            budgets=budgets, designs=designs,
            sharing=tuple(sorted(set(sharing))),
            bits_lo=bits_lo, bits_hi=bits_hi)

    # ------------------------------------------------------------------
    # Deterministic enumeration + variation
    # ------------------------------------------------------------------
    def clamp(self, point: DesignPoint) -> DesignPoint:
        """Snap a point onto the space's axes (post mutate/crossover)."""
        def _bits(bits: int) -> int:
            return max(self.bits_lo, min(self.bits_hi, int(bits)))

        sharing = min(self.sharing, key=lambda s: (abs(s - point.cores_per_fpu), s))
        design = (point.design if point.design in self.designs
                  else self.designs[0])
        return DesignPoint(design, sharing, _bits(point.lcp_bits),
                           _bits(point.narrow_bits))

    def seed_points(self) -> List[DesignPoint]:
        """The paper's fixed points, clamped onto this space's axes."""
        seen = set()
        points = []
        for point in paper_points(self.scenario):
            point = self.clamp(point)
            if point.key() not in seen:
                seen.add(point.key())
                points.append(point)
        return points

    def sample(self, rng: random.Random, count: int) -> List[DesignPoint]:
        """``count`` seeded-random points (duplicates possible)."""
        points = []
        for _ in range(count):
            points.append(DesignPoint(
                design=rng.choice(self.designs),
                cores_per_fpu=rng.choice(self.sharing),
                lcp_bits=rng.randint(self.bits_lo, self.bits_hi),
                narrow_bits=rng.randint(self.bits_lo, self.bits_hi),
            ))
        return points

    def mutate(self, point: DesignPoint,
               rng: random.Random) -> DesignPoint:
        """Perturb one axis (precision moves are small, local steps)."""
        axis = rng.randrange(4)
        if axis == 0:
            design = rng.choice(self.designs)
            point = replace(point, design=design)
        elif axis == 1:
            point = replace(point, cores_per_fpu=rng.choice(self.sharing))
        elif axis == 2:
            point = replace(point,
                            lcp_bits=point.lcp_bits + rng.choice(
                                (-3, -2, -1, 1, 2, 3)))
        else:
            point = replace(point,
                            narrow_bits=point.narrow_bits + rng.choice(
                                (-3, -2, -1, 1, 2, 3)))
        return self.clamp(point)

    def crossover(self, a: DesignPoint, b: DesignPoint,
                  rng: random.Random) -> DesignPoint:
        """Uniform crossover over the three axes."""
        return self.clamp(DesignPoint(
            design=rng.choice((a.design, b.design)),
            cores_per_fpu=rng.choice((a.cores_per_fpu, b.cores_per_fpu)),
            lcp_bits=rng.choice((a.lcp_bits, b.lcp_bits)),
            narrow_bits=rng.choice((a.narrow_bits, b.narrow_bits)),
        ))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def workload_digest(self) -> str:
        """Hash of everything that shapes one point's evaluation
        *other than the point itself* — the trace/believability inputs.
        The run cache keys on (point, this digest, surrogate id)."""
        blob = json.dumps({
            "scenario": self.scenario,
            "steps": self.steps,
            "scale": self.scale,
            "mode": self.mode,
            "fpu_area": self.fpu_area_mm2,
            "trace_length": self.trace_length,
        }, sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "steps": self.steps,
            "scale": self.scale,
            "mode": self.mode,
            "fpu_area": self.fpu_area_mm2,
            "trace_length": self.trace_length,
            "budgets": self.budgets.to_dict(),
            "designs": list(self.designs),
            "sharing": list(self.sharing),
            "bits": [self.bits_lo, self.bits_hi],
        }


@dataclass(frozen=True)
class DesignQuery:
    """One canonicalized design request — the unit the serve layer
    caches on and the CLI artifact records.

    :meth:`from_mapping` is the single validation boundary: the CLI
    builds a mapping from flags, the service takes the request's
    ``query`` object verbatim, and both get identical
    :class:`DesignSpaceError` messages for identical mistakes.
    """

    space: DesignSpace
    generations: int = 3
    population: int = 12
    seed: int = 0
    #: identity of the surrogate the search ran with (``None`` = cold)
    surrogate_id: Optional[str] = None

    _FIELDS = ("scenario", "budget_area", "budget_energy", "generations",
               "population", "seed", "steps", "scale", "mode",
               "fpu_area", "trace_length", "designs", "sharing",
               "surrogate_id")

    @classmethod
    def from_mapping(cls, query: Mapping,
                     surrogate_id: Optional[str] = None) -> "DesignQuery":
        if not isinstance(query, Mapping):
            raise DesignSpaceError(
                "query", "design query must be a JSON object")
        unknown = sorted(set(query) - set(cls._FIELDS))
        if unknown:
            raise DesignSpaceError(
                "query",
                f"unknown design query field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(cls._FIELDS)}")
        budgets = Budgets(area_mm2=query.get("budget_area"),
                          energy_nj=query.get("budget_energy"))
        space = DesignSpace(
            scenario=query.get("scenario", "continuous"),
            steps=query.get("steps", 30),
            scale=query.get("scale", 1.0),
            mode=query.get("mode", "jam"),
            fpu_area_mm2=query.get("fpu_area", 1.5),
            trace_length=query.get("trace_length", 4000),
            budgets=budgets,
            designs=tuple(query.get("designs")
                          or sorted(DESIGN_CHOICES)),
            sharing=tuple(query.get("sharing") or SHARING_DEGREES),
        ).validate()
        generations = _require_number(
            "generations", query.get("generations", 3), integer=True,
            minimum=1)
        population = _require_number(
            "population", query.get("population", 12), integer=True,
            minimum=2)
        seed = _require_number("seed", query.get("seed", 0),
                               integer=True, positive=False)
        sid = query.get("surrogate_id", surrogate_id)
        if sid is not None and not isinstance(sid, str):
            raise DesignSpaceError("surrogate_id",
                                   "surrogate_id must be a string")
        return cls(space=space, generations=generations,
                   population=population, seed=seed, surrogate_id=sid)

    def canonical(self) -> dict:
        """The normalized query — every default filled in, stable key
        order — that two equivalent requests reduce to."""
        space = self.space
        return {
            "scenario": space.scenario,
            "budget_area": space.budgets.area_mm2,
            "budget_energy": space.budgets.energy_nj,
            "generations": self.generations,
            "population": self.population,
            "seed": self.seed,
            "steps": space.steps,
            "scale": space.scale,
            "mode": space.mode,
            "fpu_area": space.fpu_area_mm2,
            "trace_length": space.trace_length,
            "designs": list(space.designs),
            "sharing": list(space.sharing),
            "surrogate_id": self.surrogate_id,
        }

    def cache_key(self) -> str:
        blob = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha1(blob.encode()).hexdigest()[:16]
