"""``repro.design`` — closed-loop HFPU design-space optimizer.

Searches sharing degree × L1 FPU design × per-phase precision policy
under user-supplied area/energy budgets and emits verified Pareto
fronts (area mm², energy nJ/op, throughput improvement, believability
margin).  See :mod:`repro.design.space` for the model,
:mod:`repro.design.optimizer` for the loop, and the ``repro design``
CLI / serve ``design`` op for the boundaries.
"""

from .evaluate import DesignEval, evaluate_point, load_surrogate, \
    surrogate_identity
from .optimizer import DesignResult, SearchStats, run_search
from .pareto import ARTIFACT_VERSION, ParetoFront, dominates
from .space import (
    DESIGN_CHOICES,
    SHARING_DEGREES,
    Budgets,
    DesignPoint,
    DesignQuery,
    DesignSpace,
    DesignSpaceError,
    design_by_name,
    paper_points,
)

__all__ = [
    "ARTIFACT_VERSION",
    "DESIGN_CHOICES",
    "SHARING_DEGREES",
    "Budgets",
    "DesignEval",
    "DesignPoint",
    "DesignQuery",
    "DesignResult",
    "DesignSpace",
    "DesignSpaceError",
    "ParetoFront",
    "SearchStats",
    "design_by_name",
    "dominates",
    "evaluate_point",
    "load_surrogate",
    "paper_points",
    "run_search",
    "surrogate_identity",
]
