"""Shared world-state checkpointing (the recovery substrate).

The paper's fail-safe ("functional correctness is maintained by
re-executing the previous simulation step at full precision") needs a
faithful snapshot of everything one simulation step mutates.  This module
is the single source of truth for that capture: rigid-body state, cloth
particles, the step counter, the energy monitor's record stream and
injection ledger, the penetration series, the warm-start contact cache,
and the quarantine set.  Both the dynamic precision controller's one-shot
re-execution and the robustness engine's multi-step rollback ladder
restore through here, and the serving layer's session snapshots travel
as :func:`serialize_checkpoint` bytes over the wire.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["WorldCheckpoint", "CheckpointRing", "capture_world",
           "restore_world", "serialize_checkpoint",
           "deserialize_checkpoint"]

#: Body arrays a step mutates (derived arrays are refreshed every step).
_BODY_ARRAYS = ("pos", "quat", "linvel", "angvel", "asleep",
                "low_motion_steps")


@dataclass
class WorldCheckpoint:
    """Everything needed to rewind a world to the start of a step."""

    step_count: int
    body_state: Dict[str, np.ndarray]
    cloth_state: List[Tuple[np.ndarray, np.ndarray]]
    monitor_records: int
    injected_total: float
    penetration_len: int
    last_contact_count: int
    contact_cache: Dict
    quarantined: frozenset


def capture_world(world) -> WorldCheckpoint:
    """Snapshot ``world`` (call at a step boundary)."""
    bodies = world.bodies
    bodies.ensure_world_row()
    n = bodies.count + 1  # include the virtual world row
    body_state = {
        name: getattr(bodies, name)[:n].copy() for name in _BODY_ARRAYS
    }
    cloth_state = [
        (cloth.pos.copy(), cloth.vel.copy()) for cloth in world.cloths
    ]
    # The cache's per-contact entries are immutable once stored, so a
    # per-key shallow copy of the lists is a faithful snapshot.
    cache = {key: list(entries)
             for key, entries in world.contact_cache._store.items()}
    return WorldCheckpoint(
        step_count=world.step_count,
        body_state=body_state,
        cloth_state=cloth_state,
        monitor_records=len(world.monitor.records),
        injected_total=world.monitor.injected_total,
        penetration_len=len(world.penetration_series),
        last_contact_count=world.last_contact_count,
        contact_cache=cache,
        quarantined=frozenset(getattr(world, "quarantined", ())),
    )


def restore_world(world, checkpoint: WorldCheckpoint) -> None:
    """Rewind ``world`` to ``checkpoint``, discarding later records."""
    bodies = world.bodies
    n = len(checkpoint.body_state["pos"])
    for name, data in checkpoint.body_state.items():
        getattr(bodies, name)[:n] = data
    for cloth, (pos, vel) in zip(world.cloths, checkpoint.cloth_state):
        cloth.pos = pos.copy()
        cloth.vel = vel.copy()
    world.step_count = checkpoint.step_count
    # Truncate (not pop): a rollback may discard several steps at once.
    world.monitor.records.truncate(checkpoint.monitor_records)
    world.monitor._injected_total = checkpoint.injected_total
    world.penetration_series.truncate(checkpoint.penetration_len)
    world.last_contact_count = checkpoint.last_contact_count
    world.contact_cache._store = {
        key: list(entries)
        for key, entries in checkpoint.contact_cache.items()
    }
    if hasattr(world, "quarantined"):
        world.quarantined = set(checkpoint.quarantined)


class CheckpointRing:
    """Bounded ring of per-step checkpoints for N-step rollback."""

    def __init__(self, depth: int = 8) -> None:
        if depth < 1:
            raise ValueError("checkpoint depth must be >= 1")
        self.depth = depth
        self._ring: Deque[WorldCheckpoint] = deque(maxlen=depth)

    def __len__(self) -> int:
        return len(self._ring)

    def push(self, checkpoint: WorldCheckpoint) -> None:
        self._ring.append(checkpoint)

    def latest(self) -> Optional[WorldCheckpoint]:
        return self._ring[-1] if self._ring else None

    def rollback_target(self, steps_back: int) -> Optional[WorldCheckpoint]:
        """The checkpoint up to ``steps_back`` steps before the latest.

        ``steps_back=0`` is the latest checkpoint; a request deeper than
        the ring clamps to the oldest retained checkpoint (the best the
        ladder can do once history has been evicted).  An empty ring has
        no target; a negative depth is a caller bug, not a clamp case.
        """
        if steps_back < 0:
            raise ValueError(f"steps_back must be >= 0, got {steps_back}")
        if not self._ring:
            return None
        index = max(0, len(self._ring) - 1 - steps_back)
        return self._ring[index]

    def truncate_after(self, step_count: int) -> None:
        """Drop checkpoints newer than ``step_count`` (stale after rewind).

        A checkpoint captured *at* ``step_count`` is kept: it snapshots
        the state at the start of that step, which is exactly where a
        rewind to ``step_count`` lands.
        """
        while self._ring and self._ring[-1].step_count > step_count:
            self._ring.pop()


# ----------------------------------------------------------------------
# Byte serialization (session snapshots over the wire)
# ----------------------------------------------------------------------
#: Frame layout: magic, little-endian uint32 header length, JSON header,
#: then the referenced arrays' raw bytes concatenated in header order.
#: Codec v2 flattens the warm-start contact cache into four stacked
#: arrays (keys, entry counts per key, positions, impulses) so encode
#: cost — and the journal's sha256 over the payload — stays
#: array-at-a-time instead of growing a tiny array + JSON floats per
#: contact.  v1 frames (one ref'd array per cache entry) still decode.
_CODEC_MAGIC = b"RPROCKPT"
_CODEC_VERSION = 2


def _flatten_contact_cache(cache: Dict, ref) -> dict:
    """Stack the cache's per-entry data into whole arrays (dict order)."""
    keys: List[Tuple] = []
    counts: List[int] = []
    positions: List[np.ndarray] = []
    impulses: List[Tuple] = []
    for key, entries in cache.items():
        keys.append(key)
        counts.append(len(entries))
        for pos, imp in entries:
            positions.append(pos)
            impulses.append(imp)
    pos_arr = (np.stack(positions) if positions
               else np.empty((0, 3), dtype=np.float32))
    return {
        "keys": ref(np.asarray(keys, dtype=np.int64).reshape(-1, 2)),
        "counts": ref(np.asarray(counts, dtype=np.int64)),
        "pos": ref(pos_arr),
        "impulses": ref(np.asarray(impulses,
                                   dtype=np.float64).reshape(-1, 3)),
    }


def _rebuild_contact_cache(spec: dict, take) -> Dict:
    """Inverse of :func:`_flatten_contact_cache` (same dict order)."""
    keys = take(spec["keys"])
    counts = take(spec["counts"])
    pos = take(spec["pos"])
    impulses = take(spec["impulses"])
    cache: Dict = {}
    base = 0
    for k in range(len(keys)):
        entries = [(pos[base + i].copy(),
                    tuple(impulses[base + i].tolist()))
                   for i in range(int(counts[k]))]
        cache[tuple(int(v) for v in keys[k])] = entries
        base += int(counts[k])
    return cache


def serialize_checkpoint(checkpoint: WorldCheckpoint) -> bytes:
    """Encode a checkpoint as self-contained bytes.

    The format is an explicit JSON-header-plus-raw-array-blobs frame
    (no pickle: snapshots cross process and trust boundaries in
    ``repro.serve``).  :func:`deserialize_checkpoint` round-trips it
    bit-exactly.
    """
    arrays: List[np.ndarray] = []

    def ref(arr: np.ndarray) -> dict:
        arr = np.ascontiguousarray(arr)
        arrays.append(arr)
        return {"dtype": arr.dtype.str, "shape": list(arr.shape)}

    header = {
        "codec": _CODEC_VERSION,
        "step_count": checkpoint.step_count,
        "body_state": {name: ref(data)
                       for name, data in checkpoint.body_state.items()},
        "cloth_state": [[ref(pos), ref(vel)]
                        for pos, vel in checkpoint.cloth_state],
        "monitor_records": checkpoint.monitor_records,
        "injected_total": checkpoint.injected_total,
        "penetration_len": checkpoint.penetration_len,
        "last_contact_count": checkpoint.last_contact_count,
        "contact_cache": _flatten_contact_cache(
            checkpoint.contact_cache, ref),
        "quarantined": sorted(int(b) for b in checkpoint.quarantined),
    }
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_CODEC_MAGIC, struct.pack("<I", len(head)), head]
    parts.extend(arr.tobytes() for arr in arrays)
    return b"".join(parts)


def deserialize_checkpoint(data: bytes) -> WorldCheckpoint:
    """Decode :func:`serialize_checkpoint` bytes back to a checkpoint."""
    if data[:len(_CODEC_MAGIC)] != _CODEC_MAGIC:
        raise ValueError("not a serialized checkpoint (bad magic)")
    offset = len(_CODEC_MAGIC)
    (head_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    try:
        header = json.loads(data[offset:offset + head_len])
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt checkpoint header: {exc}") from None
    offset += head_len
    codec = header.get("codec")
    if codec not in (1, _CODEC_VERSION):
        raise ValueError(f"unsupported checkpoint codec: {codec!r}")

    cursor = offset

    def take(spec: dict) -> np.ndarray:
        nonlocal cursor
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        blob = data[cursor:cursor + nbytes]
        if len(blob) != nbytes:
            raise ValueError("truncated checkpoint payload")
        cursor += nbytes
        # .copy() detaches from the (read-only) buffer so restore_world
        # can hand the arrays to a live world.
        return np.frombuffer(blob, dtype=dtype).reshape(shape).copy()

    body_state = {name: take(spec)
                  for name, spec in header["body_state"].items()}
    cloth_state = [(take(pos), take(vel))
                   for pos, vel in header["cloth_state"]]
    if codec == 1:
        contact_cache = {
            tuple(key): [(take(pos), tuple(impulses))
                         for pos, impulses in entries]
            for key, entries in header["contact_cache"]}
    else:
        contact_cache = _rebuild_contact_cache(
            header["contact_cache"], take)
    return WorldCheckpoint(
        step_count=int(header["step_count"]),
        body_state=body_state,
        cloth_state=cloth_state,
        monitor_records=int(header["monitor_records"]),
        injected_total=float(header["injected_total"]),
        penetration_len=int(header["penetration_len"]),
        last_contact_count=int(header["last_contact_count"]),
        contact_cache=contact_cache,
        quarantined=frozenset(header["quarantined"]),
    )
