"""Incident recording and the health report.

Every detection and every recovery action is recorded as a structured,
deterministic :class:`Incident` — no wall-clock timestamps, so two
campaigns with the same seed serialize to identical logs (the
reproducibility contract of the fault-injection harness).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Incident", "IncidentLog", "HealthReport"]

#: Escalation-ladder rung names, in order.
RUNG_NAMES = ("retry-full-precision", "rollback-replay",
              "quarantine-island", "abort")


@dataclass(frozen=True)
class Incident:
    """One detection or recovery event."""

    step: int
    kind: str  # "detection" | "recovery" | "escalation" | "abort"
    phase: str
    action: str  # ladder rung name, "" for detections
    rung: int  # -1 for detections
    outcome: str  # "detected" | "recovered" | "failed" | "aborted"
    detail: str
    islands: Tuple[int, ...] = ()

    def describe(self) -> str:
        parts = [f"step {self.step:4d}", self.kind]
        if self.action:
            parts.append(self.action)
        parts.append(self.outcome)
        if self.islands:
            parts.append(f"islands={list(self.islands)}")
        parts.append(self.detail)
        return " | ".join(parts)


class IncidentLog:
    """Append-only, deterministic event stream of one campaign."""

    def __init__(self) -> None:
        self.records: List[Incident] = []
        #: optional :class:`~repro.obs.Tracer`; every recorded incident
        #: is streamed as a detection/recovery trace event as well.
        self.observer = None

    def __len__(self) -> int:
        return len(self.records)

    def record(self, incident: Incident) -> Incident:
        self.records.append(incident)
        if self.observer is not None:
            self.observer.incident(incident)
        return incident

    def detection(self, step: int, phase: str, detail: str,
                  islands: Tuple[int, ...] = ()) -> Incident:
        return self.record(Incident(step, "detection", phase, "", -1,
                                    "detected", detail, islands))

    def recovery(self, step: int, rung: int, outcome: str, detail: str,
                 islands: Tuple[int, ...] = ()) -> Incident:
        kind = "abort" if outcome == "aborted" else "recovery"
        return self.record(Incident(step, kind, "", RUNG_NAMES[rung],
                                    rung, outcome, detail, islands))

    # ------------------------------------------------------------------
    def count(self, kind: Optional[str] = None,
              outcome: Optional[str] = None) -> int:
        return sum(
            1 for r in self.records
            if (kind is None or r.kind == kind)
            and (outcome is None or r.outcome == outcome)
        )

    def lines(self) -> List[str]:
        """Deterministic serialization (the reproducibility surface)."""
        return [r.describe() for r in self.records]


@dataclass
class HealthReport:
    """Campaign summary for the ``health`` CLI command."""

    scenario: str
    steps: int
    bodies: int
    faults_injected: int
    detections: int
    recoveries: int
    recoveries_by_rung: Counter
    detections_by_guard: Counter
    quarantined_bodies: int
    aborted: bool
    final_state_finite: bool
    log: IncidentLog

    @property
    def status(self) -> str:
        if self.aborted:
            return "ABORTED"
        if not self.final_state_finite:
            return "CORRUPT"
        if self.quarantined_bodies:
            return "DEGRADED"
        return "HEALTHY"

    def render(self, max_log_lines: Optional[int] = None) -> str:
        out = [
            f"Health report: {self.scenario} "
            f"({self.steps} steps, {self.bodies} bodies)",
            f"  status:            {self.status}",
            f"  faults injected:   {self.faults_injected}",
            f"  detections:        {self.detections}",
            f"  recoveries:        {self.recoveries}",
        ]
        for rung, name in enumerate(RUNG_NAMES[:-1]):
            count = self.recoveries_by_rung.get(rung, 0)
            if count:
                out.append(f"    {name:22s} {count}")
        if self.detections_by_guard:
            out.append("  detections by guard:")
            for guard, count in sorted(self.detections_by_guard.items()):
                out.append(f"    {guard:22s} {count}")
        out.append(f"  quarantined bodies: {self.quarantined_bodies}")
        out.append("  final state: "
                   + ("finite" if self.final_state_finite else "NON-FINITE"))
        if len(self.log):
            out.append("  incident log:")
            lines = self.log.lines()
            # Truncation keeps the *tail*: the most recent incidents are
            # what an operator inspecting a sick run needs, and the old
            # head-truncation hid exactly those.
            if max_log_lines is not None and len(lines) > max_log_lines:
                omitted = len(lines) - max_log_lines
                out.append(f"    ... {omitted} earlier incident(s) "
                           f"omitted")
                lines = lines[len(lines) - max_log_lines:]
            out.extend(f"    {line}" for line in lines)
        return "\n".join(out)
