"""Fault injection and guarded recovery for the precision-reduced pipeline.

The paper keeps one fail-safe — re-execute the previous step at full
precision.  This package grows that into a resilience layer:

- :mod:`~repro.robustness.checkpoint` — the shared world snapshot/restore
  utility (single source of truth for rollback state);
- :mod:`~repro.robustness.injector` — deterministic, seedable soft-error
  injection targeting the reduced mantissa datapath;
- :mod:`~repro.robustness.guards` — phase-boundary invariant checks with
  structured violation records;
- :mod:`~repro.robustness.recovery` — the checkpointed escalation ladder
  (retry → rollback → quarantine → abort) and campaign harness;
- :mod:`~repro.robustness.incidents` — deterministic incident log and the
  ``python -m repro health`` report.
"""

from .checkpoint import (
    CheckpointRing,
    WorldCheckpoint,
    capture_world,
    deserialize_checkpoint,
    restore_world,
    serialize_checkpoint,
)
from .guards import GuardConfig, PhaseGuards, Violation
from .incidents import HealthReport, Incident, IncidentLog
from .injector import FaultEvent, FaultInjector
from .recovery import (
    GuardedSimulation,
    RecoveryPolicy,
    SimulationAborted,
    run_campaign,
)

__all__ = [
    "CheckpointRing",
    "WorldCheckpoint",
    "capture_world",
    "restore_world",
    "serialize_checkpoint",
    "deserialize_checkpoint",
    "GuardConfig",
    "PhaseGuards",
    "Violation",
    "HealthReport",
    "Incident",
    "IncidentLog",
    "FaultEvent",
    "FaultInjector",
    "GuardedSimulation",
    "RecoveryPolicy",
    "SimulationAborted",
    "run_campaign",
]
