"""Guarded execution with a checkpointed escalation ladder.

The paper's single fail-safe — re-execute the previous step at full
precision — is rung 0 of a four-rung ladder:

0. **retry-full-precision** — rewind one step, re-execute with the
   control registers forced to full precision and injection suppressed
   (the paper's Section 4.2 fail-safe, now with a configurable retry
   budget);
1. **rollback-replay** — rewind up to N checkpointed steps and replay
   them all at full precision (corruption that latched several steps ago,
   e.g. a poisoned warm-start cache);
2. **quarantine-island** — put the offending simulation island to sleep
   permanently and keep the rest of the world running (graceful
   degradation: a broken pile of crates must not take down the ragdoll
   next to it);
3. **abort** — controlled shutdown with a post-mortem report.

Every successful recovery backs the pipeline off: the next
``backoff_steps × (rung + 1)`` steps run at full precision with injection
suspended before the precision controller is allowed to throttle back
down.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..fp.rounding import FULL_PRECISION
from ..physics.island import islands_of
from .checkpoint import CheckpointRing, capture_world, restore_world
from .guards import GuardConfig, PhaseGuards, Violation
from .incidents import HealthReport, IncidentLog
from .injector import FaultInjector

__all__ = ["RecoveryPolicy", "SimulationAborted", "GuardedSimulation",
           "run_campaign", "campaign_summary"]


@dataclass
class RecoveryPolicy:
    """Escalation-ladder tunables."""

    #: rung-0 re-execution attempts before escalating
    max_retries: int = 2
    #: how many checkpointed steps rung 1 rewinds (0 disables rollback)
    rollback_depth: int = 3
    #: checkpoint ring size (must cover ``rollback_depth``)
    checkpoint_depth: int = 8
    #: full-precision cool-down steps after a rung-r recovery: r+1 times this
    backoff_steps: int = 5
    #: allow rung 2 (island quarantine)
    quarantine_enabled: bool = True


class SimulationAborted(RuntimeError):
    """Rung 3: the ladder ran out — controlled abort with a post-mortem."""

    def __init__(self, message: str, log: IncidentLog,
                 violations: Sequence[Violation]) -> None:
        super().__init__(message)
        self.log = log
        self.violations = list(violations)

    def post_mortem(self) -> str:
        lines = [f"Simulation aborted: {self}", "Unrecovered violations:"]
        lines += [f"  {v.describe()}" for v in self.violations]
        lines.append("Incident history:")
        lines += [f"  {line}" for line in self.log.lines()]
        return "\n".join(lines)


@contextmanager
def _full_precision(ctx):
    """Temporarily force every tuned phase to full mantissa width."""
    saved = dict(ctx.phase_precision)
    for phase in saved:
        ctx.phase_precision[phase] = FULL_PRECISION
    try:
        yield
    finally:
        ctx.phase_precision.clear()
        ctx.phase_precision.update(saved)


def _summary(violations: Sequence[Violation]) -> str:
    if not violations:
        return "clean"
    head = violations[0].describe()
    extra = len(violations) - 1
    return head if not extra else f"{head} (+{extra} more)"


class GuardedSimulation:
    """Couples a world to guards, a fault injector, and the ladder.

    Parameters
    ----------
    world:
        The :class:`~repro.physics.World` to drive (its ``guards`` hook
        and its context's ``injector`` hook are installed here).
    guards:
        Phase-boundary invariants; a default :class:`PhaseGuards` is
        created when omitted.
    injector:
        Optional :class:`FaultInjector` for soft-error campaigns.
    controller:
        Optional :class:`~repro.tuning.PrecisionController`; fed the
        energy signal of every *accepted* step so dynamic precision
        adaptation keeps working under guarded execution.
    policy:
        Escalation-ladder tunables.
    observer:
        Optional :class:`~repro.obs.Tracer`; installed on the world,
        the controller, and the incident log so step telemetry,
        controller actions, and every recovery-ladder rung transition
        land on one timeline.
    """

    def __init__(
        self,
        world,
        guards: Optional[PhaseGuards] = None,
        injector: Optional[FaultInjector] = None,
        controller=None,
        policy: Optional[RecoveryPolicy] = None,
        log: Optional[IncidentLog] = None,
        observer=None,
    ) -> None:
        self.world = world
        self.guards = guards or PhaseGuards()
        self.injector = injector
        self.controller = controller
        self.policy = policy or RecoveryPolicy()
        self.log = log or IncidentLog()
        self.observer = observer
        depth = max(self.policy.checkpoint_depth,
                    self.policy.rollback_depth + 1)
        self.ring = CheckpointRing(depth)

        world.guards = self.guards
        if injector is not None:
            world.ctx.injector = injector
        if observer is not None:
            world.observer = observer
            self.log.observer = observer
            if controller is not None:
                controller.observer = observer

        self.detections = 0
        self.recoveries = 0
        self.detections_by_guard: Counter = Counter()
        self.step_attempts = 0
        self.aborted = False
        self._cooldown = 0

    # ------------------------------------------------------------------
    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def step(self) -> None:
        """One guarded timestep: checkpoint, attempt, recover if needed."""
        world = self.world
        self.ring.push(capture_world(world))
        if self.injector is not None:
            self.injector.step = world.step_count
        in_cooldown = self._cooldown > 0
        violations = self._attempt(inject=not in_cooldown,
                                   full_precision=in_cooldown)
        if violations:
            labels = world.island_labels
            for v in violations:
                self.detections += 1
                self.detections_by_guard[v.guard] += 1
                self.log.detection(v.step, v.phase, v.describe(),
                                   tuple(islands_of(labels, v.bodies)))
            self._recover(violations)
        else:
            self._observe(reexecuted=False)
        if self._cooldown > 0:
            self._cooldown -= 1

    # ------------------------------------------------------------------
    def _attempt(self, inject: bool, full_precision: bool) -> List[Violation]:
        """Execute one step under the given settings; return violations."""
        world = self.world
        self.step_attempts += 1
        if self.injector is not None:
            self.injector.enabled = inject
        try:
            # Injected NaN/Inf propagating through numpy is expected here;
            # the guards catch it at the phase boundary, so keep the
            # attempt quiet instead of spraying RuntimeWarnings.
            with np.errstate(invalid="ignore", over="ignore",
                             divide="ignore"):
                if full_precision:
                    with _full_precision(world.ctx):
                        world.step()
                else:
                    world.step()
        except Exception as exc:  # noqa: BLE001 — a crash is a fault symptom
            self.guards._report(world.step_count, "step", "exception",
                                f"{type(exc).__name__}: {exc}")
        finally:
            if self.injector is not None:
                self.injector.enabled = True
        return self.guards.drain()

    def _observe(self, reexecuted: bool) -> None:
        if self.controller is None:
            return
        diff = self.world.monitor.relative_step_difference()
        self.controller.observe(diff, self.world.step_count - 1, reexecuted)
        if reexecuted:
            self.controller.reexecutions += 1

    def _recovered(self, rung: int) -> None:
        self.recoveries += 1
        self._cooldown = max(self._cooldown,
                             self.policy.backoff_steps * (rung + 1))

    # ------------------------------------------------------------------
    def _recover(self, violations: List[Violation]) -> None:
        world, policy = self.world, self.policy
        failed_step = self.ring.latest().step_count

        # Rung 0: the paper's fail-safe — re-execute at full precision.
        for attempt in range(policy.max_retries):
            restore_world(world, self.ring.latest())
            retry = self._attempt(inject=False, full_precision=True)
            if not retry:
                self.log.recovery(failed_step, 0, "recovered",
                                  f"attempt {attempt + 1}")
                self._recovered(0)
                self._observe(reexecuted=True)
                return
            violations = retry
            self.log.recovery(failed_step, 0, "failed", _summary(retry))

        # Rung 1: rewind N checkpointed steps and replay at full precision.
        if policy.rollback_depth > 0:
            target = self.ring.rollback_target(policy.rollback_depth)
            if target is not None and target.step_count < failed_step:
                restore_world(world, target)
                self.ring.truncate_after(target.step_count)
                replay_ok = True
                while world.step_count <= failed_step:
                    self.ring.push(capture_world(world))
                    replay = self._attempt(inject=False, full_precision=True)
                    if replay:
                        violations = replay
                        replay_ok = False
                        break
                if replay_ok:
                    self.log.recovery(
                        failed_step, 1, "recovered",
                        f"replayed from step {target.step_count}")
                    self._recovered(1)
                    self._observe(reexecuted=True)
                    return
                self.log.recovery(failed_step, 1, "failed",
                                  _summary(violations))

        # Rung 2: quarantine the offending island(s), keep the rest alive.
        islands = tuple(islands_of(
            world.island_labels,
            (b for v in violations for b in v.bodies)))
        if policy.quarantine_enabled and islands:
            checkpoint = self.ring.latest()
            restore_world(world, checkpoint)
            members = world.quarantine_islands(islands)
            verify = self._attempt(inject=False, full_precision=True)
            if not verify:
                self.log.recovery(
                    checkpoint.step_count, 2, "recovered",
                    f"slept {len(members)} body(ies)", islands)
                self._recovered(2)
                self._observe(reexecuted=True)
                return
            violations = verify
            self.log.recovery(checkpoint.step_count, 2, "failed",
                              _summary(verify), islands)

        # Rung 3: controlled abort with a post-mortem.
        self.aborted = True
        incident = self.log.recovery(failed_step, 3, "aborted",
                                     _summary(violations))
        raise SimulationAborted(incident.detail, self.log, violations)

    # ------------------------------------------------------------------
    def health_report(self, scenario: str = "") -> HealthReport:
        world = self.world
        n = world.bodies.count
        finite = True
        if n:
            finite = bool(
                np.isfinite(world.bodies.pos[:n]).all()
                and np.isfinite(world.bodies.linvel[:n]).all())
        finite = finite and all(
            np.isfinite(c.pos).all() and np.isfinite(c.vel).all()
            for c in world.cloths)
        rungs = Counter(
            r.rung for r in self.log.records
            if r.kind == "recovery" and r.outcome == "recovered")
        return HealthReport(
            scenario=scenario,
            steps=world.step_count,
            bodies=n,
            faults_injected=(self.injector.injected
                             if self.injector else 0),
            detections=self.detections,
            recoveries=self.recoveries,
            recoveries_by_rung=rungs,
            detections_by_guard=Counter(self.detections_by_guard),
            quarantined_bodies=len(getattr(world, "quarantined", ())),
            aborted=self.aborted,
            final_state_finite=finite,
            log=self.log,
        )


def run_campaign(
    scenario: str,
    steps: int = 90,
    scale: float = 1.0,
    inject_rate: float = 1e-4,
    seed: int = 0,
    phase_precision: Optional[dict] = None,
    mode: str = "jam",
    guard_config: Optional[GuardConfig] = None,
    policy: Optional[RecoveryPolicy] = None,
    adaptive: bool = True,
    observer=None,
) -> GuardedSimulation:
    """Run one seeded fault-injection campaign and return the harness.

    Builds ``scenario`` (seeded, so the workload itself is reproducible),
    installs a :class:`FaultInjector` over the precision-tuned phases and
    a :class:`GuardedSimulation` around the world, then drives ``steps``
    timesteps.  A :class:`SimulationAborted` escape means even the full
    ladder could not stabilize the run; the exception carries the
    post-mortem.
    """
    from ..fp.context import FPContext
    from ..workloads import build

    precision = (dict(phase_precision) if phase_precision is not None
                 else {"narrow": 12, "lcp": 10})
    ctx = FPContext(dict(precision), mode=mode, census=False)
    world = build(scenario, ctx=ctx, scale=scale, seed=seed)
    controller = None
    if adaptive and precision:
        from ..tuning.controller import PrecisionController

        controller = PrecisionController(ctx, precision)
    injector = FaultInjector(rate=inject_rate, seed=seed)
    sim = GuardedSimulation(
        world,
        guards=PhaseGuards(guard_config),
        injector=injector,
        controller=controller,
        policy=policy,
        observer=observer,
    )
    sim.run(steps)
    return sim


def campaign_summary(
    scenario: str,
    steps: int = 90,
    scale: float = 1.0,
    inject_rate: float = 1e-4,
    seed: int = 0,
    phase_precision: Optional[dict] = None,
    mode: str = "jam",
) -> dict:
    """One seed's :func:`run_campaign` condensed to a picklable dict.

    The :class:`GuardedSimulation` itself holds a live world and numpy
    checkpoint ring, so multi-seed sweeps ship this summary across the
    process boundary instead.  An aborted campaign is reported as data
    (``aborted: True``) rather than an exception, so one doomed seed
    cannot sink the rest of the sweep.
    """
    try:
        sim = run_campaign(
            scenario, steps=steps, scale=scale, inject_rate=inject_rate,
            seed=seed, phase_precision=phase_precision, mode=mode)
    except SimulationAborted as aborted:
        return {
            "seed": seed,
            "aborted": True,
            "faults": -1,  # injector lost with the aborted world
            "detections": aborted.log.count("detection"),
            "recoveries": aborted.log.count("recovery",
                                            outcome="recovered"),
            "quarantined": 0,
            "final_finite": False,
            "post_mortem": str(aborted),
        }
    report = sim.health_report(scenario)
    return {
        "seed": seed,
        "aborted": False,
        "faults": report.faults_injected,
        "detections": report.detections,
        "recoveries": report.recoveries,
        "quarantined": report.quarantined_bodies,
        "final_finite": bool(report.final_state_finite),
        "post_mortem": "",
    }
