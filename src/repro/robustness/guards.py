"""Phase-boundary invariant guards (structured violation detection).

The paper's quality signal is one scalar — the per-step energy delta.
That catches slow divergence but not a NaN racing through the pipeline or
an LCP solve that silently failed to converge.  The guards extend
detection to every phase boundary of ``World.step()``:

* after **narrow**: contact fields finite, contact count sane;
* after **lcp**: velocities finite, solver residual under a ceiling;
* after **integrate**: positions/orientations finite, speeds bounded,
  cloth state finite, per-step conserved-energy delta bounded.

Each failed check produces a structured :class:`Violation` carrying the
offending body indices, so the recovery engine can attribute the fault to
a simulation island and degrade gracefully instead of tearing the whole
world down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["GuardConfig", "Violation", "PhaseGuards"]

#: Cap on how many offending body indices one violation records.
_MAX_BODIES_PER_VIOLATION = 16


@dataclass
class GuardConfig:
    """Ceilings for the per-phase invariants."""

    #: max believable speed (m/s); PhysicsBench projectiles reach ~35
    max_speed: float = 200.0
    #: relative conserved-energy jump treated as a blow-up
    max_energy_delta: float = 1.0
    #: max remaining constraint-space approach velocity after the solve
    max_lcp_residual: float = 100.0
    #: contact-count ceiling, as a multiple of the body count
    max_contacts_per_body: int = 64
    check_cloth: bool = True


@dataclass(frozen=True)
class Violation:
    """One failed invariant at one phase boundary."""

    step: int
    phase: str  # "narrow" | "lcp" | "integrate" | "energy"
    guard: str
    detail: str
    bodies: Tuple[int, ...] = ()

    def describe(self) -> str:
        suffix = f" bodies={list(self.bodies)}" if self.bodies else ""
        return f"[{self.phase}/{self.guard}] {self.detail}{suffix}"


def _offenders(mask: np.ndarray) -> Tuple[int, ...]:
    idx = np.nonzero(mask)[0][:_MAX_BODIES_PER_VIOLATION]
    return tuple(int(i) for i in idx)


class PhaseGuards:
    """Invariant checks the world calls at each phase boundary.

    Violations accumulate per step; the recovery harness ``drain()``s
    them after each ``World.step()`` to decide whether to intervene.
    """

    def __init__(self, config: Optional[GuardConfig] = None) -> None:
        self.config = config or GuardConfig()
        self.violations: List[Violation] = []
        self.checks_run = 0
        self.total_violations = 0

    # ------------------------------------------------------------------
    def drain(self) -> List[Violation]:
        """Return and clear the violations of the step just executed."""
        out = self.violations
        self.violations = []
        return out

    def _report(self, step: int, phase: str, guard: str, detail: str,
                bodies: Tuple[int, ...] = ()) -> None:
        self.violations.append(Violation(step, phase, guard, detail, bodies))
        self.total_violations += 1

    # ------------------------------------------------------------------
    # Phase hooks (called by World.step)
    # ------------------------------------------------------------------
    def after_narrow(self, world, contacts) -> None:
        self.checks_run += 1
        step = world.step_count
        if len(contacts):
            bad = ~(np.isfinite(contacts.depth)
                    & np.isfinite(contacts.pos).all(axis=1)
                    & np.isfinite(contacts.normal).all(axis=1))
            if bad.any():
                rows = np.nonzero(bad)[0][:_MAX_BODIES_PER_VIOLATION]
                bodies = tuple(
                    int(b) for r in rows
                    for b in (contacts.body_a[r], contacts.body_b[r])
                    if 0 <= int(b) < world.bodies.count
                )
                self._report(
                    step, "narrow", "finite-contacts",
                    f"{int(bad.sum())} non-finite contact(s)", bodies)
        ceiling = max(64, self.config.max_contacts_per_body
                      * max(1, world.bodies.count))
        if len(contacts) > ceiling:
            self._report(step, "narrow", "contact-count",
                         f"{len(contacts)} contacts > ceiling {ceiling}")

    def after_lcp(self, world, residual: float) -> None:
        self.checks_run += 1
        step = world.step_count
        n = world.bodies.count
        if n:
            bad = ~(np.isfinite(world.bodies.linvel[:n]).all(axis=1)
                    & np.isfinite(world.bodies.angvel[:n]).all(axis=1))
            if bad.any():
                self._report(step, "lcp", "finite-velocity",
                             f"{int(bad.sum())} body velocity(ies) "
                             "non-finite", _offenders(bad))
        if not np.isfinite(residual):
            self._report(step, "lcp", "lcp-residual",
                         "solver residual non-finite")
        elif residual > self.config.max_lcp_residual:
            self._report(step, "lcp", "lcp-residual",
                         f"residual {residual:.2f} > "
                         f"{self.config.max_lcp_residual:.2f}")

    def after_integrate(self, world, record) -> None:
        self.checks_run += 1
        step = world.step_count
        n = world.bodies.count
        if n:
            bad = ~(np.isfinite(world.bodies.pos[:n]).all(axis=1)
                    & np.isfinite(world.bodies.quat[:n]).all(axis=1))
            if bad.any():
                self._report(step, "integrate", "finite-position",
                             f"{int(bad.sum())} body position(s) "
                             "non-finite", _offenders(bad))
            speed = np.linalg.norm(world.bodies.linvel[:n], axis=1)
            with np.errstate(invalid="ignore"):
                fast = speed > self.config.max_speed
            if fast.any():
                self._report(
                    step, "integrate", "speed",
                    f"max speed {float(np.nanmax(speed)):.1f} m/s > "
                    f"{self.config.max_speed:.1f}", _offenders(fast))
        if self.config.check_cloth:
            for k, cloth in enumerate(world.cloths):
                if not (np.isfinite(cloth.pos).all()
                        and np.isfinite(cloth.vel).all()):
                    self._report(step, "integrate", "finite-cloth",
                                 f"cloth #{k} state non-finite")
        diff = world.monitor.relative_step_difference()
        if diff is not None and (
                not np.isfinite(diff) or diff > self.config.max_energy_delta):
            self._report(step, "energy", "energy-delta",
                         f"relative conserved-energy delta {diff:.3g} > "
                         f"{self.config.max_energy_delta:.3g}")
