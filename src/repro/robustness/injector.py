"""Deterministic fault injection for the reduced-precision FPU model.

Reduced-mantissa FPUs are exactly where soft errors bite: the paper's
area-efficient datapath keeps only the top ``precision`` mantissa bits, so
a particle strike flips a bit *that the narrow FPU actually latches*.  The
injector models this by corrupting results of precision-tuned phases as
they leave the :class:`~repro.fp.FPContext` — single-bit flips inside the
kept mantissa window, plus rarer NaN/Inf poisoning to model control-path
upsets.

Everything is driven by one seeded :class:`numpy.random.Generator`; the
simulation itself is deterministic, so two campaigns with the same seed
produce bit-identical fault streams and therefore identical incident
logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..fp.ops import inject_bitflip
from ..fp.rounding import FULL_PRECISION

__all__ = ["FaultEvent", "FaultInjector"]

#: Default mix: mostly datapath bit flips, rare control-path poison.
DEFAULT_KIND_WEIGHTS = {"bitflip": 0.85, "nan": 0.10, "inf": 0.05}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (deterministic given the campaign seed)."""

    step: int
    phase: str
    op: str
    kind: str  # "bitflip" | "nan" | "inf"
    lane: int
    bit: int  # flipped mantissa bit position, -1 for nan/inf

    def describe(self) -> str:
        where = f"{self.phase}/{self.op}[{self.lane}]"
        if self.kind == "bitflip":
            return f"bitflip m{self.bit} in {where}"
        return f"{self.kind} in {where}"


class FaultInjector:
    """Seedable per-phase fault source hooked into an ``FPContext``.

    Parameters
    ----------
    rate:
        Per-element fault probability, either one float for every
        targeted phase or a ``{phase: rate}`` mapping.
    seed:
        Campaign seed; same seed + same workload = same fault stream.
    phases:
        Phases eligible for injection (default: the two precision-tuned
        phases, modelling the area-efficient FPU).
    kind_weights:
        Relative probabilities of ``bitflip`` / ``nan`` / ``inf``.
    """

    def __init__(
        self,
        rate: Union[float, Mapping[str, float]] = 1e-4,
        seed: int = 0,
        phases: Tuple[str, ...] = ("narrow", "lcp"),
        kind_weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if isinstance(rate, Mapping):
            self.rates: Dict[str, float] = dict(rate)
        else:
            self.rates = {phase: float(rate) for phase in phases}
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        weights = dict(kind_weights or DEFAULT_KIND_WEIGHTS)
        self._kinds = tuple(weights)
        total = sum(weights.values())
        self._kind_p = np.array([weights[k] / total for k in self._kinds])
        self.enabled = True
        #: current simulation step, stamped by the harness for event logs
        self.step = 0
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        """Rewind the fault stream to the campaign start."""
        self.rng = np.random.default_rng(self.seed)
        self.events.clear()
        self.step = 0

    # ------------------------------------------------------------------
    def corrupt(self, phase: str, op: str, result: np.ndarray,
                precision: int) -> np.ndarray:
        """Possibly corrupt an op result; called by the FP context."""
        rate = self.rates.get(phase, 0.0)
        if not self.enabled or rate <= 0.0:
            return result
        out = np.ascontiguousarray(result, dtype=np.float32)
        n = out.size
        if n == 0:
            return result
        hits = int(self.rng.binomial(n, min(rate, 1.0)))
        if hits == 0:
            return out
        lanes = np.sort(self.rng.choice(n, size=hits, replace=False))
        kinds = self.rng.choice(len(self._kinds), size=hits, p=self._kind_p)
        flat = out.reshape(-1)
        kept = max(1, min(precision, FULL_PRECISION))
        for lane, kind_idx in zip(lanes, kinds):
            kind = self._kinds[int(kind_idx)]
            bit = -1
            if kind == "bitflip":
                # A bit the reduced FPU actually keeps: the top ``kept``
                # mantissa bits occupy positions [23-kept, 22].
                bit = int(self.rng.integers(FULL_PRECISION - kept,
                                            FULL_PRECISION))
                inject_bitflip(flat, int(lane), bit)
            elif kind == "nan":
                flat[lane] = np.nan
            else:
                flat[lane] = np.inf
            self.events.append(
                FaultEvent(self.step, phase, op, kind, int(lane), bit))
        return out
