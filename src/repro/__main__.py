"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scenarios``
    List the PhysicsBench-equivalent workloads.
``run SCENARIO``
    Simulate a scenario and print its energy/contact/trivialization
    summary (optionally at reduced precision).
``tune SCENARIO``
    Search the minimum believable precision for a scenario phase.
``health SCENARIO``
    Run a seeded fault-injection campaign with guarded recovery and
    print the incident/health report.
``table1`` / ``table3`` / ``table4`` / ``table5`` / ``table8`` /
``figure5`` / ``figure6`` / ``figure7`` / ``figure8``
    Regenerate one paper artifact and print it.
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="simulate one scenario")
    p.add_argument("scenario")
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--lcp-bits", type=int, default=23)
    p.add_argument("--narrow-bits", type=int, default=23)
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--census", action="store_true",
                   help="collect the trivialization census (slower)")
    p.add_argument("--seed", type=int, default=None,
                   help="scenario-construction seed (default: built-in)")


def _add_tune_parser(sub) -> None:
    p = sub.add_parser("tune", help="minimum believable precision search")
    p.add_argument("scenario")
    p.add_argument("--phase", default="lcp", choices=["lcp", "narrow"])
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=None,
                   help="scenario-construction seed (default: built-in)")


def _add_health_parser(sub) -> None:
    p = sub.add_parser(
        "health",
        help="seeded fault-injection campaign with guarded recovery")
    p.add_argument("scenario")
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--inject-rate", type=float, default=1e-4,
                   help="per-element soft-error probability in the "
                        "precision-tuned phases")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (faults AND scenario layout)")
    p.add_argument("--lcp-bits", type=int, default=10)
    p.add_argument("--narrow-bits", type=int, default=12)
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--max-log-lines", type=int, default=None,
                   help="truncate the printed incident log")


def _cmd_scenarios() -> int:
    from .workloads import SCENARIO_ABBREVIATIONS, SCENARIO_NAMES, build

    print("PhysicsBench-equivalent scenarios:")
    for name in SCENARIO_NAMES:
        world = build(name)
        particles = sum(c.particle_count for c in world.cloths)
        extras = []
        if world.joints.ball_joints or world.joints.hinge_joints:
            extras.append(f"{len(world.joints)} joints")
        if particles:
            extras.append(f"{particles} cloth particles")
        if world.explosions:
            extras.append("explosion")
        detail = f" ({', '.join(extras)})" if extras else ""
        print(f"  {SCENARIO_ABBREVIATIONS[name]:4s} {name:12s} "
              f"{world.bodies.count:3d} bodies{detail}")
    return 0


def _cmd_run(args) -> int:
    from .fp import FPContext
    from .workloads import build

    precision = {}
    if args.lcp_bits < 23:
        precision["lcp"] = args.lcp_bits
    if args.narrow_bits < 23:
        precision["narrow"] = args.narrow_bits
    ctx = FPContext(precision, mode=args.mode, census=args.census)
    world = build(args.scenario, ctx=ctx, scale=args.scale,
                  seed=args.seed)
    for _ in range(args.steps):
        world.step()

    energy = world.monitor.totals()
    print(f"{args.scenario}: {args.steps} steps, "
          f"{world.bodies.count} bodies")
    print(f"  energy: {energy[0]:.2f} J -> {energy[-1]:.2f} J "
          f"(injected {world.monitor.injected_total:.2f} J)")
    print(f"  final contacts: {world.last_contact_count}, "
          f"islands: {world.island_count}, max penetration: "
          f"{max(world.penetration_series or [0.0]):.4f} m")
    if args.census:
        for phase in ("narrow", "lcp"):
            totals = ctx.phase_totals(phase)
            if totals.total:
                pct = 100 * totals.extended_trivial / totals.total
                print(f"  {phase}: {totals.total} FP ops, "
                      f"{pct:.0f}% trivial (all conditions)")
    return 0


def _cmd_tune(args) -> int:
    from .tuning import minimum_precision

    bits = minimum_precision(args.scenario, phases=(args.phase,),
                             mode=args.mode, steps=args.steps,
                             scale=args.scale, seed=args.seed)
    print(f"{args.scenario} / {args.phase} / {args.mode}: "
          f"minimum believable precision = {bits} mantissa bits")
    return 0


def _cmd_health(args) -> int:
    from .robustness import SimulationAborted, run_campaign

    precision = {}
    if args.lcp_bits < 23:
        precision["lcp"] = args.lcp_bits
    if args.narrow_bits < 23:
        precision["narrow"] = args.narrow_bits
    try:
        sim = run_campaign(
            args.scenario,
            steps=args.steps,
            scale=args.scale,
            inject_rate=args.inject_rate,
            seed=args.seed,
            phase_precision=precision,
            mode=args.mode,
        )
    except SimulationAborted as aborted:
        print(aborted.post_mortem())
        return 1
    report = sim.health_report(args.scenario)
    print(report.render(max_log_lines=args.max_log_lines))
    return 0 if report.final_state_finite else 1


def _cmd_artifact(name: str) -> int:
    from .experiments import (
        figure5,
        figure6,
        figure7,
        figure8,
        table1,
        table3,
        table4,
        table5,
        table8,
    )

    if name == "table1":
        print(table1.render(table1.compute_table1()))
    elif name == "table3":
        print(table3.render(table3.compute_table3()))
    elif name == "table4":
        print(table4.render(table4.compute_table4()))
    elif name == "table5":
        print(table5.render(table5.compute_table5()))
    elif name == "table8":
        print(table8.render(table8.compute_table8()))
    elif name == "figure5":
        result = figure5.compute_figure5()
        print(figure5.render(result, "lcp"))
        print()
        print(figure5.render(result, "narrow"))
        print()
        print(figure5.paper_summary(result))
    elif name == "figure6":
        print(figure6.render_cores(figure6.compute_core_counts()))
        print()
        print(figure6.render_energy(figure6.compute_energy()))
    elif name == "figure7":
        result = figure7.compute_figure7()
        print(figure7.render(result, "lcp"))
        print()
        print(figure7.render(result, "narrow"))
    elif name == "figure8":
        result = figure8.compute_figure8()
        print(figure8.render(result, "lcp"))
        print()
        print(figure8.render(result, "narrow"))
    else:  # pragma: no cover - argparse restricts choices
        return 1
    return 0


ARTIFACTS = ["table1", "table3", "table4", "table5", "table8",
             "figure5", "figure6", "figure7", "figure8"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive precision reduction for physics "
                    "acceleration (MICRO 2007) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("scenarios", help="list the workloads")
    _add_run_parser(sub)
    _add_tune_parser(sub)
    _add_health_parser(sub)
    for artifact in ARTIFACTS:
        sub.add_parser(artifact, help=f"regenerate paper {artifact}")

    args = parser.parse_args(argv)
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "health":
        return _cmd_health(args)
    return _cmd_artifact(args.command)


def console() -> int:
    """Console-script entry: exits quietly when the pipe closes early."""
    try:
        return main()
    except BrokenPipeError:
        import os

        # Piping into `head` is normal CLI usage, not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(console())
