"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scenarios``
    List the PhysicsBench-equivalent workloads.
``run SCENARIO``
    Simulate a scenario and print its energy/contact/trivialization
    summary (optionally at reduced precision).
``tune SCENARIO``
    Search the minimum believable precision for a scenario phase.
``health SCENARIO``
    Run a seeded fault-injection campaign with guarded recovery and
    print the incident/health report (``--seeds N`` fans a multi-seed
    sweep over worker processes).
``bench``
    Time the census-free and census step loops per scenario and write a
    ``BENCH_<stamp>.json`` perf snapshot (includes the metrics-overhead
    assertion for the observability layer).
``trace SCENARIO``
    Run a scenario with the ``repro.obs`` tracer attached and stream
    per-step telemetry (precision, energy delta, census totals,
    controller actions) to a JSONL file; ``trace --summarize FILE``
    renders the offline report (p50/p95 step time, precision histogram
    per phase, violation counts).
``serve``
    Run the multi-session simulation service: independently-tuned
    sessions behind an NDJSON TCP/UNIX socket, with batched stepping,
    admission control, and snapshot/restore (see ``repro.serve``).
    With ``--shards N`` it runs the scale-out topology instead: a
    gateway routing sessions by consistent hash over N worker-shard
    subprocesses, with live migration and shard-crash recovery.
``serve-bench``
    Drive an in-process service with N concurrent synthetic clients;
    reports p50/p95 step latency, aggregate steps/sec, and the
    snapshot-fidelity check into a ``BENCH_<stamp>_serve.json``.
    ``--shards N`` benchmarks the gateway topology (scaling ratio vs
    a 1-shard baseline, live migration under load).
``surrogate``
    The learned precision surrogate (``repro.tuning.surrogate``):
    ``dataset`` sweeps scenarios into labelled feature rows, ``train``
    fits the ridge/polynomial model into a JSON artifact, ``predict``
    prints one prediction, and ``eval`` verifies warm-started searches
    against the cold baseline (identical bits, fewer probes).
``design``
    Closed-loop HFPU design-space search (``repro.design``): sharing
    degree × L1 design × per-phase precision policy under area/energy
    budgets, emitting a verified Pareto front as
    ``DESIGN_<stamp>.json`` (the same query is servable through
    ``repro serve`` as the ``design`` op, cached server-side).
``table1`` / ``table3`` / ``table4`` / ``table5`` / ``table8`` /
``figure5`` / ``figure6`` / ``figure7`` / ``figure8``
    Regenerate one paper artifact and print it (``table1`` accepts
    ``--surrogate MODEL`` to warm-start every search cell).
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def _make_runner(workers):
    """SweepRunner when parallelism was requested, else None (serial).

    An explicit ``--workers`` wins; otherwise a set ``REPRO_WORKERS``
    environment variable opts in.
    """
    from .perf.sweep import WORKERS_ENV, SweepRunner

    if workers is None and not os.environ.get(WORKERS_ENV, "").strip():
        return None
    return SweepRunner(workers)


def _add_run_parser(sub) -> None:
    p = sub.add_parser("run", help="simulate one scenario")
    p.add_argument("scenario")
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--lcp-bits", type=int, default=23)
    p.add_argument("--narrow-bits", type=int, default=23)
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--census", action="store_true",
                   help="collect the trivialization census (slower)")
    p.add_argument("--seed", type=int, default=None,
                   help="scenario-construction seed (default: built-in)")


def _add_tune_parser(sub) -> None:
    p = sub.add_parser("tune", help="minimum believable precision search")
    p.add_argument("scenario")
    p.add_argument("--phase", default="lcp", choices=["lcp", "narrow"])
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=None,
                   help="scenario-construction seed (default: built-in)")
    p.add_argument("--workers", type=int, default=None,
                   help="probe candidate precisions in parallel "
                        "(default: REPRO_WORKERS, else serial)")
    p.add_argument("--surrogate", default=None, metavar="MODEL",
                   help="warm-start the search from this trained "
                        "surrogate artifact (see `repro surrogate`)")


def _add_design_parser(sub) -> None:
    p = sub.add_parser(
        "design",
        help="closed-loop HFPU design-space search -> verified Pareto "
             "front (repro.design)")
    p.add_argument("scenario", nargs="?", default="continuous")
    p.add_argument("--budget-area", type=float, default=None,
                   metavar="MM2",
                   help="per-core area cap in mm^2 (core + router + L2 "
                        "share + L1 overhead); omit for unconstrained")
    p.add_argument("--budget-energy", type=float, default=None,
                   metavar="NJ",
                   help="average per-FP-op energy cap in nJ; omit for "
                        "unconstrained")
    p.add_argument("--generations", type=int, default=3,
                   help="evolutionary refinement generations")
    p.add_argument("--population", type=int, default=12,
                   help="candidates bred per generation")
    p.add_argument("--seed", type=int, default=0,
                   help="search RNG seed (fronts are bit-reproducible "
                        "for a fixed seed, any worker count)")
    p.add_argument("--workers", type=int, default=None,
                   help="evaluate candidates in parallel "
                        "(default: REPRO_WORKERS, else cpu count)")
    p.add_argument("--surrogate", default=None, metavar="MODEL",
                   help="predict candidate believability from this "
                        "trained surrogate artifact (front members are "
                        "still cold-search verified)")
    p.add_argument("--steps", type=int, default=30,
                   help="simulation steps per believability run")
    p.add_argument("--scale", type=float, default=1.0,
                   help="scenario size multiplier")
    p.add_argument("--mode", default="jam", choices=["rn", "jam", "trunc"])
    p.add_argument("--trace-length", type=int, default=4000,
                   help="synthetic trace length for the cycle simulator")
    p.add_argument("--designs", nargs="+", default=None, metavar="NAME",
                   help="restrict the L1 design axis (default: all)")
    p.add_argument("--sharing", nargs="+", type=int, default=None,
                   metavar="N", help="restrict the cores-per-FPU axis")
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate even when the run cache has the "
                        "evaluation")
    p.add_argument("--out", default="design-out", metavar="DIR",
                   help="directory for the DESIGN_<stamp>.json artifact")


def _add_surrogate_parser(sub) -> None:
    p = sub.add_parser(
        "surrogate",
        help="learned precision surrogate: dataset/train/predict/eval")
    ssub = p.add_subparsers(dest="surrogate_command", required=True)

    d = ssub.add_parser(
        "dataset", help="sweep scenarios into labelled feature rows")
    d.add_argument("--out", default="results/surrogate_dataset.jsonl",
                   help="JSONL output (header line + one row per "
                        "configuration)")
    d.add_argument("--scenarios", nargs="+", default=None,
                   help="scenario subset (default: all eight)")
    d.add_argument("--phases", nargs="+", default=["lcp", "narrow"],
                   choices=["lcp", "narrow"])
    d.add_argument("--modes", nargs="+", default=["jam"],
                   choices=["rn", "jam", "trunc"])
    d.add_argument("--steps", type=int, default=90)
    d.add_argument("--scale", type=float, default=1.0)
    d.add_argument("--seed", type=int, default=None)
    d.add_argument("--probe-steps", type=int, default=None,
                   help="steps per feature-probe run (default 12)")
    d.add_argument("--probe-bits", type=int, default=None,
                   help="narrow width forced in the probe run "
                        "(default 6)")
    d.add_argument("--include-combined", action="store_true",
                   help="also label the combined-tuning rows (narrow "
                        "re-searched with LCP pinned)")
    d.add_argument("--workers", type=int, default=None,
                   help="fan rows over worker processes")

    t = ssub.add_parser(
        "train", help="fit the ridge/polynomial model from a dataset")
    t.add_argument("--dataset", default="results/surrogate_dataset.jsonl")
    t.add_argument("--out", default="results/surrogate_model.json")
    t.add_argument("--degree", type=int, default=2, choices=[1, 2])
    t.add_argument("--lam", type=float, default=1e-3,
                   help="ridge penalty")

    pr = ssub.add_parser(
        "predict", help="print one minimum-precision prediction")
    pr.add_argument("scenario")
    pr.add_argument("--model", default="results/surrogate_model.json")
    pr.add_argument("--phase", default="lcp", choices=["lcp", "narrow"])
    pr.add_argument("--mode", default="jam",
                    choices=["rn", "jam", "trunc"])
    pr.add_argument("--steps", type=int, default=90)
    pr.add_argument("--scale", type=float, default=1.0)
    pr.add_argument("--seed", type=int, default=None)

    e = ssub.add_parser(
        "eval",
        help="verify warm-started searches against the cold baseline")
    e.add_argument("--model", default="results/surrogate_model.json")
    e.add_argument("--scenarios", nargs="+", default=None)
    e.add_argument("--phases", nargs="+", default=["lcp"],
                   choices=["lcp", "narrow"])
    e.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    e.add_argument("--steps", type=int, default=90)
    e.add_argument("--scale", type=float, default=1.0)
    e.add_argument("--seed", type=int, default=None)
    e.add_argument("--workers", type=int, default=None)
    e.add_argument("--gate-probes", action="store_true",
                   help="also fail unless the warm searches evaluated "
                        "strictly fewer candidate widths in aggregate "
                        "(identity always gates)")


def _add_health_parser(sub) -> None:
    p = sub.add_parser(
        "health",
        help="seeded fault-injection campaign with guarded recovery")
    p.add_argument("scenario")
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--inject-rate", type=float, default=1e-4,
                   help="per-element soft-error probability in the "
                        "precision-tuned phases")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (faults AND scenario layout)")
    p.add_argument("--lcp-bits", type=int, default=10)
    p.add_argument("--narrow-bits", type=int, default=12)
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--max-log-lines", type=int, default=None,
                   help="truncate the printed incident log")
    p.add_argument("--seeds", type=int, default=1,
                   help="run this many consecutive seeds starting at "
                        "--seed and print the aggregate")
    p.add_argument("--workers", type=int, default=None,
                   help="fan the multi-seed sweep over worker processes "
                        "(default: REPRO_WORKERS, else serial)")


def _add_bench_parser(sub) -> None:
    p = sub.add_parser(
        "bench", help="step-loop throughput benchmark (BENCH_*.json)")
    p.add_argument("--quick", action="store_true",
                   help="only the smoke subset of scenarios")
    p.add_argument("--scenarios", nargs="+", default=None,
                   help="explicit scenario list (overrides --quick)")
    p.add_argument("--steps", type=int, default=None,
                   help="timed census-free steps per scenario "
                        "(non-default protocols skip baseline speedups)")
    p.add_argument("--census-steps", type=int, default=None,
                   help="timed census steps per scenario")
    p.add_argument("--kernel-iters", type=int, default=None,
                   help="kernel microbenchmark iterations")
    p.add_argument("--no-kernel", action="store_true",
                   help="skip the kernel microbenchmark")
    p.add_argument("--output", default="results",
                   help="directory for BENCH_<stamp>.json")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON for speedup columns "
                        "(default: results/BENCH_baseline.json)")
    p.add_argument("--workers", type=int, default=None,
                   help="time scenarios concurrently (noisier numbers; "
                        "default 1 for timing fidelity)")
    p.add_argument("--no-obs-overhead", action="store_true",
                   help="skip the metrics-overhead assertion")


def _add_trace_parser(sub) -> None:
    p = sub.add_parser(
        "trace",
        help="per-step telemetry stream (JSONL) and its summary report")
    p.add_argument("scenario", nargs="?", default=None,
                   help="scenario to trace (omit with --summarize FILE "
                        "to analyse an existing trace)")
    p.add_argument("--steps", type=int, default=90)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=None,
                   help="scenario-construction seed (default: built-in)")
    p.add_argument("--mode", default="jam",
                   choices=["rn", "jam", "trunc"])
    p.add_argument("--lcp-bits", type=int, default=None,
                   help="override the preset LCP precision")
    p.add_argument("--narrow-bits", type=int, default=None,
                   help="override the preset narrowphase precision")
    p.add_argument("--out", default="trace.jsonl",
                   help="JSONL output path (default: trace.jsonl)")
    p.add_argument("--no-census", action="store_true",
                   help="skip the trivialization census (faster, but "
                        "step events carry zero census totals)")
    p.add_argument("--no-adaptive", action="store_true",
                   help="disable the dynamic precision controller")
    p.add_argument("--guarded", action="store_true",
                   help="wrap the run in the guarded recovery ladder "
                        "(recovery events join the trace)")
    p.add_argument("--inject-rate", type=float, default=0.0,
                   help="with --guarded: soft-error injection rate")
    p.add_argument("--summarize", nargs="?", const="", default=None,
                   metavar="FILE",
                   help="render the summary report (of FILE, or of the "
                        "trace just written)")


def _add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve", help="multi-session simulation service (repro.serve)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="serve on a UNIX socket instead of TCP")
    p.add_argument("--max-sessions", type=int, default=32,
                   help="session-table capacity (admission control)")
    p.add_argument("--workers", type=int, default=None,
                   help="batch-dispatch worker threads "
                        "(default: REPRO_WORKERS, else cpu count)")
    p.add_argument("--batch-window", type=float, default=0.002,
                   help="seconds one tick waits for requests to "
                        "coalesce into a batch")
    p.add_argument("--max-pending", type=int, default=4,
                   help="queued requests allowed per session")
    p.add_argument("--max-queue", type=int, default=256,
                   help="queued requests allowed service-wide")
    p.add_argument("--step-budget", type=float, default=30.0,
                   help="wall seconds one step request may take before "
                        "its session is evicted")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="stream serve.* + step telemetry to this JSONL")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="per-session snapshot journals for crash-safe "
                        "restart recovery (omit to disable durability)")
    p.add_argument("--journal-every", type=int, default=32,
                   help="steps a session may advance between journal "
                        "entries")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="seconds a SIGTERM/SIGINT drain waits for "
                        "in-flight batches")
    p.add_argument("--allow-chaos", action="store_true",
                   help="permit fault-drill session fields "
                        "(inject_rate, chaos_slow_*)")
    p.add_argument("--no-fleet-step", action="store_true",
                   help="disable coalescing compatible same-tick step "
                        "requests into one vectorized WorldBatch pass")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="scale out: run a gateway over N worker-shard "
                        "subprocesses instead of a single-process "
                        "service (sessions routed by consistent hash, "
                        "live migration, shard-crash recovery)")
    p.add_argument("--runtime-dir", default=None, metavar="DIR",
                   help="shard sockets + per-shard journals live here "
                        "(default: a fresh temp dir; pass a fixed path "
                        "to survive gateway restarts)")
    p.add_argument("--design-surrogate", default=None, metavar="MODEL",
                   help="warm-start served `design` queries from this "
                        "trained surrogate artifact (front members are "
                        "still cold-search verified)")


def _add_serve_bench_parser(sub) -> None:
    p = sub.add_parser(
        "serve-bench",
        help="concurrent-client service benchmark "
             "(BENCH_<stamp>_serve.json)")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent synthetic clients")
    p.add_argument("--steps", type=int, default=30,
                   help="step requests per client")
    p.add_argument("--scenario", default="continuous")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="service worker threads")
    p.add_argument("--batch-window", type=float, default=0.002)
    p.add_argument("--fidelity-steps", type=int, default=10,
                   help="steps on each side of the snapshot-fidelity "
                        "check")
    p.add_argument("--no-fleet-step", action="store_true",
                   help="disable WorldBatch fleet coalescing for the "
                        "load run")
    p.add_argument("--fleet-compare", action="store_true",
                   help="also run the load with fleet stepping "
                        "disabled and report the batched/unbatched "
                        "speedup ratio")
    p.add_argument("--fleet-min-speedup", type=float, default=0.0,
                   help="fail unless the batched run's steps/sec is "
                        "at least this multiple of the unbatched run "
                        "(implies --fleet-compare; 0 = report only)")
    p.add_argument("--output", default="results",
                   help="directory for BENCH_<stamp>_serve.json")
    p.add_argument("--chaos", action="store_true",
                   help="run the fault drill after the load phase: "
                        "injected soft errors, killed connections, "
                        "slow steps, one mid-run server restart "
                        "recovered from journals")
    p.add_argument("--chaos-inject-rate", type=float, default=0.02,
                   help="soft-error rate for the guarded chaos "
                        "sessions")
    p.add_argument("--chaos-kill-every", type=int, default=10,
                   help="client RSTs its connection every N steps")
    p.add_argument("--chaos-recovery-p95", type=float, default=5.0,
                   help="p95 recovery-time gate in seconds")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="benchmark the gateway + N worker-shard "
                        "topology instead of the single-process "
                        "service (includes a forced live migration "
                        "under load)")
    p.add_argument("--shard-min-scaling", type=float, default=0.0,
                   help="fail unless N-shard steps/sec is at least "
                        "this multiple of the 1-shard gateway "
                        "baseline (0 = report only)")
    p.add_argument("--shard-migrations", type=int, default=1,
                   help="forced live migrations during the load phase")
    p.add_argument("--no-shard-baseline", action="store_true",
                   help="skip the 1-shard baseline run (no scaling "
                        "ratio; faster CI smoke)")


def _cmd_scenarios() -> int:
    from .workloads import SCENARIO_ABBREVIATIONS, SCENARIO_NAMES, build

    print("PhysicsBench-equivalent scenarios:")
    for name in SCENARIO_NAMES:
        world = build(name)
        particles = sum(c.particle_count for c in world.cloths)
        extras = []
        if world.joints.ball_joints or world.joints.hinge_joints:
            extras.append(f"{len(world.joints)} joints")
        if particles:
            extras.append(f"{particles} cloth particles")
        if world.explosions:
            extras.append("explosion")
        detail = f" ({', '.join(extras)})" if extras else ""
        print(f"  {SCENARIO_ABBREVIATIONS[name]:4s} {name:12s} "
              f"{world.bodies.count:3d} bodies{detail}")
    return 0


def _cmd_run(args) -> int:
    from .fp import FPContext
    from .workloads import build

    precision = {}
    if args.lcp_bits < 23:
        precision["lcp"] = args.lcp_bits
    if args.narrow_bits < 23:
        precision["narrow"] = args.narrow_bits
    ctx = FPContext(precision, mode=args.mode, census=args.census)
    world = build(args.scenario, ctx=ctx, scale=args.scale,
                  seed=args.seed)
    for _ in range(args.steps):
        world.step()

    energy = world.monitor.totals()
    print(f"{args.scenario}: {args.steps} steps, "
          f"{world.bodies.count} bodies")
    print(f"  energy: {energy[0]:.2f} J -> {energy[-1]:.2f} J "
          f"(injected {world.monitor.injected_total:.2f} J)")
    print(f"  final contacts: {world.last_contact_count}, "
          f"islands: {world.island_count}, max penetration: "
          f"{world.penetration_series.maximum(default=0.0):.4f} m")
    if args.census:
        for phase in ("narrow", "lcp"):
            totals = ctx.phase_totals(phase)
            if totals.total:
                pct = 100 * totals.extended_trivial / totals.total
                print(f"  {phase}: {totals.total} FP ops, "
                      f"{pct:.0f}% trivial (all conditions)")
    return 0


def _cmd_tune(args) -> int:
    from .tuning import minimum_precision

    surrogate = None
    if args.surrogate:
        from .tuning import SurrogateModel

        surrogate = SurrogateModel.load(args.surrogate)
    stats = {}
    bits = minimum_precision(args.scenario, phases=(args.phase,),
                             mode=args.mode, steps=args.steps,
                             scale=args.scale, seed=args.seed,
                             runner=_make_runner(args.workers),
                             surrogate=surrogate, stats=stats)
    print(f"{args.scenario} / {args.phase} / {args.mode}: "
          f"minimum believable precision = {bits} mantissa bits")
    detail = f"  probes: {stats['probes']} candidate widths"
    if surrogate is not None:
        detail += (f" (surrogate predicted {stats['predicted']}, "
                   f"warm-start {stats['warm']})")
    print(detail)
    return 0


def _cmd_surrogate(args) -> int:
    from .tuning import surrogate as S

    if args.surrogate_command == "dataset":
        from .perf.sweep import SweepRunner

        runner = _make_runner(args.workers) or SweepRunner(1)
        rows = S.build_dataset(
            scenarios=args.scenarios,
            phases=tuple(args.phases),
            modes=tuple(args.modes),
            steps=args.steps,
            scale=args.scale,
            seed=args.seed,
            probe_steps=args.probe_steps or S.DEFAULT_PROBE_STEPS,
            probe_bits=args.probe_bits or S.DEFAULT_PROBE_BITS,
            include_combined=args.include_combined,
            runner=runner,
            out_path=args.out,
        )
        labels = ", ".join(
            f"{r['scenario']}/{r['phase']}={r['label']}" for r in rows)
        print(f"surrogate dataset: {len(rows)} rows -> {args.out}")
        print(f"  labels: {labels}")
        return 0

    if args.surrogate_command == "train":
        model = S.train_from_file(args.dataset, degree=args.degree,
                                  lam=args.lam)
        path = model.save(args.out)
        print(f"surrogate model: {model.meta['rows']} rows, "
              f"train RMSE {model.meta['train_rmse']} bits, "
              f"floors {model.floors} -> {path}")
        return 0

    if args.surrogate_command == "predict":
        model = S.SurrogateModel.load(args.model)
        features = S.extract_features(
            args.scenario, steps=args.steps, scale=args.scale,
            seed=args.seed, mode=args.mode,
            probe_steps=model.probe_steps, probe_bits=model.probe_bits)
        bits = model.predict_bits(features, args.phase, args.mode)
        print(f"{args.scenario} / {args.phase} / {args.mode}: "
              f"predicted minimum = {bits} mantissa bits "
              f"(raw {model.predict_value(features, args.phase, args.mode):.2f}, "
              f"floor {model.floors.get(args.phase, 1)})")
        return 0

    # eval: cold vs warm on every configuration
    from .experiments.report import render_table

    model = S.SurrogateModel.load(args.model)
    report = S.evaluate_warm_start(
        model, scenarios=args.scenarios, phases=tuple(args.phases),
        mode=args.mode, steps=args.steps, scale=args.scale,
        seed=args.seed, runner=_make_runner(args.workers))
    rows = [[r["scenario"], r["phase"], r["cold_bits"], r["warm_bits"],
             "yes" if r["identical"] else "NO", r["predicted"],
             r["warm_path"], r["cold_probes"], r["warm_probes"]]
            for r in report["rows"]]
    print(render_table(
        ["scenario", "phase", "cold", "warm", "same", "pred", "path",
         "cold probes", "warm probes"],
        rows, title="surrogate warm-start evaluation"))
    print(f"aggregate: identical={report['identical']}, "
          f"probes {report['cold_probes']} -> {report['warm_probes']} "
          f"({report['probe_savings_pct']}% saved)")
    if not report["identical"]:
        print("FAIL: warm-started search diverged from the cold search",
              file=sys.stderr)
        return 1
    if args.gate_probes and not report["fewer_probes"]:
        print("FAIL: warm searches did not save probes in aggregate",
              file=sys.stderr)
        return 1
    return 0


def _cmd_health_sweep(args, precision) -> int:
    """Multi-seed fault campaign fanned over worker processes."""
    from .experiments.report import render_table
    from .perf.sweep import SweepJob, SweepRunner
    from .robustness.recovery import campaign_summary

    runner = _make_runner(args.workers) or SweepRunner(1)
    seeds = list(range(args.seed, args.seed + args.seeds))
    jobs = [SweepJob(
        key=(args.scenario, seed), fn=campaign_summary,
        args=(args.scenario,),
        kwargs=dict(steps=args.steps, scale=args.scale,
                    inject_rate=args.inject_rate, seed=seed,
                    phase_precision=precision, mode=args.mode),
    ) for seed in seeds]
    summaries = [r.value for r in runner.run(jobs)]

    rows = [[s["seed"], s["faults"], s["detections"], s["recoveries"],
             s["quarantined"],
             "yes" if s["final_finite"] else "NO",
             "ABORTED" if s["aborted"] else "ok"] for s in summaries]
    print(render_table(
        ["seed", "faults", "detections", "recoveries", "quarantined",
         "finite", "outcome"],
        rows,
        title=f"health sweep: {args.scenario}, {args.seeds} seeds, "
              f"{args.steps} steps"))
    aborted = [s for s in summaries if s["aborted"]]
    healthy = [s for s in summaries if s["final_finite"]]
    metrics = runner.last_metrics
    print(f"aggregate: {len(healthy)}/{len(summaries)} seeds finite, "
          f"{len(aborted)} aborted, "
          f"{sum(s['recoveries'] for s in summaries)} recoveries "
          f"({metrics.workers} workers, {metrics.elapsed:.1f}s)")
    for s in aborted:
        print(f"  seed {s['seed']}: {s['post_mortem']}")
    return 0 if len(healthy) == len(summaries) else 1


def _cmd_health(args) -> int:
    from .robustness import SimulationAborted, run_campaign

    precision = {}
    if args.lcp_bits < 23:
        precision["lcp"] = args.lcp_bits
    if args.narrow_bits < 23:
        precision["narrow"] = args.narrow_bits
    if args.seeds > 1:
        return _cmd_health_sweep(args, precision)
    try:
        sim = run_campaign(
            args.scenario,
            steps=args.steps,
            scale=args.scale,
            inject_rate=args.inject_rate,
            seed=args.seed,
            phase_precision=precision,
            mode=args.mode,
        )
    except SimulationAborted as aborted:
        print(aborted.post_mortem())
        return 1
    report = sim.health_report(args.scenario)
    print(report.render(max_log_lines=args.max_log_lines))
    return 0 if report.final_state_finite else 1


def _cmd_bench(args) -> int:
    import dataclasses

    from .perf.bench import BenchProtocol, render_summary, run_bench

    overrides = {}
    if args.steps is not None:
        overrides["census_free_steps"] = args.steps
        overrides["census_free_warmup"] = max(1, args.steps // 4)
    if args.census_steps is not None:
        overrides["census_steps"] = args.census_steps
        overrides["census_warmup"] = max(1, args.census_steps // 4)
    if args.kernel_iters is not None:
        overrides["kernel_iters"] = args.kernel_iters
    protocol = dataclasses.replace(BenchProtocol(), **overrides)

    payload = run_bench(
        scenarios=args.scenarios,
        quick=args.quick,
        protocol=protocol,
        output_dir=args.output,
        baseline_path=args.baseline,
        workers=args.workers,
        kernel=not args.no_kernel,
        # A custom step protocol changes what one timed loop means, so
        # only compare against the recorded baseline on the default one
        # (an explicit --baseline overrides the caution).
        compare=not overrides or args.baseline is not None,
        obs_overhead=not args.no_obs_overhead,
    )
    print(render_summary(payload))
    return 0


def _cmd_trace(args) -> int:
    from .obs import JsonlWriter, Tracer, render_summary, summarize_file

    if args.scenario is None:
        if not args.summarize:
            print("trace: give a SCENARIO to record, or --summarize FILE "
                  "to analyse an existing trace", file=sys.stderr)
            return 2
        print(render_summary(summarize_file(args.summarize)))
        return 0

    from .experiments.table1 import PRESET_PRECISIONS
    from .fp import FPContext
    from .tuning import ControlledSimulation, PrecisionController
    from .workloads import build

    precision = dict(PRESET_PRECISIONS.get(args.scenario, {}))
    if args.lcp_bits is not None:
        precision["lcp"] = args.lcp_bits
    if args.narrow_bits is not None:
        precision["narrow"] = args.narrow_bits
    precision = {k: v for k, v in precision.items() if v < 23}

    census = not args.no_census
    ctx = FPContext(dict(precision), mode=args.mode, census=census)
    world = build(args.scenario, ctx=ctx, scale=args.scale,
                  seed=args.seed)
    tracer = Tracer(JsonlWriter(args.out))
    tracer.meta(scenario=args.scenario, steps=args.steps,
                precision=dict(precision), mode=args.mode, census=census)
    controller = (PrecisionController(ctx, precision)
                  if not args.no_adaptive and precision else None)
    exit_code = 0
    try:
        if args.guarded:
            from .robustness import (
                FaultInjector,
                GuardedSimulation,
                SimulationAborted,
            )

            injector = (FaultInjector(rate=args.inject_rate,
                                      seed=args.seed or 0)
                        if args.inject_rate > 0 else None)
            sim = GuardedSimulation(world, injector=injector,
                                    controller=controller,
                                    observer=tracer)
            try:
                sim.run(args.steps)
            except SimulationAborted as aborted:
                print(aborted.post_mortem())
                exit_code = 1
        else:
            tracer.attach(world=world, controller=controller)
            if controller is not None:
                ControlledSimulation(world, controller).run(args.steps)
            else:
                for _ in range(args.steps):
                    world.step()
    finally:
        tracer.close()
    print(f"trace: {tracer.sink.events} events -> {args.out}")
    if args.summarize is not None:
        print(render_summary(summarize_file(args.summarize or args.out)))
    return exit_code


def _cmd_design(args) -> int:
    from .design import DesignQuery, run_search

    mapping = {
        "scenario": args.scenario,
        "budget_area": args.budget_area,
        "budget_energy": args.budget_energy,
        "generations": args.generations,
        "population": args.population,
        "seed": args.seed,
        "steps": args.steps,
        "scale": args.scale,
        "mode": args.mode,
        "trace_length": args.trace_length,
    }
    if args.designs:
        mapping["designs"] = args.designs
    if args.sharing:
        mapping["sharing"] = args.sharing
    sid = None
    if args.surrogate:
        from .design import surrogate_identity

        sid = surrogate_identity(args.surrogate)
    query = DesignQuery.from_mapping(
        {k: v for k, v in mapping.items() if v is not None},
        surrogate_id=sid)

    start = time.perf_counter()
    result = run_search(query, surrogate_path=args.surrogate,
                        workers=args.workers,
                        use_cache=not args.no_cache)
    wall = time.perf_counter() - start
    payload = result.payload()
    section = payload["result"]

    budgets = query.space.budgets
    caps = ", ".join(filter(None, [
        f"area <= {budgets.area_mm2} mm^2" if budgets.area_mm2 else "",
        f"energy <= {budgets.energy_nj} nJ" if budgets.energy_nj else "",
    ])) or "unconstrained"
    print(f"design search: {query.space.scenario}, {caps}, "
          f"seed {query.seed}, {query.generations} generation(s) x "
          f"{query.population}")
    print(f"  {section['evaluations']} evaluation(s), "
          f"{section['verifications']} cold-search verification(s) in "
          f"{wall:.1f}s (query {payload['query_key']})")
    headers = ["design", "share", "lcp", "narrow", "area mm^2",
               "energy nJ", "thr x", "margin"]
    rows = [[
        m["point"]["design"], m["point"]["cores_per_fpu"],
        m["point"]["lcp_bits"], m["point"]["narrow_bits"],
        f"{m['area_mm2']:.3f}", f"{m['energy_nj']:.4f}",
        f"{1 + m['throughput']:.3f}", m["margin"],
    ] for m in section["front"]]
    from .experiments.report import render_table

    print(render_table(
        headers, rows,
        title=f"Pareto front ({section['front_size']} verified "
              f"member(s))"))
    for pp in section["paper_points"]:
        point = pp["point"]
        print(f"  paper {point['design']} x{point['cores_per_fpu']} "
              f"@({point['lcp_bits']},{point['narrow_bits']}): "
              f"{pp['status']}")
    path = result.write_artifact(args.out)
    print(f"front artifact: {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import ServiceConfig, serve_forever

    observer = None
    if args.trace:
        from .obs import JsonlWriter, Tracer

        observer = Tracer(JsonlWriter(args.trace))
        observer.meta(scenario="serve", steps=0, precision={},
                      mode="service", census=False)
    if args.shards:
        from .serve import GatewayConfig, gateway_forever

        gateway_config = GatewayConfig(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            shards=args.shards,
            runtime_dir=args.runtime_dir,
            max_sessions=args.max_sessions,
            workers=args.workers,
            batch_window=args.batch_window,
            step_budget=args.step_budget,
            journal_every=args.journal_every,
            drain_grace=args.drain_grace,
            allow_chaos=args.allow_chaos,
            trace_path=args.trace,
            design_surrogate=args.design_surrogate,
        )
        try:
            asyncio.run(gateway_forever(gateway_config,
                                        observer=observer))
        except KeyboardInterrupt:
            print("repro-serve: shutting down")
        finally:
            if observer is not None:
                observer.close()
        return 0

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        max_sessions=args.max_sessions,
        workers=args.workers,
        batch_window=args.batch_window,
        max_pending_per_session=args.max_pending,
        max_queue_depth=args.max_queue,
        step_budget=args.step_budget,
        trace_path=args.trace,
        journal_dir=args.journal_dir,
        journal_every=args.journal_every,
        drain_grace=args.drain_grace,
        allow_chaos=args.allow_chaos,
        fleet_step=not args.no_fleet_step,
        design_surrogate=args.design_surrogate,
    )
    try:
        asyncio.run(serve_forever(config, observer=observer))
    except KeyboardInterrupt:
        print("repro-serve: shutting down")
    finally:
        if observer is not None:
            observer.close()
    return 0


def _cmd_serve_bench(args) -> int:
    from .serve import (
        ServeBenchConfig,
        render_serve_summary,
        run_serve_bench,
    )

    payload = run_serve_bench(ServeBenchConfig(
        clients=args.clients,
        steps_per_client=args.steps,
        scenario=args.scenario,
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        batch_window=args.batch_window,
        fidelity_steps=args.fidelity_steps,
        output_dir=args.output,
        fleet_step=not args.no_fleet_step,
        fleet_compare=args.fleet_compare or args.fleet_min_speedup > 0,
        fleet_min_speedup=args.fleet_min_speedup,
        chaos=args.chaos,
        chaos_inject_rate=args.chaos_inject_rate,
        chaos_kill_every=args.chaos_kill_every,
        chaos_recovery_p95_s=args.chaos_recovery_p95,
        shards=args.shards,
        shard_baseline=not args.no_shard_baseline,
        shard_min_scaling=args.shard_min_scaling,
        shard_migrations=args.shard_migrations,
    ))
    print(render_serve_summary(payload))
    return 0 if payload["ok"] else 1


def _cmd_artifact(name: str, args=None) -> int:
    from .experiments import (
        figure5,
        figure6,
        figure7,
        figure8,
        table1,
        table3,
        table4,
        table5,
        table8,
    )

    if name == "table1":
        surrogate = getattr(args, "surrogate", None)
        use_cache = not getattr(args, "no_cache", False) and not surrogate
        result = table1.compute_table1(surrogate=surrogate,
                                       use_cache=use_cache)
        print(table1.render(result))
        if result.probes is not None:
            line = f"search probes: {result.probes} candidate widths"
            if surrogate:
                line += f" (warm-started from {surrogate})"
            print(line)
    elif name == "table3":
        print(table3.render(table3.compute_table3()))
    elif name == "table4":
        print(table4.render(table4.compute_table4()))
    elif name == "table5":
        print(table5.render(table5.compute_table5()))
    elif name == "table8":
        print(table8.render(table8.compute_table8()))
    elif name == "figure5":
        result = figure5.compute_figure5()
        print(figure5.render(result, "lcp"))
        print()
        print(figure5.render(result, "narrow"))
        print()
        print(figure5.paper_summary(result))
    elif name == "figure6":
        print(figure6.render_cores(figure6.compute_core_counts()))
        print()
        print(figure6.render_energy(figure6.compute_energy()))
    elif name == "figure7":
        result = figure7.compute_figure7()
        print(figure7.render(result, "lcp"))
        print()
        print(figure7.render(result, "narrow"))
    elif name == "figure8":
        result = figure8.compute_figure8()
        print(figure8.render(result, "lcp"))
        print()
        print(figure8.render(result, "narrow"))
    else:  # pragma: no cover - argparse restricts choices
        return 1
    return 0


ARTIFACTS = ["table1", "table3", "table4", "table5", "table8",
             "figure5", "figure6", "figure7", "figure8"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive precision reduction for physics "
                    "acceleration (MICRO 2007) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("scenarios", help="list the workloads")
    _add_run_parser(sub)
    _add_tune_parser(sub)
    _add_health_parser(sub)
    _add_bench_parser(sub)
    _add_trace_parser(sub)
    _add_serve_parser(sub)
    _add_serve_bench_parser(sub)
    _add_surrogate_parser(sub)
    _add_design_parser(sub)
    for artifact in ARTIFACTS:
        p = sub.add_parser(artifact, help=f"regenerate paper {artifact}")
        if artifact == "table1":
            p.add_argument("--surrogate", default=None, metavar="MODEL",
                           help="warm-start every search cell from this "
                                "trained surrogate artifact (bits are "
                                "identical; probe count drops)")
            p.add_argument("--no-cache", action="store_true",
                           help="recompute even if the grid is cached")

    args = parser.parse_args(argv)
    from .design.space import DesignSpaceError
    from .workloads import UnknownScenarioError

    try:
        if args.command == "scenarios":
            return _cmd_scenarios()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "tune":
            return _cmd_tune(args)
        if args.command == "health":
            return _cmd_health(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "serve-bench":
            return _cmd_serve_bench(args)
        if args.command == "surrogate":
            return _cmd_surrogate(args)
        if args.command == "design":
            return _cmd_design(args)
        return _cmd_artifact(args.command, args)
    except UnknownScenarioError as exc:
        # A typo'd scenario is usage error 2 (and one clean line), not a
        # traceback — remote serve clients get the same message inline.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except DesignSpaceError as exc:
        # Nonsense design inputs (negative budget, unknown L1 design,
        # zero generations) are usage error 2 with the same typed
        # message the serve layer returns as bad_request.
        print(f"error: {exc.detail}", file=sys.stderr)
        return 2


def console() -> int:
    """Console-script entry: exits quietly when the pipe closes early."""
    try:
        return main()
    except BrokenPipeError:
        import os

        # Piping into `head` is normal CLI usage, not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(console())
