"""The eight PhysicsBench-equivalent workloads."""

from .scenarios import (
    DEFAULT_SEED,
    DEFAULT_STEPS,
    SCENARIO_ABBREVIATIONS,
    SCENARIO_NAMES,
    UnknownScenarioError,
    build,
    default_steps,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_STEPS",
    "SCENARIO_ABBREVIATIONS",
    "SCENARIO_NAMES",
    "UnknownScenarioError",
    "build",
    "default_steps",
]
