"""PhysicsBench-equivalent scenarios (paper Section 3).

The paper evaluates on the eight PhysicsBench 2 scenarios — "a set of
eight physical scenarios that span different physical actions and
situations, covering a wide range of game genres".  The original suite is
a set of ODE scenes; these builders recreate each scenario's *physical
character* on our engine (see DESIGN.md, substitutions):

=============  =====================================================
Breakable      brick wall broken apart by a projectile
Continuous     a steady stream of objects falling onto the ground
Deformable     cloth draping over an obstacle
Everything     a mixture of all of the above in one scene
Explosions     a stack of crates blown apart by a scheduled blast
Highspeed      very fast projectiles striking resting objects
Periodic       pendulums swinging under articulation constraints
Ragdoll        articulated figures collapsing onto the ground
=============  =====================================================

Every builder takes ``scale`` to shrink/grow body counts (tests use small
scales, benchmarks the default) and returns a ready-to-step
:class:`~repro.physics.World`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from ..fp.context import FPContext
from ..physics import Cloth, Explosion, World
from ..physics.joints import WORLD

__all__ = [
    "SCENARIO_NAMES",
    "SCENARIO_ABBREVIATIONS",
    "DEFAULT_SEED",
    "UnknownScenarioError",
    "build",
    "default_steps",
]


class UnknownScenarioError(ValueError):
    """A scenario name :func:`build` does not know.

    Subclasses :class:`ValueError` so existing callers keep working; the
    CLI (and the serving layer's ``create`` endpoint) catch this type
    specifically to return a clean error instead of a traceback.
    """

#: Paper Table 1/4 order.
SCENARIO_NAMES = [
    "breakable",
    "continuous",
    "deformable",
    "everything",
    "explosions",
    "highspeed",
    "periodic",
    "ragdoll",
]

#: Table 4 abbreviations.
SCENARIO_ABBREVIATIONS = {
    "breakable": "Bre",
    "continuous": "Con",
    "deformable": "Def",
    "everything": "Eve",
    "explosions": "Exp",
    "highspeed": "Hig",
    "periodic": "Per",
    "ragdoll": "Rag",
}

#: 30 frames x 3 substeps, the paper's believability window.
DEFAULT_STEPS = 90


def default_steps(frames: int = 30) -> int:
    """Simulation steps for a frame count at the paper's 3 steps/frame."""
    return 3 * frames


def _count(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


# ----------------------------------------------------------------------
# Scene fragments
# ----------------------------------------------------------------------
def _add_wall(world: World, rows: int, cols: int, brick=(0.4, 0.25, 0.25),
              origin=(0.0, 0.0, 0.0), mass: float = 1.5) -> List[int]:
    """A running-bond brick wall standing on y = origin.y."""
    hx, hy, hz = brick
    bodies = []
    ox, oy, oz = origin
    for r in range(rows):
        stagger = (r % 2) * hx
        for c in range(cols):
            x = ox + c * 2 * hx * 1.01 + stagger - cols * hx
            y = oy + hy + r * 2 * hy * 1.005
            bodies.append(
                world.add_box([x, y, oz], [hx, hy, hz], mass,
                              friction=0.6, restitution=0.05))
    return bodies


def _add_ragdoll(world: World, base=(0.0, 1.6, 0.0)) -> List[int]:
    """A six-body articulated figure (torso, head, two arms, two legs)."""
    bx, by, bz = base
    torso = world.add_box([bx, by, bz], [0.18, 0.3, 0.12], 6.0,
                          friction=0.6, restitution=0.05)
    head = world.add_sphere([bx, by + 0.45, bz], 0.13, 1.2,
                            friction=0.6, restitution=0.05)
    arm_l = world.add_box([bx - 0.36, by + 0.15, bz], [0.18, 0.06, 0.06],
                          1.0, friction=0.6, restitution=0.05)
    arm_r = world.add_box([bx + 0.36, by + 0.15, bz], [0.18, 0.06, 0.06],
                          1.0, friction=0.6, restitution=0.05)
    leg_l = world.add_box([bx - 0.1, by - 0.62, bz], [0.07, 0.32, 0.07],
                          2.0, friction=0.6, restitution=0.05)
    leg_r = world.add_box([bx + 0.1, by - 0.62, bz], [0.07, 0.32, 0.07],
                          2.0, friction=0.6, restitution=0.05)

    joints = world.joints
    bodies = world.bodies
    joints.add_ball(bodies, torso, head, [bx, by + 0.32, bz])
    joints.add_ball(bodies, torso, arm_l, [bx - 0.19, by + 0.15, bz])
    joints.add_ball(bodies, torso, arm_r, [bx + 0.19, by + 0.15, bz])
    joints.add_ball(bodies, torso, leg_l, [bx - 0.1, by - 0.31, bz])
    joints.add_ball(bodies, torso, leg_r, [bx + 0.1, by - 0.31, bz])
    return [torso, head, arm_l, arm_r, leg_l, leg_r]


def _add_pendulum(world: World, anchor=(0.0, 3.0, 0.0), links: int = 2,
                  swing: float = 0.9) -> List[int]:
    """A chain of spheres ball-jointed to a world anchor, set swinging."""
    ax, ay, az = anchor
    length = 0.5
    bodies = []
    prev = WORLD
    # Chain hangs at an initial angle so it swings periodically.
    dx, dy = math.sin(swing), -math.cos(swing)
    px, py = ax, ay
    for k in range(links):
        px += dx * length
        py += dy * length
        body = world.add_sphere([px, py, az], 0.12, 1.0,
                                friction=0.3, restitution=0.1)
        world.joints.add_ball(
            world.bodies, body, prev,
            [px - dx * length / 2, py - dy * length / 2, az])
        bodies.append(body)
        prev = body
    return bodies


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def _breakable(world: World, scale: float,
               rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.8)
    rows = _count(4, scale, minimum=2)
    cols = _count(3, scale, minimum=2)
    _add_wall(world, rows, cols)
    world.add_sphere([0.0, 0.8, -6.0], 0.3, 4.0, linvel=[0.0, 1.0, 14.0],
                     friction=0.4, restitution=0.2)


def _continuous(world: World, scale: float,
                rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.5)
    n = _count(10, scale, minimum=3)
    for k in range(n):
        x = float(rng.uniform(-1.2, 1.2))
        z = float(rng.uniform(-1.2, 1.2))
        y = 0.45 + 0.35 * k  # staggered heights: a stream of arrivals
        world.add_sphere([x, y, z], 0.25, 0.8, friction=0.5,
                         restitution=0.4)


def _deformable(world: World, scale: float,
                rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.6)
    world.add_sphere([0.0, 0.8, 0.0], 0.8, 0.0)  # static obstacle
    side = _count(8, scale, minimum=4)
    cloth = Cloth(
        origin=(-side * 0.25 / 2, 2.0, side * 0.25 / 2),
        rows=side, cols=side, spacing=0.25,
    )
    world.add_cloth(cloth)


def _everything(world: World, scale: float,
                rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.7)
    _add_wall(world, _count(3, scale, minimum=2), _count(2, scale, 2),
              origin=(-2.0, 0.0, 0.0))
    _add_ragdoll(world, base=(2.0, 1.6, 0.5))
    cloth = Cloth(origin=(1.0, 1.5, -1.5), rows=_count(5, scale, 3),
                  cols=_count(5, scale, 3), spacing=0.22,
                  pinned=[(0, 0), (0, _count(5, scale, 3) - 1)])
    world.add_cloth(cloth)
    world.add_sphere([-2.0, 0.6, -5.0], 0.3, 3.0, linvel=[0.0, 1.0, 10.0],
                     friction=0.4, restitution=0.2)
    world.schedule_explosion(
        Explosion(center=[2.0, 0.3, 0.5], impulse=8.0, radius=2.5,
                  trigger_step=45))


def _explosions(world: World, scale: float,
                rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.7)
    side = _count(3, scale, minimum=2)
    for i in range(side):
        for j in range(side):
            for k in range(max(1, side - 1)):
                world.add_box(
                    [i * 0.62 - side * 0.3, 0.3 + k * 0.62, j * 0.62],
                    [0.3, 0.3, 0.3], 1.0, friction=0.6, restitution=0.1)
    world.schedule_explosion(
        Explosion(center=[0.0, 0.2, side * 0.3], impulse=12.0, radius=4.0,
                  trigger_step=30))


def _highspeed(world: World, scale: float,
               rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.5)
    _add_wall(world, _count(2, scale, 2), _count(2, scale, 2))
    n = _count(3, scale, minimum=2)
    for k in range(n):
        world.add_sphere(
            [-0.8 + 0.8 * k, 1.0 + 0.3 * k, -8.0], 0.2, 1.5,
            linvel=[0.0, 0.0, 35.0], friction=0.3, restitution=0.3)


def _periodic(world: World, scale: float,
              rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.5)
    n = _count(3, scale, minimum=2)
    for k in range(n):
        # Newton's-cradle pairs: a swinging chain strikes a hanging one
        # near the bottom of its arc every pass, so both studied phases
        # see recurring, periodic work.
        anchor = (k * 2.6 - n * 1.3, 3.0, k * 1.5)
        _add_pendulum(world, anchor=anchor, links=2,
                      swing=0.9 - 0.2 * (k % 3))
        _add_pendulum(world, anchor=(anchor[0] + 0.27, 3.0, anchor[2]),
                      links=2, swing=0.0)


def _ragdoll(world: World, scale: float,
             rng: np.random.Generator) -> None:
    world.add_ground_plane(0.0, friction=0.7)
    n = _count(2, scale, minimum=1)
    for k in range(n):
        _add_ragdoll(world, base=(k * 1.5 - n * 0.75, 1.6 + 0.3 * k,
                                  k * 0.4))


def _add_capsule_ragdoll(world: World, base=(0.0, 1.9, 0.0)) -> List[int]:
    """A richer articulated figure: capsule limbs with hinged knees."""
    bx, by, bz = base
    torso = world.add_capsule([bx, by, bz], 0.16, 0.25, 6.0,
                              friction=0.6, restitution=0.05)
    head = world.add_sphere([bx, by + 0.55, bz], 0.13, 1.2,
                            friction=0.6, restitution=0.05)
    legs = []
    for side in (-1, 1):
        x = bx + side * 0.1
        thigh = world.add_capsule([x, by - 0.66, bz], 0.07, 0.18, 1.6,
                                  friction=0.6, restitution=0.05)
        shin = world.add_capsule([x, by - 1.16, bz], 0.06, 0.17, 1.2,
                                 friction=0.6, restitution=0.05)
        world.joints.add_ball(world.bodies, torso, thigh,
                              [x, by - 0.41, bz])
        # Hinged knee about the lateral (x) axis.
        world.joints.add_hinge(world.bodies, thigh, shin,
                               [x, by - 0.91, bz], [1.0, 0.0, 0.0])
        legs += [thigh, shin]
    world.joints.add_ball(world.bodies, torso, head, [bx, by + 0.41, bz])
    return [torso, head] + legs


def _ragdoll_capsules(world: World, scale: float,
                      rng: np.random.Generator) -> None:
    """Bonus (non-paper) workload exercising capsules and hinges."""
    world.add_ground_plane(0.0, friction=0.7)
    n = _count(2, scale, minimum=1)
    for k in range(n):
        _add_capsule_ragdoll(world, base=(k * 1.6 - n * 0.8, 1.9 + 0.3 * k,
                                          k * 0.5))


_BUILDERS: Dict[str, Callable[[World, float, np.random.Generator],
                              None]] = {
    "breakable": _breakable,
    "continuous": _continuous,
    "deformable": _deformable,
    "everything": _everything,
    "explosions": _explosions,
    "highspeed": _highspeed,
    "periodic": _periodic,
    "ragdoll": _ragdoll,
    # Extra workload (not part of the paper's eight, hence not in
    # SCENARIO_NAMES): capsule-limbed, hinge-kneed ragdolls.
    "ragdoll_capsules": _ragdoll_capsules,
}

#: PhysicsBench calls the most complex scenario "Mix".
_ALIASES = {"mix": "everything"}


#: Seed the paper-artifact runs use (the historical hard-wired value).
DEFAULT_SEED = 7


def build(
    name: str,
    ctx: Optional[FPContext] = None,
    scale: float = 1.0,
    solver=None,
    seed: Optional[int] = None,
) -> World:
    """Construct a named scenario world.

    Parameters
    ----------
    name:
        One of :data:`SCENARIO_NAMES` (case-insensitive; "mix" aliases
        "everything").
    ctx:
        FP context to simulate with; defaults to a fresh full-precision
        context.
    scale:
        Body-count multiplier (1.0 = benchmark size).
    solver:
        Optional :class:`~repro.physics.SolverParams` override (e.g. the
        Gauss-Seidel scheme for solver ablations).
    seed:
        Seed for the builders' placement randomness.  ``None`` keeps the
        historical :data:`DEFAULT_SEED`, so paper artifacts and cached
        references are unchanged; fault-injection campaigns pass their
        campaign seed through here for end-to-end reproducibility.
    """
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        builder = _BUILDERS[key]
    except KeyError:
        valid = ", ".join(sorted(set(_BUILDERS) | set(_ALIASES)))
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; valid scenarios: {valid}"
        ) from None
    world = World(ctx=ctx, solver=solver)
    rng = np.random.default_rng(DEFAULT_SEED if seed is None else seed)
    builder(world, scale, rng)
    return world
