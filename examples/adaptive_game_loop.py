#!/usr/bin/env python
"""A game-style loop with dynamic precision adaptation (paper Section 4.2).

An "explosions" level runs under the :class:`PrecisionController`: the
physics normally executes at the tuned minimum precision, but when the
scheduled blast (an external energy injection) is followed by any
numerically suspicious energy drift, the controller throttles the
mantissa width up to full precision and then decays back down one bit
per step.  The printed trace shows the control register in action.

Run:  python examples/adaptive_game_loop.py
"""

from repro.fp import FPContext
from repro.tuning import ControlledSimulation, PrecisionController
from repro.workloads import build


def main() -> None:
    register = {"lcp": 8, "narrow": 10}
    ctx = FPContext(mode="jam", census=False)
    world = build("explosions", ctx=ctx, scale=0.8)
    controller = PrecisionController(ctx, register, threshold=0.10)
    sim = ControlledSimulation(world, controller)

    frames = 25
    print("frame  lcp-bits  narrow-bits  energy(J)   events")
    for frame in range(frames):
        for _ in range(3):  # the paper's 3 substeps per frame
            sim.step()
        record = world.monitor.records[-1]
        events = []
        recent = controller.history[-3:]
        if any(log.violation for log in recent):
            events.append("THROTTLE->full")
        if any(log.reexecuted for log in recent):
            events.append("re-executed")
        if any(e.trigger_step // 3 == frame for e in world.explosions):
            events.append("BOOM (external energy, no throttle needed)")
        print(f"{frame:5d}  {controller.current_precision('lcp'):8d}  "
              f"{controller.current_precision('narrow'):11d}  "
              f"{record.total:9.2f}   {' '.join(events)}")

    print()
    print(f"violations: {controller.violations}, "
          f"fail-safe re-executions: {controller.reexecutions}")
    print(f"energy injected by the blast: "
          f"{world.monitor.injected_total:.2f} J "
          "(excluded from the divergence signal)")


if __name__ == "__main__":
    main()
