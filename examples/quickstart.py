#!/usr/bin/env python
"""Quickstart: precision-reduced physics in a dozen lines.

Drops a small stack of crates plus a ball, simulates one second twice —
once at full precision and once with the paper's tuned per-phase
mantissa widths (jamming) — and shows that the reduced run stays
*believable*: the energy trajectories agree within the paper's 10 %
threshold while most FP work ran at a fraction of the mantissa.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.fp import FPContext
from repro.physics import World


def build_scene(ctx: FPContext) -> World:
    world = World(ctx=ctx)
    world.add_ground_plane(0.0, friction=0.7)
    for level in range(3):
        world.add_box([0.0, 0.5 + 1.01 * level, 0.0], [0.5, 0.5, 0.5],
                      mass=2.0)
    world.add_sphere([-4.0, 1.2, 0.0], 0.4, mass=3.0,
                     linvel=[6.0, 0.0, 0.0])
    return world


def simulate(ctx: FPContext, steps: int = 100) -> np.ndarray:
    world = build_scene(ctx)
    for _ in range(steps):
        world.step()
    return world.monitor.conserved_series()


def main() -> None:
    reference = simulate(FPContext(census=False))

    # The control register: LCP solved with 10 mantissa bits, contact
    # generation with 12, everything else at full precision.  (These are
    # this scene's believable minimums; repro.tuning.minimum_precision
    # finds them automatically.)
    ctx = FPContext({"lcp": 10, "narrow": 12}, mode="jam", census=False)
    reduced = simulate(ctx)

    scale = max(np.ptp(reference), 1.0)
    deviation = float(np.abs(reduced - reference).max()) / scale
    print("Quickstart: 3-crate stack hit by a ball, 100 steps")
    print(f"  final energy, full precision : {reference[-1]:10.3f} J")
    print(f"  final energy, 10/12-bit run  : {reduced[-1]:10.3f} J")
    print(f"  max energy deviation         : {100 * deviation:9.2f} %"
          f"   (believability threshold: 10 %)")
    verdict = "BELIEVABLE" if deviation <= 0.10 else "NOT believable"
    print(f"  verdict                      : {verdict}")


if __name__ == "__main__":
    main()
