#!/usr/bin/env python
"""Explore the hierarchical-FPU design space for one workload.

Characterizes the Ragdoll scenario's LCP phase (op mix + trivialization
rates from an instrumented run), then sweeps L1 FPU designs and L2
sharing degrees through the timing/area model: the same trade-off the
paper's Figure 5 makes — per-core IPC falls with sharing, but the freed
area buys cores.

Run:  python examples/hfpu_design_space.py
"""

from repro.arch import (
    ALL_DESIGNS,
    CONJOIN,
    baseline_throughput,
    evaluate_config,
    mini_fpu,
)
from repro.arch.trace import PhaseWorkload
from repro.experiments.runcache import census_stats

SCENARIO = "ragdoll"
PRECISION = {"lcp": 9, "narrow": 10}  # tuned register for this scenario
FPU_AREA = 1.0  # mm^2


def main() -> None:
    print(f"Characterizing {SCENARIO!r} (LCP at "
          f"{PRECISION['lcp']} mantissa bits)...")
    full = census_stats(SCENARIO, None, "jam", steps=45, scale=0.8)
    reduced = census_stats(SCENARIO, PRECISION, "jam", steps=45, scale=0.8)
    workload = PhaseWorkload.from_censuses("lcp", PRECISION["lcp"], full,
                                           reduced)
    for op, profile in workload.ops.items():
        print(f"  {op:3s}: {100 * profile.share:5.1f}% of FP ops, "
              f"trivial {100 * profile.conv_trivial_rate:4.1f}% (conv) / "
              f"{100 * profile.ext_trivial_rate:4.1f}% (all conditions)")

    base = baseline_throughput(workload)
    print(f"\nbaseline: 128 private-FPU cores, aggregate throughput "
          f"{base:.1f} instructions/cycle")
    print(f"\n{'design':14s} {'share':>6s} {'cores':>6s} {'IPC':>7s} "
          f"{'vs baseline':>12s}")
    for design in list(ALL_DESIGNS) + [mini_fpu(1), mini_fpu(4)]:
        for sharing in (1, 2, 4, 8):
            if design.mini_shared_by > sharing:
                continue
            r = evaluate_config(workload, design, FPU_AREA, sharing,
                                baseline=base)
            print(f"{design.name:14s} {sharing:>6d} {r.cores:>6d} "
                  f"{r.per_core_ipc:>7.3f} "
                  f"{r.improvement_percent:>+11.1f}%")

    best = max(
        (evaluate_config(workload, d, FPU_AREA, n, baseline=base)
         for d in ALL_DESIGNS for n in (1, 2, 4, 8)),
        key=lambda r: r.improvement,
    )
    print(f"\nbest low-overhead config: {best.design_name} sharing "
          f"{best.cores_per_fpu} cores/FPU -> "
          f"{best.improvement_percent:+.1f}% (paper's pick: Lookup + "
          "Reduced Triv, 4 cores/FPU)")


if __name__ == "__main__":
    main()
