#!/usr/bin/env python
"""Cloth + breakable wall: a composite interactive-entertainment scene.

Builds a scene from the engine's public API directly (rather than via the
workload presets): a banner of cloth pinned above a brick wall, with a
cannonball fired through the wall.  Renders a coarse ASCII side-view
every half second so you can watch the wall break, and reports the
trivialization census that makes the paper's L1 FPUs profitable.

Run:  python examples/cloth_and_wall.py
"""

import numpy as np

from repro.fp import FPContext
from repro.physics import Cloth, World


def draw_side_view(world: World, width: int = 60, height: int = 14):
    """Crude x/y ASCII projection of bodies and cloth particles."""
    canvas = [[" "] * width for _ in range(height)]
    xs = np.linspace(-5.0, 5.0, width)

    def plot(x, y, char):
        col = int((x + 5.0) / 10.0 * (width - 1))
        row = height - 1 - int(y / 4.0 * (height - 1))
        if 0 <= col < width and 0 <= row < height:
            canvas[row][col] = char

    n = world.bodies.count
    for k in range(n):
        x, y, _z = world.bodies.pos[k]
        plot(float(x), float(y), "#" if k < n - 1 else "o")
    for cloth in world.cloths:
        for p in cloth.pos:
            plot(float(p[0]), float(p[1]), ".")
    print("\n".join("".join(row) for row in canvas))
    print("-" * width)


def main() -> None:
    ctx = FPContext({"lcp": 10, "narrow": 12}, mode="jam")
    world = World(ctx=ctx)
    world.add_ground_plane(0.0, friction=0.8)

    # The wall: 3 rows of 4 bricks.
    for row in range(3):
        for col in range(4):
            world.add_box(
                [col * 0.85 - 1.3 + (row % 2) * 0.4, 0.4 + row * 0.81, 0.0],
                [0.4, 0.4, 0.4], mass=1.5, friction=0.6)

    # A cloth banner pinned at both top corners above the wall.
    banner = Cloth(origin=(-1.0, 3.6, 0.0), rows=4, cols=8, spacing=0.26,
                   pinned=[(0, 0), (0, 7)])
    world.add_cloth(banner)

    # The cannonball (added last so the renderer draws it as 'o').
    world.add_sphere([-4.5, 1.0, 0.0], 0.35, mass=5.0,
                     linvel=[12.0, 1.0, 0.0], friction=0.4)

    for frame in range(5):
        for _ in range(50):
            world.step()
        print(f"t = {world.step_count * world.dt:.1f} s, "
              f"contacts: {world.last_contact_count}, "
              f"islands: {world.island_count}")
        draw_side_view(world)

    lcp = ctx.phase_totals("lcp")
    narrow = ctx.phase_totals("narrow")
    print(f"LCP FP ops: {lcp.total}, trivialized "
          f"{100 * lcp.extended_trivial / max(lcp.total, 1):.0f}% "
          "(all conditions at 10 bits)")
    print(f"Narrow-phase FP ops: {narrow.total}, trivialized "
          f"{100 * narrow.extended_trivial / max(narrow.total, 1):.0f}%")


if __name__ == "__main__":
    main()
