"""Tests for capsule geometry, inertia and collisions."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import World, capsule_inertia, sphere_inertia
from repro.physics.narrowphase import (
    _closest_between_segments,
    _closest_on_segment,
)
from repro.physics.shapes import GeomStore, ShapeType


def make_world():
    return World(ctx=FPContext(census=False))


def contacts_of(world):
    from repro.physics import broadphase, narrowphase
    world.bodies.ensure_world_row()
    world.bodies.refresh_derived(world.ctx)
    aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                    world.bodies.view("rot"))
    pairs = broadphase.candidate_pairs(world.geoms, aabbs)
    return narrowphase.generate_contacts(world.ctx, world.bodies,
                                         world.geoms, pairs)


class TestSegmentMath:
    def test_closest_on_segment_interior(self):
        p = _closest_on_segment(np.array([0.0, 0, 0]),
                                np.array([2.0, 0, 0]),
                                np.array([1.0, 1.0, 0]))
        assert np.allclose(p, [1.0, 0, 0])

    def test_closest_on_segment_clamped(self):
        p = _closest_on_segment(np.array([0.0, 0, 0]),
                                np.array([2.0, 0, 0]),
                                np.array([5.0, 1.0, 0]))
        assert np.allclose(p, [2.0, 0, 0])

    def test_degenerate_segment(self):
        p = _closest_on_segment(np.array([1.0, 1, 1]),
                                np.array([1.0, 1, 1]),
                                np.array([5.0, 0, 0]))
        assert np.allclose(p, [1.0, 1, 1])

    def test_segments_crossing(self):
        qa, qb = _closest_between_segments(
            np.array([-1.0, 0, 0]), np.array([1.0, 0, 0]),
            np.array([0.0, -1, 1]), np.array([0.0, 1, 1]))
        assert np.allclose(qa, [0, 0, 0], atol=1e-9)
        assert np.allclose(qb, [0, 0, 1], atol=1e-9)

    def test_parallel_segments(self):
        qa, qb = _closest_between_segments(
            np.array([0.0, 0, 0]), np.array([2.0, 0, 0]),
            np.array([0.0, 1, 0]), np.array([2.0, 1, 0]))
        assert np.linalg.norm(qa - qb) == pytest.approx(1.0)

    def test_endpoint_case(self):
        qa, qb = _closest_between_segments(
            np.array([0.0, 0, 0]), np.array([1.0, 0, 0]),
            np.array([3.0, 0, 0]), np.array([4.0, 0, 0]))
        assert np.allclose(qa, [1.0, 0, 0])
        assert np.allclose(qb, [3.0, 0, 0])


class TestCapsuleInertia:
    def test_reduces_to_sphere(self):
        # Zero segment length: a capsule is a sphere.
        cap = capsule_inertia(2.0, 0.5, 0.0)
        sph = sphere_inertia(2.0, 0.5)
        assert np.allclose(cap, sph, rtol=1e-5)

    def test_long_capsule_transverse_dominates(self):
        inertia = capsule_inertia(1.0, 0.1, 1.0)
        assert inertia[0] > 5 * inertia[1]
        assert inertia[0] == inertia[2]

    def test_positive(self):
        assert np.all(capsule_inertia(1.0, 0.2, 0.3) > 0)


class TestCapsuleGeometry:
    def test_store_and_aabb(self):
        geoms = GeomStore()
        geoms.add_capsule(0, 0.2, 0.5)
        pos = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        rot = np.eye(3, dtype=np.float32)[None]
        aabbs = geoms.world_aabbs(pos, rot)
        assert np.allclose(aabbs[0, 0], [0.8, 1.3, 2.8])
        assert np.allclose(aabbs[0, 1], [1.2, 2.7, 3.2])

    def test_rotated_aabb(self):
        geoms = GeomStore()
        geoms.add_capsule(0, 0.2, 0.5)
        # Rotate axis onto x.
        rot = np.array([[[0, 1, 0], [-1, 0, 0], [0, 0, 1]]],
                       dtype=np.float32)
        aabbs = geoms.world_aabbs(np.zeros((1, 3), np.float32), rot)
        assert aabbs[0, 1, 0] == pytest.approx(0.7, abs=1e-5)
        assert aabbs[0, 1, 1] == pytest.approx(0.2, abs=1e-5)


class TestCapsuleCollisions:
    def test_capsule_plane_two_contacts(self):
        world = make_world()
        world.add_ground_plane(0.0)
        # Horizontal capsule (axis on x) lying partly in the floor.
        quat = [np.cos(np.pi / 4), 0.0, 0.0, np.sin(np.pi / 4)]
        world.add_capsule([0, 0.15, 0], 0.2, 0.5, quat=quat)
        contacts = contacts_of(world)
        assert len(contacts) == 2
        assert np.allclose(contacts.depth, 0.05, atol=1e-4)
        assert np.allclose(contacts.normal[:, 1], 1.0)

    def test_upright_capsule_single_contact(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_capsule([0, 0.6, 0], 0.2, 0.5)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] == pytest.approx(0.1, abs=1e-4)

    def test_capsule_sphere(self):
        world = make_world()
        cap = world.add_capsule([0, 0, 0], 0.2, 0.5)
        sph = world.add_sphere([0.35, 0.3, 0], 0.2)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.body_a[0] == cap and contacts.body_b[0] == sph
        assert contacts.depth[0] == pytest.approx(0.05, abs=1e-4)
        assert contacts.normal[0, 0] == pytest.approx(1.0, abs=1e-4)

    def test_capsule_capsule_crossed(self):
        world = make_world()
        quat = [np.cos(np.pi / 4), 0.0, 0.0, np.sin(np.pi / 4)]
        world.add_capsule([0, 0, 0], 0.2, 0.5, quat=quat)  # along x
        world.add_capsule([0, 0.0, 0.3], 0.2, 0.5)         # along y
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] == pytest.approx(0.1, abs=1e-4)
        assert contacts.normal[0, 2] == pytest.approx(1.0, abs=1e-4)

    def test_capsule_capsule_separated(self):
        world = make_world()
        world.add_capsule([0, 0, 0], 0.2, 0.5)
        world.add_capsule([2.0, 0, 0], 0.2, 0.5)
        assert len(contacts_of(world)) == 0

    def test_capsule_box_side(self):
        world = make_world()
        box = world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        # Surface of the capsule reaches x = 0.6 - 0.2 = 0.4 < 0.5.
        cap = world.add_capsule([0.6, 0, 0], 0.2, 0.4)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.body_a[0] == box and contacts.body_b[0] == cap
        assert contacts.normal[0, 0] == pytest.approx(1.0, abs=1e-3)
        assert contacts.depth[0] == pytest.approx(0.1, abs=0.02)


class TestCapsuleDynamics:
    def test_capsule_settles_on_ground(self):
        world = make_world()
        world.add_ground_plane(0.0, friction=0.6)
        quat = [np.cos(np.pi / 4), 0.0, 0.0, np.sin(np.pi / 4)]
        world.add_capsule([0, 1.0, 0], 0.2, 0.5, 1.0, quat=quat,
                          friction=0.6)
        for _ in range(150):
            world.step()
        assert world.bodies.pos[0, 1] == pytest.approx(0.2, abs=0.05)

    def test_standing_capsule_falls_over(self):
        world = make_world()
        world.add_ground_plane(0.0, friction=0.4)
        # Slightly tilted tall capsule topples.
        tilt = 0.12
        quat = [np.cos(tilt / 2), 0.0, 0.0, np.sin(tilt / 2)]
        world.add_capsule([0, 0.72, 0], 0.15, 0.55, 1.0, quat=quat,
                          friction=0.4)
        for _ in range(300):
            world.step()
        # Ends up lying: height near the radius, axis near horizontal.
        assert world.bodies.pos[0, 1] < 0.45
        assert np.isfinite(world.bodies.pos[0]).all()

    def test_capsule_reduced_precision_stable(self):
        world = World(ctx=FPContext({"lcp": 8, "narrow": 8},
                                    census=False))
        world.add_ground_plane(0.0)
        quat = [np.cos(np.pi / 4), 0.0, 0.0, np.sin(np.pi / 4)]
        world.add_capsule([0, 0.8, 0], 0.2, 0.5, 1.0, quat=quat)
        for _ in range(120):
            world.step()
        assert np.isfinite(world.bodies.pos[0]).all()
        assert world.bodies.pos[0, 1] < 1.0
