"""Bit-identity suite for the SoA hot path and fleet-batched stepping.

The structure-of-arrays fast paths (fused whole-array kernels in the
integrator, narrow phase, LCP sweep, joints, cloth and sleep/wake
bookkeeping) promise the exact bits the legacy op-for-op loops produce.
These tests pin that promise on 20-step trajectory digests across every
scenario, and pin :class:`~repro.physics.WorldBatch` — K worlds stepped
as stacked-array passes — to per-world ``World.step()`` equivalence.
"""

import hashlib

import pytest

from repro.experiments.table1 import PRESET_PRECISIONS
from repro.fp.context import FPContext
from repro.physics import BatchIncompatible, WorldBatch, fleet_ineligibility
from repro.workloads import SCENARIO_NAMES, build

#: Enough steps for every scenario to reach contact-rich states (the
#: explosions scenario detonates at step 10, ragdolls hit the ground).
TRAJECTORY_STEPS = 20


def _build_world(name, census=False):
    ctx = FPContext(dict(PRESET_PRECISIONS[name]), census=census)
    return build(name, ctx=ctx)


def _digest(world) -> str:
    """Hash every mutable simulation array (world row included)."""
    bodies = world.bodies
    bodies.ensure_world_row()
    h = hashlib.sha256()
    h.update(str(world.step_count).encode())
    for name in ("pos", "quat", "linvel", "angvel", "asleep"):
        h.update(bodies.view(name).tobytes())
    for cloth in world.cloths:
        h.update(cloth.pos.tobytes())
        h.update(cloth.vel.tobytes())
    return h.hexdigest()


def _trajectory(world, steps=TRAJECTORY_STEPS):
    digests = []
    for _ in range(steps):
        world.step()
        digests.append(_digest(world))
    return digests


class TestSoaBitIdentity:
    """Fast vectorized step == legacy op-for-op step, bit for bit."""

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_fast_matches_reference_trajectory(self, scenario,
                                               monkeypatch):
        fast = _trajectory(_build_world(scenario))
        # Forcing fast_kernel() to None sends every phase down the
        # preserved legacy loops — the pre-SoA reference semantics.
        monkeypatch.setattr(FPContext, "fast_kernel", lambda self: None)
        reference = _trajectory(_build_world(scenario))
        assert fast == reference

    def test_reference_arm_actually_disables_fast_paths(self,
                                                        monkeypatch):
        monkeypatch.setattr(FPContext, "fast_kernel", lambda self: None)
        world = _build_world("continuous")
        assert world.ctx.fast_kernel() is None


class TestWorldBatch:
    def test_k1_equals_world_step(self):
        solo = _build_world("everything")
        member = _build_world("everything")
        fleet = WorldBatch([member])
        for _ in range(10):
            solo.step()
            fleet.step()
            assert _digest(member) == _digest(solo)

    @pytest.mark.parametrize("scenario", ["continuous", "everything",
                                          "ragdoll"])
    def test_same_family_batch_equals_sequential(self, scenario):
        # Desynchronized starts: member i is i steps ahead, so the
        # merged solve sees four genuinely different row sets.
        sequential = [_build_world(scenario) for _ in range(4)]
        batched = [_build_world(scenario) for _ in range(4)]
        for i in range(4):
            for _ in range(i):
                sequential[i].step()
                batched[i].step()
        fleet = WorldBatch(batched)
        for _ in range(8):
            for world in sequential:
                world.step()
            fleet.step()
        for ours, theirs in zip(batched, sequential):
            assert _digest(ours) == _digest(theirs)

    def test_mixed_family_batch_equals_sequential(self):
        # Different scenarios can share a fleet as long as they agree
        # on precision configuration (and dt/solver parameters).
        names = ["continuous", "ragdoll", "highspeed", "deformable"]
        precision = {"narrow": 13, "lcp": 10, "integrate": 16}

        def mk(name):
            return build(name,
                         ctx=FPContext(dict(precision), census=False))

        sequential = [mk(name) for name in names]
        batched = [mk(name) for name in names]
        fleet = WorldBatch(batched)
        for _ in range(8):
            for world in sequential:
                world.step()
            fleet.step()
        for ours, theirs in zip(batched, sequential):
            assert _digest(ours) == _digest(theirs)

    def test_census_world_is_ineligible(self):
        world = _build_world("continuous", census=True)
        assert fleet_ineligibility(world) is not None
        with pytest.raises(BatchIncompatible):
            WorldBatch([world])

    def test_observer_makes_world_ineligible(self):
        world = _build_world("continuous")
        assert fleet_ineligibility(world) is None
        world.observer = object()
        assert fleet_ineligibility(world) == "tracer attached"

    def test_precision_mismatch_is_incompatible(self):
        a = _build_world("continuous")
        b = build("continuous",
                  ctx=FPContext({"lcp": 7}, census=False))
        with pytest.raises(BatchIncompatible):
            WorldBatch([a, b])

    def test_empty_fleet_is_incompatible(self):
        with pytest.raises(BatchIncompatible):
            WorldBatch([])
