"""Tests for the multi-session simulation service (``repro.serve``)."""

import base64
import threading

import pytest

from repro.obs import NullSink, Tracer, validate_events
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    Client,
    ServeBenchConfig,
    ServeClientError,
    ServiceConfig,
    ProtocolError,
    ServiceError,
    decode_frame,
    encode_frame,
    render_serve_summary,
    run_serve_bench,
    start_in_thread,
    state_digest,
)
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.session import SessionConfig, SessionManager
from repro.workloads import build


def _capture_tracer():
    """A tracer whose sink appends every event to a shared list."""
    captured = []
    sink = NullSink()
    sink.write = lambda event: captured.append(event)
    return Tracer(sink), captured


def _server(**overrides):
    observer = overrides.pop("observer", None)
    defaults = dict(port=0, max_sessions=8)
    defaults.update(overrides)
    return start_in_thread(ServiceConfig(**defaults), observer=observer)


class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"op": "step", "session": "s1", "steps": 3}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encoded_frame_is_one_line(self):
        raw = encode_frame({"op": "ping"})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]\n")  # not an object
        with pytest.raises(ProtocolError):
            decode_frame(b"   \n")  # empty

    def test_decode_rejects_oversized_frame(self):
        blob = b'{"op": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        with pytest.raises(ProtocolError):
            decode_frame(blob)

    def test_parse_request_validates_envelope(self):
        assert parse_request({"op": "ping"}) == "ping"
        with pytest.raises(ServiceError) as err:
            parse_request({"op": "warp"})
        assert err.value.code == "unknown_op"
        with pytest.raises(ServiceError) as err:
            parse_request({"op": "step"})  # session required
        assert err.value.code == "bad_request"
        with pytest.raises(ServiceError):
            parse_request({"op": "step", "session": "s1", "steps": -1})
        with pytest.raises(ServiceError):
            parse_request({"steps": 1})  # op missing

    def test_responses_echo_correlation_id(self):
        request = {"op": "ping", "id": "xyz"}
        assert ok_response(request, pong=True)["id"] == "xyz"
        assert error_response("busy", "later", request)["id"] == "xyz"
        assert "id" not in ok_response({"op": "ping"})

    def test_error_codes_cover_service_errors(self):
        for code in ("busy", "server_full", "budget_exceeded"):
            assert code in ERROR_CODES


class TestSessionConfig:
    def test_from_frame_defaults(self):
        config = SessionConfig.from_frame({"op": "create",
                                           "scenario": "continuous"})
        assert config.scenario == "continuous"
        assert config.scale == 1.0 and config.seed is None
        assert config.precision == {} and not config.adaptive

    def test_from_frame_requires_scenario_string(self):
        with pytest.raises(ServiceError) as err:
            SessionConfig.from_frame({"op": "create"})
        assert err.value.code == "bad_request"
        with pytest.raises(ServiceError):
            SessionConfig.from_frame({"op": "create", "scenario": 7})

    def test_from_frame_validates_precision_map(self):
        with pytest.raises(ServiceError):
            SessionConfig.from_frame(
                {"scenario": "continuous", "precision": {"lcp": "six"}})
        config = SessionConfig.from_frame(
            {"scenario": "continuous",
             "precision": {"lcp": 8, "narrow": 23}})
        # full-precision (>= 23 bit) entries are dropped, like the CLI
        assert config.precision == {"lcp": 8}

    def test_from_frame_validates_step_budget(self):
        with pytest.raises(ServiceError):
            SessionConfig.from_frame(
                {"scenario": "continuous", "step_budget": "fast"})
        config = SessionConfig.from_frame(
            {"scenario": "continuous", "step_budget": 2})
        assert config.step_budget == 2.0


class TestSessionManager:
    def _config(self):
        return SessionConfig(scenario="continuous", scale=0.4, seed=3)

    def test_lifecycle(self):
        manager = SessionManager(max_sessions=2)
        session = manager.create(self._config())
        assert len(manager) == 1
        assert manager.get(session.id) is session
        result = session.step(2)
        assert result["step"] == 2 and session.steps_run == 2
        manager.close(session.id)
        assert len(manager) == 0
        with pytest.raises(ServiceError) as err:
            manager.get(session.id)
        assert err.value.code == "unknown_session"

    def test_capacity_rejected_as_server_full(self):
        manager = SessionManager(max_sessions=1)
        manager.create(self._config())
        with pytest.raises(ServiceError) as err:
            manager.create(self._config())
        assert err.value.code == "server_full"

    def test_closed_session_refuses_work(self):
        manager = SessionManager(max_sessions=1)
        session = manager.create(self._config())
        manager.close(session.id)
        with pytest.raises(ServiceError) as err:
            session.step()
        assert err.value.code == "session_closed"

    def test_evict_marks_and_notifies(self):
        tracer, captured = _capture_tracer()
        manager = SessionManager(max_sessions=1, observer=tracer)
        session = manager.create(self._config())
        manager.evict(session.id, "budget_exceeded")
        assert session.state == "evicted"
        assert manager.evicted_total == 1
        manager.evict(session.id, "budget_exceeded")  # idempotent
        assert manager.evicted_total == 1
        evicts = [e for e in captured if e["kind"] == "serve.evict"]
        assert len(evicts) == 1
        assert evicts[0]["reason"] == "budget_exceeded"

    def test_snapshot_restore_in_place(self):
        manager = SessionManager(max_sessions=1)
        session = manager.create(self._config())
        session.step(5)
        snap = session.snapshot()
        digest_before = session.describe()["digest"]
        session.step(5)
        assert session.describe()["digest"] != digest_before
        session.restore(snapshot_id=snap["snapshot"])
        assert session.describe()["digest"] == digest_before

    def test_restore_rejects_unknown_snapshot_and_bad_bytes(self):
        manager = SessionManager(max_sessions=1)
        session = manager.create(self._config())
        with pytest.raises(ServiceError) as err:
            session.restore(snapshot_id="nope")
        assert err.value.code == "unknown_snapshot"
        with pytest.raises(ServiceError) as err:
            session.restore(data=b"garbage")
        assert err.value.code == "bad_request"

    def test_restore_rejects_mismatched_scenario(self):
        manager = SessionManager(max_sessions=2)
        small = manager.create(self._config())
        big = manager.create(SessionConfig(scenario="ragdoll", scale=0.4))
        snap = small.snapshot()
        with pytest.raises(ServiceError) as err:
            big.restore(data=snap["data"])
        assert err.value.code == "bad_request"

    def test_snapshot_ring_is_bounded(self):
        from repro.serve.session import MAX_SNAPSHOTS

        manager = SessionManager(max_sessions=1)
        session = manager.create(self._config())
        first = session.snapshot()["snapshot"]
        for _ in range(MAX_SNAPSHOTS):
            session.snapshot()
        with pytest.raises(ServiceError) as err:
            session.restore(snapshot_id=first)  # oldest was dropped
        assert err.value.code == "unknown_snapshot"


class TestStateDigest:
    def test_same_trajectory_same_digest(self):
        a = build("continuous", scale=0.4, seed=11)
        b = build("continuous", scale=0.4, seed=11)
        for _ in range(5):
            a.step()
            b.step()
        assert state_digest(a) == state_digest(b)

    def test_divergence_changes_digest(self):
        a = build("continuous", scale=0.4, seed=11)
        b = build("continuous", scale=0.4, seed=11)
        b.apply_impulse(0, [0, 1e-4, 0])
        a.step()
        b.step()
        assert state_digest(a) != state_digest(b)


class TestAdmissionController:
    def test_per_session_backlog_rejected_busy(self):
        admission = AdmissionController(
            AdmissionPolicy(max_pending_per_session=2, max_queue_depth=10))
        admission.admit("s1")
        admission.admit("s1")
        with pytest.raises(ServiceError) as err:
            admission.admit("s1")
        assert err.value.code == "busy"
        assert admission.rejected_total == 1
        admission.admit("s2")  # other sessions unaffected

    def test_global_queue_depth_rejected_busy(self):
        admission = AdmissionController(
            AdmissionPolicy(max_pending_per_session=10, max_queue_depth=2))
        admission.admit("s1")
        admission.admit("s2")
        with pytest.raises(ServiceError) as err:
            admission.admit("s3")
        assert err.value.code == "busy"

    def test_release_frees_capacity(self):
        admission = AdmissionController(
            AdmissionPolicy(max_pending_per_session=1, max_queue_depth=1))
        admission.admit("s1")
        admission.release("s1")
        admission.admit("s1")  # no raise
        assert admission.queue_depth == 1
        assert admission.pending_for("s1") == 1

    def test_budget_override_per_session(self):
        admission = AdmissionController(AdmissionPolicy(step_budget=9.0))
        default = SessionConfig(scenario="continuous")
        custom = SessionConfig(scenario="continuous", step_budget=0.5)

        class Holder:
            def __init__(self, config):
                self.config = config

        assert admission.budget_for(Holder(default)) == 9.0
        assert admission.budget_for(Holder(custom)) == 0.5


class TestServiceOverTheWire:
    def test_ping_create_step_close(self):
        handle = _server()
        try:
            with handle.connect() as client:
                pong = client.ping()
                assert pong["protocol"] == 1 and pong["sessions"] == 0
                session = client.create("continuous", scale=0.4, seed=3)
                result = client.step(session, 5)
                assert result["step"] == 5
                assert result["contacts"] >= 0
                stats = client.stats()
                assert stats["active_sessions"] == 1
                assert stats["created_total"] == 1
                closed = client.close_session(session)
                assert closed["steps_run"] == 5
                with pytest.raises(ServeClientError) as err:
                    client.step(session)
                assert err.value.code == "unknown_session"
        finally:
            handle.stop()

    def test_unknown_scenario_lists_valid_names(self):
        handle = _server()
        try:
            with handle.connect() as client:
                with pytest.raises(ServeClientError) as err:
                    client.create("nosuch")
                assert err.value.code == "bad_request"
                assert "valid scenarios" in err.value.detail
                assert "continuous" in err.value.detail
        finally:
            handle.stop()

    def test_malformed_frame_keeps_connection_alive(self):
        handle = _server()
        try:
            with handle.connect() as client:
                client._file.write(b"this is not json\n")
                client._file.flush()
                response = decode_frame(client._file.readline())
                assert response["ok"] is False
                assert response["error"] == "bad_frame"
                assert client.ping()["ok"]  # connection survived
        finally:
            handle.stop()

    def test_server_full_create(self):
        handle = _server(max_sessions=1)
        try:
            with handle.connect() as client:
                client.create("continuous", scale=0.4)
                with pytest.raises(ServeClientError) as err:
                    client.create("continuous", scale=0.4)
                assert err.value.code == "server_full"
        finally:
            handle.stop()

    def test_budget_blown_evicts_session(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4,
                                        step_budget=1e-4)
                with pytest.raises(ServeClientError) as err:
                    client.step(session, 50)
                assert err.value.code == "budget_exceeded"
                with pytest.raises(ServeClientError) as err:
                    client.step(session)
                assert err.value.code == "unknown_session"
                assert client.stats()["evicted_total"] == 1
        finally:
            handle.stop()

    def test_snapshot_restore_bit_identity_over_wire(self):
        """The acceptance-criteria property, end to end on the socket."""
        handle = _server()
        opts = dict(scale=0.4, seed=7)
        try:
            with handle.connect() as client:
                straight = client.create("continuous", **opts)
                digest_straight = client.step(straight, 20)["digest"]

                snapped = client.create("continuous", **opts)
                client.step(snapped, 10)
                snap = client.snapshot(snapped)
                assert snap["step"] == 10 and len(snap["data"]) > 0
                digest_snapped = client.step(snapped, 10)["digest"]

                fresh = client.create("continuous", **opts)
                restored = client.restore(fresh, data=snap["data"],
                                          precisions=snap["precisions"])
                assert restored["step"] == 10
                digest_fresh = client.step(fresh, 10)["digest"]

                client.restore(snapped, snapshot=snap["snapshot"])
                digest_rewound = client.step(snapped, 10)["digest"]

                assert digest_straight == digest_snapped
                assert digest_straight == digest_fresh
                assert digest_straight == digest_rewound
        finally:
            handle.stop()

    def test_restore_rejects_bad_base64(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
                with pytest.raises(ServeClientError) as err:
                    client.request({"op": "restore", "session": session,
                                    "data": "!!! not base64 !!!"})
                assert err.value.code == "bad_request"
        finally:
            handle.stop()

    def test_adaptive_session_steps(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4,
                                        precision={"lcp": 8},
                                        adaptive=True)
                assert client.step(session, 5)["step"] == 5
        finally:
            handle.stop()


class TestConcurrentSessionsTraced:
    def test_three_sessions_with_snapshot_restore_emit_valid_events(self):
        """The CI smoke scenario: 3 concurrent clients, 20 steps each,
        one snapshot/restore, with every serve.* event schema-valid."""
        tracer, captured = _capture_tracer()
        handle = start_in_thread(ServiceConfig(port=0, max_sessions=8),
                                 observer=tracer)
        digests = {}
        errors = []

        def _drive(tag):
            try:
                with handle.connect() as client:
                    session = client.create("continuous", scale=0.4,
                                            seed=5)
                    client.step(session, 10)
                    snap = client.snapshot(session)
                    client.step(session, 10)
                    client.restore(session, snapshot=snap["snapshot"])
                    digests[tag] = client.step(session, 10)["digest"]
                    client.close_session(session)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(f"{tag}: {exc}")

        threads = [threading.Thread(target=_drive, args=(i,))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        handle.stop()

        assert not errors
        # identical configs on identical trajectories agree
        assert len(set(digests.values())) == 1

        serve_events = [e for e in captured
                        if e["kind"].startswith("serve.")]
        requests = [e for e in serve_events
                    if e["kind"] == "serve.request"]
        batches = [e for e in serve_events if e["kind"] == "serve.batch"]
        assert all(e["ok"] for e in requests)
        ops = {e["op"] for e in requests}
        assert {"create", "step", "snapshot", "restore",
                "close"} <= ops
        assert batches and all(e["sessions"] >= 1 for e in batches)
        assert sum(e["steps"] for e in batches) == 3 * 30
        invalid, problems = validate_events(serve_events)
        assert invalid == 0, problems

    def test_registry_counts_requests_and_batches(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
                client.step(session, 3)
                stats = client.stats()
            metrics = stats["metrics"]
            assert metrics["serve.requests{op=create}"]["value"] == 1
            assert metrics["serve.requests{op=step}"]["value"] == 1
            assert metrics["serve.sessions"]["value"] == 1
            assert stats["batches"] >= 1
            assert stats["steps_dispatched"] == 3
        finally:
            handle.stop()


class TestServeBench:
    def test_bench_smoke_payload(self, tmp_path):
        payload = run_serve_bench(ServeBenchConfig(
            clients=2, steps_per_client=3, scale=0.4,
            fidelity_steps=3, output_dir=str(tmp_path)))
        assert payload["ok"] is True
        bench = payload["serve_bench"]
        assert bench["requests_ok"] == 6
        assert bench["sessions_dropped"] == 0
        assert bench["steps_per_sec"] > 0
        assert bench["p95_ms"] >= bench["p50_ms"] >= 0
        assert bench["fidelity"]["bit_identical"] is True
        written = list(tmp_path.glob("BENCH_*_serve.json"))
        assert len(written) == 1

    def test_render_summary_mentions_the_gates(self, tmp_path):
        payload = run_serve_bench(ServeBenchConfig(
            clients=2, steps_per_client=2, scale=0.4,
            fidelity_steps=2, output_dir=str(tmp_path)))
        text = render_serve_summary(payload)
        assert "steps/s aggregate" in text
        assert "p50" in text and "p95" in text
        assert "bit-identical" in text
        assert text.strip().endswith(payload["path"].split("/")[-1])


class TestSnapshotWireEncoding:
    def test_snapshot_payload_is_base64_on_the_wire(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
                client.step(session, 2)
                raw = client.request({"op": "snapshot",
                                      "session": session})
                blob = base64.b64decode(raw["data"], validate=True)
                assert blob[:8] == b"RPROCKPT"
        finally:
            handle.stop()


class TestConnectionFaults:
    """Torn frames and mid-batch disconnects must stay contained: the
    one bad connection drops, its session stays recoverable via the
    journal, and everyone else keeps batching."""

    def test_torn_partial_frame_then_eof_drops_only_that_connection(self):
        handle = _server()
        try:
            with handle.connect() as good:
                session = good.create("continuous", scale=0.4)
                bad = handle.connect()
                # Half a frame, no newline, then a hard close: the
                # server cannot resync a torn NDJSON stream and must
                # simply drop the connection.
                bad._file.write(b'{"op": "step", "session": "s1"')
                bad._file.flush()
                bad._sock.close()
                # The healthy connection is unaffected.
                assert good.step(session)["step"] == 1
                assert good.ping()["ok"]
        finally:
            handle.stop()

    def test_binary_garbage_line_gets_bad_frame_not_a_hangup(self):
        handle = _server()
        try:
            with handle.connect() as client:
                client._file.write(b"\x00\xff\xfe garbage \xba\xad\n")
                client._file.flush()
                response = decode_frame(client._file.readline())
                assert response["ok"] is False
                assert response["error"] == "bad_frame"
                assert client.ping()["ok"]
        finally:
            handle.stop()

    def test_mid_batch_disconnect_keeps_batching_and_journal(
            self, tmp_path):
        journal_dir = tmp_path / "journals"
        handle = _server(journal_dir=str(journal_dir), journal_every=1)
        try:
            survivor = handle.connect()
            victim = handle.connect()
            s_keep = survivor.create("continuous", scale=0.4, seed=1)
            s_drop = victim.create("continuous", scale=0.4, seed=2)
            survivor.step(s_keep, 2)
            victim.step(s_drop, 2)
            # Fire a step and RST the connection before reading the
            # response — the server is mid-batch when the socket dies.
            victim._file.write(encode_frame(
                {"op": "step", "session": s_drop, "steps": 1}))
            victim._file.flush()
            victim.kill()
            # The other session keeps batching.
            for i in range(3, 6):
                assert survivor.step(s_keep)["step"] == i
            stats = survivor.stats()
            sessions = {s["session"] for s in stats["sessions"]}
            assert {s_keep, s_drop} <= sessions  # nothing evicted
            survivor.close()
        finally:
            handle.stop()
        # The dropped client's session is recoverable from its journal.
        from repro.serve import recover_sessions

        recovered = {r.session_id for r in recover_sessions(journal_dir)}
        assert s_drop in recovered


class TestFleetStepping:
    """Coalescing compatible sessions into one WorldBatch pass must be
    invisible except in the stats counters."""

    def _drive(self, handle, clients, steps):
        digests = {}
        errors = []
        barrier = threading.Barrier(clients)

        def _run(tag):
            try:
                with handle.connect() as client:
                    session = client.create("continuous", scale=0.4,
                                            seed=5)
                    barrier.wait(timeout=30.0)
                    for _ in range(steps - 1):
                        client.step(session, 1)
                    digests[tag] = client.step(session, 1)["digest"]
                    client.close_session(session)
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(f"{tag}: {exc}")

        threads = [threading.Thread(target=_run, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return digests

    def test_fleet_digests_match_unbatched_server(self):
        # A wide batch window makes each tick collect every pending
        # request, so the fleet path actually engages.
        fleet = _server(batch_window=0.05)
        try:
            fleet_digests = self._drive(fleet, clients=6, steps=10)
            with fleet.connect() as client:
                fleet_stats = client.stats()
        finally:
            fleet.stop()
        plain = _server(batch_window=0.05, fleet_step=False)
        try:
            plain_digests = self._drive(plain, clients=6, steps=10)
            with plain.connect() as client:
                plain_stats = client.stats()
        finally:
            plain.stop()

        # Identical configs on identical trajectories: every session
        # lands on one digest, the same one with and without fleets.
        assert len(set(fleet_digests.values())) == 1
        assert set(fleet_digests.values()) == set(plain_digests.values())
        assert fleet_stats["fleet_batches"] > 0
        assert fleet_stats["fleet_sessions"] >= \
            2 * fleet_stats["fleet_batches"]
        assert plain_stats["fleet_batches"] == 0
        assert plain_stats["fleet_sessions"] == 0

    def test_guarded_session_never_joins_a_fleet(self):
        handle = _server(batch_window=0.05, allow_chaos=True)
        try:
            with handle.connect() as client:
                guarded = client.create("continuous", scale=0.4, seed=5,
                                        guarded=True)
                client.step(guarded, 5)
            session = handle.service.manager.get(guarded)
            assert session.fleet_key() is None
        finally:
            handle.stop()

    def test_serve_bench_fleet_compare_payload(self, tmp_path):
        payload = run_serve_bench(ServeBenchConfig(
            clients=2, steps_per_client=3, scale=0.4,
            fidelity_steps=2, fleet_compare=True,
            output_dir=str(tmp_path)))
        fleet = payload["fleet"]
        assert fleet["unbatched"]["fleet_batches"] == 0
        assert fleet["unbatched"]["fleet_step"] is False
        assert payload["serve_bench"]["fleet_step"] is True
        assert fleet["ok"] is True
        assert "fleet stepping" in render_serve_summary(payload)
