"""Tests for the world pipeline, energy monitoring, islands, sleeping,
cloth and explosions."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import Cloth, Explosion, SleepParams, World
from repro.physics.island import UnionFind, partition_islands
from repro.physics.joints import WORLD


def make_world(**kwargs):
    return World(ctx=FPContext(census=False), **kwargs)


class TestEnergyMonitor:
    def test_free_fall_conserves_total_energy(self):
        world = make_world()
        world.add_sphere([0, 10.0, 0], 0.2, 1.0)
        for _ in range(50):
            world.step()
        energies = world.monitor.totals()
        assert abs(energies[-1] - energies[0]) < 0.01 * abs(energies[0])

    def test_kinetic_potential_split(self):
        world = make_world()
        world.add_sphere([0, 10.0, 0], 0.2, 2.0)
        world.step()
        record = world.monitor.records[-1]
        assert record.potential == pytest.approx(2.0 * 9.8 * 10.0, rel=0.01)
        assert record.kinetic == pytest.approx(
            0.5 * 2.0 * (9.8 * 0.01) ** 2, rel=0.05)

    def test_rotational_kinetic_energy_counted(self):
        world = make_world()
        world.add_sphere([0, 0.0, 0], 0.5, 2.0, angvel=[0, 10.0, 0])
        world.step()
        inertia = 0.4 * 2.0 * 0.25
        assert world.monitor.records[-1].kinetic == pytest.approx(
            0.5 * inertia * 100.0, rel=0.02)

    def test_injection_accounted(self):
        world = make_world()
        world.add_sphere([0, 0.0, 0], 0.5, 1.0)
        world.gravity[:] = 0.0
        world.monitor.gravity[:] = 0.0
        injected = world.apply_impulse(0, [3.0, 0, 0])
        assert injected == pytest.approx(4.5, rel=1e-5)
        world.step()
        record = world.monitor.records[-1]
        assert record.injected_total == pytest.approx(4.5, rel=1e-5)
        assert record.conserved == pytest.approx(0.0, abs=0.01)

    def test_step_difference_signal(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.5, 0], 0.5, 1.0)
        world.step()
        assert world.monitor.relative_step_difference() is None
        world.step()
        assert world.monitor.relative_step_difference() is not None

    def test_instruction_overhead_formula(self):
        world = make_world()
        assert world.monitor.instruction_overhead(10, 100) == \
            67 * 10 + 27 * 100

    def test_static_bodies_excluded(self):
        world = make_world()
        world.add_box([0, 5.0, 0], [1, 1, 1], 0.0)  # static
        world.step()
        assert world.monitor.records[-1].total == 0.0


class TestIslands:
    def test_union_find_basics(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(1)
        assert uf.find(0) != uf.find(3)
        assert uf.find(2) == 2

    def test_partition_labels(self):
        dynamic = np.array([True] * 4)
        labels = partition_islands(4, dynamic, [(0, 1), (2, 3)])
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_static_bodies_do_not_merge(self):
        dynamic = np.array([True, False, True])
        labels = partition_islands(3, dynamic, [(0, 1), (1, 2)])
        assert labels[1] == -1
        assert labels[0] != labels[2]

    def test_world_body_ignored(self):
        dynamic = np.array([True, True])
        labels = partition_islands(2, dynamic, [(0, 5), (1, -1)])
        assert labels[0] != labels[1]

    def test_world_islands_two_piles(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_box([0, 0.45, 0], [0.5, 0.5, 0.5])
        world.add_box([0, 1.4, 0], [0.5, 0.5, 0.5])
        world.add_box([10, 0.45, 0], [0.5, 0.5, 0.5])
        world.step()
        assert world.island_count == 2
        labels = world.island_labels
        assert labels[0] == labels[1] != labels[2]


class TestSleeping:
    def test_quiet_body_falls_asleep(self):
        world = make_world(sleep=SleepParams(steps_to_sleep=10))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(100):
            world.step()
        assert world.bodies.asleep[0]

    def test_sleep_disabled(self):
        world = make_world(sleep=SleepParams(enabled=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(100):
            world.step()
        assert not world.bodies.asleep[0]

    def test_impulse_wakes_body(self):
        world = make_world(sleep=SleepParams(steps_to_sleep=10))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(100):
            world.step()
        world.apply_impulse(0, [5.0, 0.0, 0.0])
        assert not world.bodies.asleep[0]

    def test_projectile_wakes_sleeper(self):
        world = make_world(sleep=SleepParams(steps_to_sleep=10))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(80):
            world.step()
        assert world.bodies.asleep[0]
        world.add_sphere([-3.0, 0.6, 0], 0.3, 2.0, linvel=[8.0, 0, 0])
        for _ in range(80):
            world.step()
        assert not world.bodies.asleep[0]
        assert world.bodies.pos[0, 0] > 0.05  # it actually moved


class TestExplosion:
    def test_explosion_pushes_bodies_apart(self):
        world = make_world()
        world.add_ground_plane(0.0)
        a = world.add_box([-0.5, 0.5, 0], [0.4, 0.4, 0.4], 1.0)
        b = world.add_box([0.5, 0.5, 0], [0.4, 0.4, 0.4], 1.0)
        world.schedule_explosion(
            Explosion(center=[0, 0.5, 0], impulse=6.0, radius=3.0,
                      trigger_step=2))
        for _ in range(60):
            world.step()
        assert world.bodies.pos[a, 0] < -0.6
        assert world.bodies.pos[b, 0] > 0.6

    def test_explosion_energy_recorded_as_injection(self):
        world = make_world()
        world.add_box([0.4, 0.5, 0], [0.4, 0.4, 0.4], 1.0)
        world.schedule_explosion(
            Explosion(center=[0, 0.5, 0], impulse=6.0, radius=3.0,
                      trigger_step=1))
        world.step()
        world.step()
        assert world.monitor.injected_total > 0.0

    def test_out_of_radius_untouched(self):
        world = make_world()
        world.add_ground_plane(0.0)
        far = world.add_box([10.0, 0.4, 0], [0.4, 0.4, 0.4], 1.0)
        world.schedule_explosion(
            Explosion(center=[0, 0, 0], impulse=6.0, radius=2.0,
                      trigger_step=0))
        world.step()
        assert abs(world.bodies.linvel[far, 0]) < 1e-6

    def test_falloff_with_distance(self):
        world = make_world()
        near = world.add_box([0.5, 0.0, 0], [0.2, 0.2, 0.2], 1.0)
        far_b = world.add_box([2.0, 0.0, 0], [0.2, 0.2, 0.2], 1.0)
        world.gravity[:] = 0.0
        world.monitor.gravity[:] = 0.0
        world.schedule_explosion(
            Explosion(center=[0, 0, 0], impulse=6.0, radius=3.0,
                      trigger_step=0))
        world.step()
        assert world.bodies.linvel[near, 0] > world.bodies.linvel[far_b, 0]


class TestCloth:
    def test_grid_construction(self):
        cloth = Cloth(origin=(0, 1, 0), rows=4, cols=5, spacing=0.2)
        assert cloth.particle_count == 20
        # structural: 4*4 + 3*5 = 31; shear: 3*4*2 = 24
        assert len(cloth.edge_a) == 31 + 24

    def test_pinned_particles_static(self):
        cloth = Cloth(origin=(0, 2, 0), rows=3, cols=3, spacing=0.2,
                      pinned=[(0, 0)])
        world = make_world()
        world.add_cloth(cloth)
        start = cloth.pos[cloth.index(0, 0)].copy()
        for _ in range(50):
            world.step()
        assert np.allclose(cloth.pos[cloth.index(0, 0)], start, atol=1e-5)

    def test_hanging_cloth_does_not_stretch_much(self):
        cloth = Cloth(origin=(0, 2, 0), rows=4, cols=4, spacing=0.25,
                      pinned=[(0, 0), (0, 3)])
        world = make_world()
        world.add_cloth(cloth)
        for _ in range(150):
            world.step()
        lengths = np.linalg.norm(
            cloth.pos[cloth.edge_a] - cloth.pos[cloth.edge_b], axis=1)
        assert lengths.max() < 1.6 * cloth.rest_length.max()

    def test_cloth_rests_on_ground(self):
        cloth = Cloth(origin=(0, 0.5, 0), rows=4, cols=4, spacing=0.25)
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_cloth(cloth)
        for _ in range(150):
            world.step()
        assert cloth.pos[:, 1].min() > -0.01
        assert cloth.pos[:, 1].max() < 0.2

    def test_cloth_drapes_over_sphere(self):
        cloth = Cloth(origin=(-0.4, 1.5, 0.4), rows=5, cols=5,
                      spacing=0.2)
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.6, 0], 0.6, 0.0)  # static ball
        world.add_cloth(cloth)
        for _ in range(150):
            world.step()
        center = cloth.pos[:, 1].max()
        assert center > 0.9  # held up by the sphere
        dists = np.linalg.norm(cloth.pos - np.array([0, 0.6, 0]), axis=1)
        assert dists.min() > 0.55  # not inside the sphere

    def test_cloth_energy_monitored(self):
        cloth = Cloth(origin=(0, 1.0, 0), rows=3, cols=3, spacing=0.2)
        world = make_world()
        world.add_cloth(cloth)
        world.step()
        assert world.monitor.records[-1].total != 0.0


class TestWorldPlumbing:
    def test_step_frame_is_three_steps(self):
        world = make_world()
        world.step_frame()
        assert world.step_count == 3

    def test_on_step_callback(self):
        world = make_world()
        seen = []
        world.on_step = lambda w, record: seen.append(record.step)
        world.step()
        world.step()
        assert seen == [0, 1]

    def test_penetration_series_tracked(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.2, 0], 0.5, 1.0)
        world.step()
        assert world.penetration_series[0] > 0.1

    def test_phase_stats_partitioned(self):
        world = World(ctx=FPContext())
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.4, 0], 0.5, 1.0)
        world.step()
        phases = {phase for phase, _op in world.ctx.stats}
        assert {"narrow", "lcp", "integrate"} <= phases
