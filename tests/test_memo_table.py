"""Unit + property tests for the memoization tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import array_to_bits
from repro.memo.memo_table import MemoBank, MemoTable


def keys(*pairs):
    a = np.array([p[0] for p in pairs], dtype=np.uint32)
    b = np.array([p[1] for p in pairs], dtype=np.uint32)
    return a, b


class TestMemoTable:
    def test_paper_configuration(self):
        table = MemoTable()
        assert table.entries == 256
        assert table.ways == 16
        assert table.num_sets == 16

    def test_entries_multiple_of_ways(self):
        with pytest.raises(ValueError):
            MemoTable(entries=100, ways=16)

    def test_first_lookup_misses(self):
        table = MemoTable()
        assert not table.lookup(1, 2)

    def test_repeat_lookup_hits(self):
        table = MemoTable()
        table.lookup(1, 2)
        assert table.lookup(1, 2)

    def test_operand_order_matters(self):
        table = MemoTable()
        table.lookup(1, 2)
        assert not table.lookup(2, 1)

    def test_stats_accumulate(self):
        table = MemoTable()
        table.lookup(1, 2)
        table.lookup(1, 2)
        table.lookup(3, 4)
        assert table.stats.lookups == 3
        assert table.stats.hits == 1
        assert table.stats.hit_rate == pytest.approx(1 / 3)

    def test_lru_eviction_within_set(self):
        table = MemoTable(entries=4, ways=2)  # 2 sets, 2 ways
        # Mantissa MSBs drive the set index; craft three keys in set 0.
        def key(n):
            return (n << 1, n << 1)  # XOR of equal MSBs = 0 -> set 0
        table.lookup(*key(1))
        table.lookup(*key(2))
        table.lookup(*key(3))  # evicts key(1)
        assert not table.lookup(*key(1))
        assert table.lookup(*key(3))

    def test_lru_refresh_on_hit(self):
        table = MemoTable(entries=4, ways=2)
        def key(n):
            return (n << 1, n << 1)
        table.lookup(*key(1))
        table.lookup(*key(2))
        table.lookup(*key(1))  # refresh 1
        table.lookup(*key(3))  # should evict 2, not 1
        assert table.lookup(*key(1))
        assert not table.lookup(*key(2))

    def test_batch_matches_sequential(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        b = rng.integers(0, 2**32, 500, dtype=np.uint64).astype(np.uint32)
        # duplicate a window to force hits
        a[250:300] = a[:50]
        b[250:300] = b[:50]
        batch_table = MemoTable()
        hits_batch = batch_table.probe_batch(a, b)
        seq_table = MemoTable()
        hits_seq = sum(seq_table.lookup(int(x), int(y))
                       for x, y in zip(a, b))
        assert hits_batch == hits_seq

    def test_reset(self):
        table = MemoTable()
        table.lookup(1, 2)
        table.reset()
        assert table.stats.lookups == 0
        assert not table.lookup(1, 2)

    def test_reduced_precision_improves_hit_rate(self):
        """The paper's core memoization claim (Section 4.3.3)."""
        from repro.fp.rounding import RoundingMode, reduce_array
        rng = np.random.default_rng(1)
        values_a = rng.uniform(0.5, 4.0, 3000).astype(np.float32)
        values_b = rng.uniform(0.5, 4.0, 3000).astype(np.float32)

        full = MemoTable()
        full_hits = full.probe_batch(array_to_bits(values_a),
                                     array_to_bits(values_b))
        reduced = MemoTable()
        ra = reduce_array(values_a, 4, RoundingMode.JAMMING)
        rb = reduce_array(values_b, 4, RoundingMode.JAMMING)
        red_hits = reduced.probe_batch(array_to_bits(ra),
                                       array_to_bits(rb))
        assert red_hits > 10 * max(full_hits, 1)

    def test_four_bit_operands_fully_covered(self):
        """2^4 x 2^4 value pairs fit in 256 entries -> 100% steady-state."""
        from repro.fp.rounding import RoundingMode, reduce_array
        rng = np.random.default_rng(2)
        values_a = reduce_array(
            rng.uniform(1.0, 2.0, 2000).astype(np.float32), 4,
            RoundingMode.TRUNCATION)
        values_b = reduce_array(
            rng.uniform(1.0, 2.0, 2000).astype(np.float32), 4,
            RoundingMode.TRUNCATION)
        table = MemoTable()
        table.probe_batch(array_to_bits(values_a), array_to_bits(values_b))
        # Second pass over the same distribution: all combinations cached.
        hits = table.probe_batch(array_to_bits(values_a),
                                 array_to_bits(values_b))
        assert hits == 2000


class TestMemoBank:
    def test_sub_shares_add_table(self):
        bank = MemoBank()
        a = np.array([10], dtype=np.uint32)
        b = np.array([20], dtype=np.uint32)
        bank.probe("sub", a, b)
        assert bank.probe("add", a, b) == 1

    def test_mul_separate_from_add(self):
        bank = MemoBank()
        a = np.array([10], dtype=np.uint32)
        b = np.array([20], dtype=np.uint32)
        bank.probe("add", a, b)
        assert bank.probe("mul", a, b) == 0

    def test_hit_rate(self):
        bank = MemoBank()
        a = np.array([1, 1], dtype=np.uint32)
        b = np.array([2, 2], dtype=np.uint32)
        bank.probe("mul", a, b)
        assert bank.hit_rate("mul") == pytest.approx(0.5)

    def test_reset(self):
        bank = MemoBank()
        a = np.array([1], dtype=np.uint32)
        bank.probe("add", a, a)
        bank.reset()
        assert bank.hit_rate("add") == 0.0


class TestSetIndexing:
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_index_in_range(self, a, b):
        table = MemoTable()
        assert 0 <= table._set_index(a, b) < table.num_sets

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1)),
        min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_ways(self, pairs):
        table = MemoTable(entries=32, ways=4)
        for a, b in pairs:
            table.lookup(a, b)
        for ways in table._sets:
            assert len(ways) <= table.ways

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1)),
        min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_immediate_repeat_always_hits(self, pairs):
        table = MemoTable()
        for a, b in pairs:
            table.lookup(a, b)
            assert table.lookup(a, b)
